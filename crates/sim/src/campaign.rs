//! Scenario campaigns over the deterministic Monte-Carlo harness.
//!
//! A campaign runs a [`Scenario`] for a batch of seeded replications
//! (via [`run_supervised_replications`]) with an online [`LrcMonitor`]
//! attached to every replication, and aggregates per communicator: the
//! empirical long-run reliability λ̂ against a caller-supplied analytic
//! SRG (with the Hoeffding radius over the pooled sample count), the
//! time to the first LRC violation, and alarm counts. Scripted host
//! availability comes from the scenario timeline itself. Everything is
//! bit-deterministic in the batch configuration — rerunning a report, at
//! any thread count, reproduces it exactly.

use crate::bitslice::LaneContext;
use crate::environment::Environment;
use crate::fault::FaultInjector;
use crate::kernel::{SimConfig, SimOutput, Simulation};
use crate::monitor::{AlarmKind, LrcMonitor, MonitorConfig};
use crate::montecarlo::{derive_seed, run_indexed_units, BatchConfig, ReplicationContext};
use crate::scenario::{Scenario, ScenarioEnvironment, ScenarioError, ScenarioInjector};
use logrel_core::{CommunicatorId, Specification, Tick};
use logrel_obs::{MetricsSink, NoopSink, Registry};
use logrel_reliability::hoeffding_epsilon;
use std::fmt;

/// How a campaign executes its replications: bit-sliced lane groups (the
/// default) or one scalar run per replication.
///
/// The mode never changes results — every lane replays its scalar
/// replication bit-exactly (see [`crate::bitslice`]) — only wall-clock
/// time, so `Off` exists for debugging and differential testing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LaneMode {
    /// Bit-sliced groups of 64 replications, plus one narrower group for
    /// a non-multiple-of-64 tail.
    #[default]
    Auto,
    /// Scalar execution, one replication at a time.
    Off,
    /// Bit-sliced groups of a fixed width (clamped to 1..=64; width 1
    /// runs the scalar path).
    Width(u8),
}

impl LaneMode {
    /// The lane-group width this mode packs (1 for [`LaneMode::Off`]).
    #[must_use]
    pub fn width(self) -> usize {
        match self {
            LaneMode::Auto => 64,
            LaneMode::Off => 1,
            LaneMode::Width(w) => (w as usize).clamp(1, 64),
        }
    }
}

/// Configuration of one scenario campaign.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CampaignConfig {
    /// The Monte-Carlo batch (replications, rounds, base seed, threads).
    pub batch: BatchConfig,
    /// The online monitor attached to each replication.
    pub monitor: MonitorConfig,
    /// Scalar vs bit-sliced execution (default: 64-wide lane groups).
    pub lanes: LaneMode,
}

/// Aggregated per-communicator campaign statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct CommunicatorReport {
    /// The communicator.
    pub comm: CommunicatorId,
    /// Total updates observed across all replications.
    pub updates: u64,
    /// Reliable (non-⊥) updates across all replications.
    pub reliable: u64,
    /// Empirical long-run reliability λ̂ = reliable / updates.
    pub empirical: f64,
    /// The analytic SRG λ, if the caller supplied one.
    pub analytic: Option<f64>,
    /// Hoeffding radius at the monitor's confidence over `updates`.
    pub epsilon: f64,
    /// `|λ̂ − λ| ≤ ε`, when an analytic value is present.
    pub within_epsilon: Option<bool>,
    /// The declared LRC µ, if any.
    pub lrc: Option<f64>,
    /// Earliest monitor-raised violation instant across replications.
    pub first_violation: Option<Tick>,
    /// Replications in which the monitor raised at least one alarm.
    pub violated_reps: u64,
    /// Total raised alarms across replications.
    pub alarms_raised: u64,
    /// Total cleared alarms across replications.
    pub alarms_cleared: u64,
    /// Replications whose full-window mean dipped below µ_c by at least
    /// half the Hoeffding band — the ground-truth µ-violations
    /// ([`LrcMonitor::first_dip`]).
    pub violations: u64,
    /// Among `violations`, the replications where the monitor caught the
    /// dip: an alarm was raised no later than one window of updates
    /// after it ([`LrcMonitor::dip_alarmed`]). `violations > 0` with
    /// `alarms_before_violation == 0` means the monitor slept through
    /// every ground-truth violation — the fuzzer's headline objective.
    pub alarms_before_violation: u64,
}

/// The full campaign report for one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// The scenario's canonical serialized form (replayable verbatim).
    pub scenario: String,
    /// Scripted per-host availability over the simulated horizon.
    pub host_availability: Vec<f64>,
    /// Per-communicator statistics, in communicator order.
    pub comms: Vec<CommunicatorReport>,
}

/// Why a campaign (or one of its sharded units) could not run.
///
/// Degenerate inputs come back as diagnosed errors rather than panics so
/// that a long-running service can reject a malformed job and keep
/// serving (the `A-code` rendering lives in the CLI driver).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignError {
    /// The scenario failed validation against the system's host and
    /// communicator counts.
    Scenario(ScenarioError),
    /// The batch requests zero replications: there is nothing to
    /// aggregate, and a report of all-zero counts would silently read as
    /// "perfectly reliable".
    NoReplications,
    /// A sharded unit's lane width is outside `1..=64` (the bit-sliced
    /// kernel packs replications into one `u64` word per lane group).
    LaneWidth(usize),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Scenario(e) => write!(f, "{e}"),
            CampaignError::NoReplications => {
                write!(f, "campaign requests zero replications")
            }
            CampaignError::LaneWidth(w) => {
                write!(f, "campaign unit width {w} outside 1..=64")
            }
        }
    }
}

impl std::error::Error for CampaignError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CampaignError::Scenario(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ScenarioError> for CampaignError {
    fn from(e: ScenarioError) -> Self {
        CampaignError::Scenario(e)
    }
}

/// One sharded slice of a campaign: `width` consecutive replications
/// starting at `first_rep`, executed as a single work item.
///
/// Units are the currency of cross-job sharding: a job service plans a
/// campaign once with [`plan_units`], feeds the units to any worker pool
/// in any order, and [`aggregate_campaign`] over the unit results *in
/// replication order* reproduces [`run_campaign`] bit-exactly — each
/// replication's RNG stream depends only on `(base_seed, rep)`, never on
/// which worker ran it or what else ran beside it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignUnit {
    /// Index of the unit's first replication.
    pub first_rep: u64,
    /// Number of consecutive replications in the unit (1..=64; width 1
    /// runs the scalar kernel, wider units run bit-sliced).
    pub width: usize,
}

/// Plans the work units of a campaign: groups of `width` consecutive
/// replications plus one narrower tail group for a non-multiple
/// remainder. `width` is clamped to 1..=64 (the bit-sliced lane limit).
#[must_use]
pub fn plan_units(replications: u64, width: usize) -> Vec<CampaignUnit> {
    let width = width.clamp(1, 64);
    let mut units = Vec::with_capacity((replications as usize).div_ceil(width));
    let mut first = 0u64;
    while first < replications {
        let w = (replications - first).min(width as u64) as usize;
        units.push(CampaignUnit {
            first_rep: first,
            width: w,
        });
        first += w as u64;
    }
    units
}

/// Per-replication reduced statistics, the unit of campaign aggregation.
///
/// Opaque outside this module: produced by [`run_campaign_unit`] and
/// consumed by [`aggregate_campaign`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepStats {
    updates: Vec<u64>,
    reliable: Vec<u64>,
    first_violation: Vec<Option<u64>>,
    raised: Vec<u64>,
    cleared: Vec<u64>,
    first_dip: Vec<Option<u64>>,
    /// Per communicator: a dip occurred *and* the monitor alarmed within
    /// one window of it.
    alarmed_dip: Vec<bool>,
}

/// Reduces one replication's output and monitor to its [`RepStats`] —
/// shared by the scalar and bit-sliced execution paths so both aggregate
/// identically.
fn rep_stats(spec: &Specification, out: &SimOutput, monitor: &LrcMonitor) -> RepStats {
    let comm_count = spec.communicator_count();
    let mut stats = RepStats {
        updates: vec![0; comm_count],
        reliable: vec![0; comm_count],
        first_violation: vec![None; comm_count],
        raised: vec![0; comm_count],
        cleared: vec![0; comm_count],
        first_dip: vec![None; comm_count],
        alarmed_dip: vec![false; comm_count],
    };
    for c in spec.communicator_ids() {
        let bits = out.trace.abstraction(c);
        stats.updates[c.index()] = bits.len() as u64;
        stats.reliable[c.index()] = bits.iter().filter(|&&b| b).count() as u64;
        stats.first_violation[c.index()] = monitor.first_violation(c).map(Tick::as_u64);
        stats.first_dip[c.index()] = monitor.first_dip(c).map(Tick::as_u64);
        stats.alarmed_dip[c.index()] = monitor.dip_alarmed(c);
    }
    for alarm in monitor.alarms() {
        match alarm.kind {
            AlarmKind::Raised => stats.raised[alarm.comm.index()] += 1,
            AlarmKind::Cleared => stats.cleared[alarm.comm.index()] += 1,
        }
    }
    stats
}

/// Runs `scenario` for a batch of replications over `sim` and aggregates
/// the report.
///
/// `setup(rep)` builds each replication's *base* context — behaviors,
/// environment, inner fault injector — which the campaign wraps in the
/// scenario layers ([`ScenarioInjector`], [`ScenarioEnvironment`]) and
/// an [`LrcMonitor`]. `analytic` carries the per-communicator SRGs to
/// compare λ̂ against (`None` entries skip the comparison); pass `&[]`
/// to skip it entirely.
pub fn run_campaign<'a, S>(
    sim: &Simulation<'_>,
    spec: &Specification,
    scenario: &Scenario,
    host_count: usize,
    config: &CampaignConfig,
    setup: S,
    analytic: &[Option<f64>],
) -> Result<ScenarioReport, CampaignError>
where
    S: Fn(u64) -> ReplicationContext<'a> + Sync,
{
    campaign_core(sim, spec, scenario, host_count, config, setup, analytic, |_| {
        NoopSink
    })
    .map(|(report, _sinks)| report)
}

/// [`run_campaign`] with metrics: every replication carries a fresh
/// [`Registry`] (with a flight recorder of `recorder_capacity` events
/// when nonzero), and the per-replication registries are merged **in
/// replication order** into the caller's `registry` — so the aggregate
/// is bit-identical at any thread count. Alarm-triggered flight-recorder
/// dumps survive the merge (capped; see `FlightRecorder::MAX_DUMPS`).
///
/// The caller's registry is merged *into*, not replaced: top-level span
/// gauges already recorded on it (compile/certify/run) are preserved.
#[allow(clippy::too_many_arguments)]
pub fn run_campaign_observed<'a, S>(
    sim: &Simulation<'_>,
    spec: &Specification,
    scenario: &Scenario,
    host_count: usize,
    config: &CampaignConfig,
    setup: S,
    analytic: &[Option<f64>],
    registry: &mut Registry,
    recorder_capacity: usize,
) -> Result<ScenarioReport, CampaignError>
where
    S: Fn(u64) -> ReplicationContext<'a> + Sync,
{
    let (report, sinks) = campaign_core(
        sim,
        spec,
        scenario,
        host_count,
        config,
        setup,
        analytic,
        |_rep| {
            if recorder_capacity > 0 {
                Registry::with_recorder(recorder_capacity)
            } else {
                Registry::new()
            }
        },
    )?;
    for sink in sinks {
        registry.merge(sink);
    }
    Ok(report)
}

/// Runs one planned [`CampaignUnit`] and returns its per-replication
/// results in replication order.
///
/// This is the sharding entry point for job services: bounds that
/// [`run_campaign`] checks once up front are re-validated here per unit
/// (scenario wrapping propagates its error instead of panicking), so a
/// malformed unit diagnoses rather than takes down the worker. Width-1
/// units run the scalar kernel (preserving [`LaneMode::Off`] semantics);
/// wider units run bit-sliced. Either way every replication is
/// bit-identical to its place in a monolithic [`run_campaign`] — seeds
/// depend only on `(base_seed, rep)`.
#[allow(clippy::too_many_arguments)]
pub fn run_campaign_unit<'a, S, M, FM>(
    sim: &Simulation<'_>,
    spec: &Specification,
    scenario: &Scenario,
    host_count: usize,
    config: &CampaignConfig,
    setup: S,
    make_sink: FM,
    unit: CampaignUnit,
) -> Result<Vec<(RepStats, M)>, CampaignError>
where
    S: Fn(u64) -> ReplicationContext<'a>,
    M: MetricsSink,
    FM: Fn(u64) -> M,
{
    let comm_count = spec.communicator_count();
    let CampaignUnit { first_rep, width } = unit;
    if width == 0 || width > 64 {
        return Err(CampaignError::LaneWidth(width));
    }
    if width == 1 {
        // Scalar path: one kernel run, exactly as the monolithic
        // campaign's `LaneMode::Off` executes it.
        let rep = first_rep;
        let base = setup(rep);
        let injector = ScenarioInjector::new(base.injector, scenario, host_count, comm_count)?;
        let mut environment: Box<dyn Environment + 'a> = Box::new(ScenarioEnvironment::new(
            base.environment,
            scenario,
            comm_count,
        ));
        let mut injector: Box<dyn FaultInjector + 'a> = Box::new(injector);
        let mut behaviors = base.behaviors;
        let mut monitor = LrcMonitor::new(spec, config.monitor);
        let mut sink = make_sink(rep);
        let out = sim.run_observed(
            &mut behaviors,
            &mut *environment,
            &mut *injector,
            &mut monitor,
            &mut sink,
            &SimConfig {
                rounds: config.batch.rounds,
                seed: derive_seed(config.batch.base_seed, rep),
            },
        );
        return Ok(vec![(rep_stats(spec, &out, &monitor), sink)]);
    }
    // Bit-sliced lane group. One shared behavior map per group (the
    // first replication's): behaviors are pure by the bit-sliced
    // kernel's contract. A lane's draw sequence never depends on the
    // group width, so narrower tail groups need no special casing.
    let mut behaviors = None;
    let mut lanes = Vec::with_capacity(width);
    for rep in first_rep..first_rep + width as u64 {
        let base = setup(rep);
        let injector = ScenarioInjector::new(base.injector, scenario, host_count, comm_count)?;
        let environment = ScenarioEnvironment::new(base.environment, scenario, comm_count);
        if behaviors.is_none() {
            behaviors = Some(base.behaviors);
        }
        lanes.push(LaneContext::new(
            derive_seed(config.batch.base_seed, rep),
            injector,
            environment,
            LrcMonitor::new(spec, config.monitor),
            make_sink(rep),
        ));
    }
    let Some(mut behaviors) = behaviors else {
        // Unreachable with width >= 1, but a degenerate unit must
        // diagnose, never panic, inside a service worker.
        return Err(CampaignError::LaneWidth(0));
    };
    let packed = sim.run_bitsliced(&mut behaviors, &mut lanes, config.batch.rounds);
    Ok(lanes
        .into_iter()
        .enumerate()
        .map(|(li, lane)| {
            let out = packed.extract_lane(spec, li);
            let (_injector, _environment, monitor, sink) = lane.into_parts();
            (rep_stats(spec, &out, &monitor), sink)
        })
        .collect())
}

/// The shared campaign driver: plans the units, runs them over the
/// batch's thread pool, and aggregates the report, returning the filled
/// sinks in replication order for the caller to merge (or discard).
#[allow(clippy::too_many_arguments)]
fn campaign_core<'a, S, M, FM>(
    sim: &Simulation<'_>,
    spec: &Specification,
    scenario: &Scenario,
    host_count: usize,
    config: &CampaignConfig,
    setup: S,
    analytic: &[Option<f64>],
    make_sink: FM,
) -> Result<(ScenarioReport, Vec<M>), CampaignError>
where
    S: Fn(u64) -> ReplicationContext<'a> + Sync,
    M: MetricsSink + Send,
    FM: Fn(u64) -> M + Sync,
{
    let comm_count = spec.communicator_count();
    // Validate once up front so per-unit wrapping cannot fail.
    scenario.check_bounds(host_count, comm_count)?;
    if config.batch.replications == 0 {
        return Err(CampaignError::NoReplications);
    }

    let units = plan_units(config.batch.replications, config.lanes.width());
    let per_unit: Vec<Result<Vec<(RepStats, M)>, CampaignError>> =
        run_indexed_units(config.batch.threads, &units, |&unit, _| {
            run_campaign_unit(sim, spec, scenario, host_count, config, &setup, &make_sink, unit)
        });
    let mut per_rep = Vec::with_capacity(config.batch.replications as usize);
    for unit_result in per_unit {
        per_rep.extend(unit_result?);
    }
    Ok(aggregate_campaign(spec, scenario, host_count, config, analytic, per_rep))
}

/// Aggregates per-replication results (in replication order) into the
/// campaign report, returning the filled sinks alongside it.
///
/// The reduction is order-sensitive only in the sinks (merged by the
/// caller in the order given); the statistics are sums and minima, so
/// any permutation-restoring shard scheduler reproduces [`run_campaign`]
/// exactly by sorting unit results back into replication order first.
pub fn aggregate_campaign<M>(
    spec: &Specification,
    scenario: &Scenario,
    host_count: usize,
    config: &CampaignConfig,
    analytic: &[Option<f64>],
    per_rep: Vec<(RepStats, M)>,
) -> (ScenarioReport, Vec<M>) {
    let horizon = Tick::new(config.batch.rounds * spec.round_period().as_u64());
    let comms = spec
        .communicator_ids()
        .map(|c| {
            let i = c.index();
            let updates: u64 = per_rep.iter().map(|(s, _)| s.updates[i]).sum();
            let reliable: u64 = per_rep.iter().map(|(s, _)| s.reliable[i]).sum();
            let empirical = if updates == 0 {
                0.0
            } else {
                reliable as f64 / updates as f64
            };
            let epsilon = if updates == 0 {
                1.0
            } else {
                hoeffding_epsilon(updates as usize, config.monitor.confidence)
            };
            let analytic = analytic.get(i).copied().flatten();
            CommunicatorReport {
                comm: c,
                updates,
                reliable,
                empirical,
                analytic,
                epsilon,
                within_epsilon: analytic.map(|a| (empirical - a).abs() <= epsilon),
                lrc: spec.communicator(c).lrc().map(|l| l.get()),
                first_violation: per_rep
                    .iter()
                    .filter_map(|(s, _)| s.first_violation[i])
                    .min()
                    .map(Tick::new),
                violated_reps: per_rep
                    .iter()
                    .filter(|(s, _)| s.first_violation[i].is_some())
                    .count() as u64,
                alarms_raised: per_rep.iter().map(|(s, _)| s.raised[i]).sum(),
                alarms_cleared: per_rep.iter().map(|(s, _)| s.cleared[i]).sum(),
                violations: per_rep
                    .iter()
                    .filter(|(s, _)| s.first_dip[i].is_some())
                    .count() as u64,
                alarms_before_violation: per_rep
                    .iter()
                    .filter(|(s, _)| s.alarmed_dip[i])
                    .count() as u64,
            }
        })
        .collect();

    let report = ScenarioReport {
        scenario: scenario.to_string(),
        host_availability: (0..host_count)
            .map(|h| scenario.host_availability(logrel_core::HostId::new(h as u32), horizon))
            .collect(),
        comms,
    };
    let sinks = per_rep.into_iter().map(|(_, sink)| sink).collect();
    (report, sinks)
}
