//! Recorded traces and their reliability abstraction.
//!
//! A trace assigns each communicator a sequence of values, one per update
//! instant (the `X_i` of §2, restricted to instants where `i mod π_c = 0`).
//! The abstraction ρ maps each value to 1 (reliable) or 0 (⊥); the
//! limit average of that 0/1 sequence is what an LRC constrains.

use logrel_core::{CommunicatorId, Specification, Tick, Value};

/// A per-communicator record of update instants and values.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    rows: Vec<Vec<(Tick, Value)>>,
}

impl Trace {
    /// An empty trace for `spec`'s communicators.
    pub fn new(spec: &Specification) -> Self {
        Trace {
            rows: vec![Vec::new(); spec.communicator_count()],
        }
    }

    /// Appends an update of `comm` at instant `at`.
    pub fn record(&mut self, comm: CommunicatorId, at: Tick, value: Value) {
        self.rows[comm.index()].push((at, value));
    }

    /// The recorded updates of `comm`, chronological.
    pub fn values(&self, comm: CommunicatorId) -> &[(Tick, Value)] {
        &self.rows[comm.index()]
    }

    /// The reliability abstraction of `comm`'s updates: `true` per
    /// reliable update.
    pub fn abstraction(&self, comm: CommunicatorId) -> Vec<bool> {
        self.rows[comm.index()]
            .iter()
            .map(|(_, v)| v.is_reliable())
            .collect()
    }

    /// The empirical limit average of `comm`'s abstraction (0 for an empty
    /// record).
    pub fn limit_average(&self, comm: CommunicatorId) -> f64 {
        let row = &self.rows[comm.index()];
        if row.is_empty() {
            return 0.0;
        }
        row.iter().filter(|(_, v)| v.is_reliable()).count() as f64 / row.len() as f64
    }

    /// Number of recorded updates of `comm`.
    pub fn update_count(&self, comm: CommunicatorId) -> usize {
        self.rows[comm.index()].len()
    }

    /// Windowed reliability: the fraction of reliable updates in each
    /// consecutive window of `window` updates (a trailing partial window
    /// is dropped).
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    pub fn windowed_average(&self, comm: CommunicatorId, window: usize) -> Vec<f64> {
        assert!(window > 0, "window must be positive");
        self.rows[comm.index()]
            .chunks_exact(window)
            .map(|chunk| {
                chunk.iter().filter(|(_, v)| v.is_reliable()).count() as f64 / window as f64
            })
            .collect()
    }

    /// The length of the longest run of consecutive unreliable updates of
    /// `comm` — the worst outage a consumer observed.
    pub fn longest_outage(&self, comm: CommunicatorId) -> usize {
        let mut longest = 0usize;
        let mut current = 0usize;
        for (_, v) in &self.rows[comm.index()] {
            if v.is_reliable() {
                current = 0;
            } else {
                current += 1;
                longest = longest.max(current);
            }
        }
        longest
    }

    /// The instant of the first unreliable update of `comm`, if any.
    pub fn first_failure(&self, comm: CommunicatorId) -> Option<Tick> {
        self.rows[comm.index()]
            .iter()
            .find(|(_, v)| !v.is_reliable())
            .map(|&(t, _)| t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logrel_core::{CommunicatorDecl, TaskDecl, ValueType};

    fn spec() -> Specification {
        let mut b = Specification::builder();
        let s = b
            .communicator(
                CommunicatorDecl::new("s", ValueType::Float, 10)
                    .unwrap()
                    .from_sensor(),
            )
            .unwrap();
        let u = b
            .communicator(CommunicatorDecl::new("u", ValueType::Float, 10).unwrap())
            .unwrap();
        b.task(TaskDecl::new("t").reads(s, 0).writes(u, 1)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn record_and_abstract() {
        let spec = spec();
        let u = spec.find_communicator("u").unwrap();
        let mut trace = Trace::new(&spec);
        trace.record(u, Tick::new(10), Value::Float(1.0));
        trace.record(u, Tick::new(20), Value::Unreliable);
        trace.record(u, Tick::new(30), Value::Float(2.0));
        assert_eq!(trace.update_count(u), 3);
        assert_eq!(trace.abstraction(u), vec![true, false, true]);
        assert!((trace.limit_average(u) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(trace.values(u)[1], (Tick::new(20), Value::Unreliable));
    }

    #[test]
    fn windowed_average_and_outages() {
        let spec = spec();
        let u = spec.find_communicator("u").unwrap();
        let mut trace = Trace::new(&spec);
        let pattern = [true, true, false, false, false, true, false, true];
        for (k, &ok) in pattern.iter().enumerate() {
            let v = if ok { Value::Float(1.0) } else { Value::Unreliable };
            trace.record(u, Tick::new(10 * k as u64), v);
        }
        assert_eq!(trace.windowed_average(u, 4), vec![0.5, 0.5]);
        assert_eq!(trace.windowed_average(u, 3), vec![2.0 / 3.0, 1.0 / 3.0]);
        assert_eq!(trace.longest_outage(u), 3);
        assert_eq!(trace.first_failure(u), Some(Tick::new(20)));
    }

    #[test]
    fn outage_free_trace() {
        let spec = spec();
        let u = spec.find_communicator("u").unwrap();
        let mut trace = Trace::new(&spec);
        trace.record(u, Tick::new(0), Value::Float(1.0));
        assert_eq!(trace.longest_outage(u), 0);
        assert_eq!(trace.first_failure(u), None);
        assert!(trace.windowed_average(u, 2).is_empty());
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        let spec = spec();
        let u = spec.find_communicator("u").unwrap();
        Trace::new(&spec).windowed_average(u, 0);
    }

    #[test]
    fn empty_rows() {
        let spec = spec();
        let s = spec.find_communicator("s").unwrap();
        let trace = Trace::new(&spec);
        assert_eq!(trace.update_count(s), 0);
        assert_eq!(trace.limit_average(s), 0.0);
        assert!(trace.abstraction(s).is_empty());
    }
}
