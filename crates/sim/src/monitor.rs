//! Online LRC monitoring and graceful degradation.
//!
//! The static analysis of §3 certifies `λ_c ≥ µ_c` *a priori*; this
//! module provides the runtime counterpart argued for by probabilistic
//! assume/guarantee contracts: a [`Supervisor`] observes every
//! communicator update as the kernel records it, the [`LrcMonitor`]
//! maintains a per-communicator sliding window of the 0/1 reliability
//! abstraction and raises a structured [`Alarm`] when the windowed mean
//! is *statistically confidently* below the declared LRC (Hoeffding band
//! entirely under µ_c), clearing it once the mean itself recovers to
//! µ_c — a natural hysteresis, since clearing needs the plain mean while
//! raising needs mean + ε to fall short.
//!
//! A [`Degrader`] turns alarms into scripted responses: drop a flaky
//! replica from the vote (the kernel consults
//! [`Supervisor::exclude_replica`] per invocation), or emit an HTL mode
//! switch event for a degraded-rate mode (consumed by an E-machine
//! [`Platform::event`] feed).
//!
//! [`Platform::event`]: logrel_emachine::Platform

use logrel_core::{CommunicatorId, HostId, Specification, TaskId, Tick, Value};
use logrel_obs::{names, MetricsSink, ObsEvent};
use logrel_reliability::{hoeffding_epsilon, SlidingMean};

/// Runtime hook invoked by the simulation kernel.
///
/// `observe` fires for *every* communicator update, in trace-record
/// order; `exclude_replica` is consulted once per replica invocation and
/// removes the replica from execution and voting when `true` (the host
/// is treated as fail-silent for that invocation, without consuming its
/// fault draws any differently — draws are sampled unconditionally).
pub trait Supervisor {
    /// A communicator update was recorded at `now` with `value`.
    fn observe(&mut self, comm: CommunicatorId, now: Tick, value: Value);

    /// Metrics-aware form of [`Supervisor::observe`]: the kernel calls
    /// this one, passing its [`MetricsSink`], so supervisors that emit
    /// observability signals (alarm transitions, degradation
    /// engagements) can record them. The default ignores the sink and
    /// delegates to `observe` — supervisors without metrics need not
    /// care. Implementations must keep the *supervision* behavior
    /// identical to `observe` (the sink must never influence the run).
    fn observe_with(
        &mut self,
        comm: CommunicatorId,
        now: Tick,
        value: Value,
        sink: &mut dyn MetricsSink,
    ) {
        let _ = sink;
        self.observe(comm, now, value);
    }

    /// Should `host`'s replica of `task` be dropped from the vote at
    /// `now`?
    fn exclude_replica(&mut self, task: TaskId, host: HostId, now: Tick) -> bool {
        let _ = (task, host, now);
        false
    }

    /// Whether [`Supervisor::observe`] / [`Supervisor::observe_with`] are
    /// no-ops for this supervisor.
    ///
    /// Returning `true` is a *contract*: neither call ever changes state
    /// or touches the sink, so a caller may skip both entirely
    /// (`exclude_replica` is still consulted). The bit-sliced kernel uses
    /// this to elide per-lane hook loops. The default is conservatively
    /// `false` (always call).
    fn is_passive(&self) -> bool {
        false
    }
}

/// The do-nothing supervisor used by plain [`Simulation::run`].
///
/// [`Simulation::run`]: crate::Simulation::run
#[derive(Debug, Clone, Copy, Default)]
pub struct NoSupervisor;

impl Supervisor for NoSupervisor {
    fn observe(&mut self, _comm: CommunicatorId, _now: Tick, _value: Value) {}

    fn is_passive(&self) -> bool {
        true
    }
}

/// Configuration of the online monitor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonitorConfig {
    /// Sliding-window length, in communicator updates.
    pub window: usize,
    /// Confidence level of the Hoeffding band (in `(0, 1)`).
    pub confidence: f64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            window: 200,
            confidence: 0.99,
        }
    }
}

/// Whether an alarm was raised or cleared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlarmKind {
    /// The windowed mean fell confidently below the LRC.
    Raised,
    /// The windowed mean recovered to the LRC.
    Cleared,
}

/// One monitor alarm transition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Alarm {
    /// The communicator whose LRC is concerned.
    pub comm: CommunicatorId,
    /// Update instant at which the transition fired.
    pub at: Tick,
    /// Raised or cleared.
    pub kind: AlarmKind,
    /// Windowed mean at the transition.
    pub mean: f64,
    /// Hoeffding deviation for the window length at the transition.
    pub epsilon: f64,
    /// The declared LRC µ_c.
    pub lrc: f64,
}

/// Per-communicator window state.
#[derive(Debug, Clone)]
struct CommWindow {
    lrc: f64,
    window: SlidingMean,
    active: bool,
    first_violation: Option<Tick>,
    /// First instant the full-window mean dipped below µ_c by at least
    /// *half* the Hoeffding band — the ground-truth violation the alarm
    /// is supposed to catch. The half-band margin keeps single-failure
    /// noise out: for tight constraints (µ_c > 1 − 1/window) a lone
    /// failed update already puts the plain mean under µ_c, which would
    /// make every finite run a "violation". A dip the monitor never
    /// alarmed on within one window is a monitor miss (the fuzzer's
    /// headline objective).
    first_dip: Option<Tick>,
    /// Updates observed so far (the clock [`CommWindow::dip_update`] and
    /// [`CommWindow::alarm_update`] are measured on).
    updates: u64,
    /// Update index of `first_dip`.
    dip_update: Option<u64>,
    /// Update index of the first raised alarm.
    alarm_update: Option<u64>,
}

/// The online LRC monitor: one sliding window per communicator carrying
/// a long-run constraint.
#[derive(Debug, Clone)]
pub struct LrcMonitor {
    config: MonitorConfig,
    /// Indexed by communicator; `None` for communicators without an LRC.
    windows: Vec<Option<CommWindow>>,
    alarms: Vec<Alarm>,
}

impl LrcMonitor {
    /// A monitor over every communicator of `spec` that declares an LRC.
    pub fn new(spec: &Specification, config: MonitorConfig) -> Self {
        assert!(config.window > 0, "window must be positive");
        assert!(
            config.confidence > 0.0 && config.confidence < 1.0,
            "confidence must be in (0, 1)"
        );
        LrcMonitor {
            config,
            windows: spec
                .communicator_ids()
                .map(|c| {
                    spec.communicator(c).lrc().map(|lrc| CommWindow {
                        lrc: lrc.get(),
                        window: SlidingMean::new(config.window),
                        active: false,
                        first_violation: None,
                        first_dip: None,
                        updates: 0,
                        dip_update: None,
                        alarm_update: None,
                    })
                })
                .collect(),
            alarms: Vec::new(),
        }
    }

    /// The monitor's configuration.
    pub fn config(&self) -> MonitorConfig {
        self.config
    }

    /// All alarm transitions so far, in firing order.
    pub fn alarms(&self) -> &[Alarm] {
        &self.alarms
    }

    /// Is an alarm currently active for `comm`?
    pub fn active(&self, comm: CommunicatorId) -> bool {
        self.windows[comm.index()]
            .as_ref()
            .is_some_and(|w| w.active)
    }

    /// The instant of the first raised alarm for `comm`, if any — the
    /// "time to first LRC violation" statistic of the campaign report.
    pub fn first_violation(&self, comm: CommunicatorId) -> Option<Tick> {
        self.windows[comm.index()]
            .as_ref()
            .and_then(|w| w.first_violation)
    }

    /// The first instant the full-window mean for `comm` dipped below
    /// µ_c by at least half the Hoeffding band, if it ever did — the
    /// empirical µ-violation the alarm is supposed to catch. When
    /// `first_dip` is `Some` and [`LrcMonitor::dip_alarmed`] is `false`,
    /// the monitor *missed* the violation.
    pub fn first_dip(&self, comm: CommunicatorId) -> Option<Tick> {
        self.windows[comm.index()].as_ref().and_then(|w| w.first_dip)
    }

    /// Whether the dip on `comm` was caught: an alarm was raised no
    /// later than one full window of updates after [`first_dip`]. Under
    /// a monotone decay the dip threshold (half band) is necessarily
    /// crossed a few updates before the alarm threshold (full band), so
    /// a promptly trailing alarm still counts as catching the violation;
    /// only a monitor that stayed silent for a whole further window — or
    /// forever — has missed it. `false` when there was no dip.
    ///
    /// [`first_dip`]: LrcMonitor::first_dip
    pub fn dip_alarmed(&self, comm: CommunicatorId) -> bool {
        self.windows[comm.index()].as_ref().is_some_and(|w| {
            match (w.dip_update, w.alarm_update) {
                (Some(d), Some(a)) => a <= d + self.config.window as u64,
                _ => false,
            }
        })
    }
}

impl Supervisor for LrcMonitor {
    fn observe(&mut self, comm: CommunicatorId, now: Tick, value: Value) {
        let Some(w) = &mut self.windows[comm.index()] else {
            return;
        };
        w.window.push(value.is_reliable());
        w.updates += 1;
        let mean = w.window.mean();
        let epsilon = hoeffding_epsilon(w.window.len(), self.config.confidence);
        if w.first_dip.is_none() && w.window.len() >= self.config.window && mean + epsilon / 2.0 < w.lrc
        {
            // The full-window mean is under µ_c by half the band: a
            // ground-truth violation, whether or not the full band makes
            // it confident enough to alarm.
            w.first_dip = Some(now);
            w.dip_update = Some(w.updates);
        }
        if !w.active && mean + epsilon < w.lrc {
            // Even the optimistic end of the confidence band is below
            // µ_c: the violation is statistically confident.
            w.active = true;
            w.alarm_update.get_or_insert(w.updates);
            w.first_violation.get_or_insert(now);
            self.alarms.push(Alarm {
                comm,
                at: now,
                kind: AlarmKind::Raised,
                mean,
                epsilon,
                lrc: w.lrc,
            });
        } else if w.active && mean >= w.lrc {
            w.active = false;
            self.alarms.push(Alarm {
                comm,
                at: now,
                kind: AlarmKind::Cleared,
                mean,
                epsilon,
                lrc: w.lrc,
            });
        }
    }

    fn observe_with(
        &mut self,
        comm: CommunicatorId,
        now: Tick,
        value: Value,
        sink: &mut dyn MetricsSink,
    ) {
        let seen = self.alarms.len();
        self.observe(comm, now, value);
        if sink.enabled() {
            emit_alarms(&self.alarms[seen..], sink);
        }
    }
}

/// Records freshly fired alarm transitions on the sink — counters plus
/// flight-recorder events (an `AlarmRaised` event is what triggers the
/// recorder's automatic dump).
fn emit_alarms(fresh: &[Alarm], sink: &mut dyn MetricsSink) {
    for alarm in fresh {
        match alarm.kind {
            AlarmKind::Raised => {
                sink.inc(names::ALARM_RAISED);
                sink.event(&ObsEvent::AlarmRaised {
                    at: alarm.at.as_u64(),
                    comm: alarm.comm.index(),
                    mean: alarm.mean,
                    epsilon: alarm.epsilon,
                    lrc: alarm.lrc,
                });
            }
            AlarmKind::Cleared => {
                sink.inc(names::ALARM_CLEARED);
                sink.event(&ObsEvent::AlarmCleared {
                    at: alarm.at.as_u64(),
                    comm: alarm.comm.index(),
                    mean: alarm.mean,
                });
            }
        }
    }
}

/// A scripted response to an LRC alarm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Response {
    /// Drop `host`'s replica of `task` from execution and voting.
    DropReplica {
        /// The replicated task.
        task: TaskId,
        /// The replica host to drop.
        host: HostId,
    },
    /// Emit an E-machine mode-switch event (consumed by a modal program's
    /// `Platform::event` feed; switches take effect at round boundaries).
    ModeSwitch {
        /// The event number passed to the E-machine.
        event: u32,
    },
}

/// Binds an alarm source to its response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradationRule {
    /// Respond when this communicator's alarm is first raised.
    pub comm: CommunicatorId,
    /// The scripted response.
    pub response: Response,
}

/// Graceful-degradation supervisor: an [`LrcMonitor`] plus scripted
/// rules. A rule *engages* at its communicator's first raised alarm and
/// stays engaged (latched) — degraded configurations are not
/// automatically re-upgraded, matching the operational practice of
/// requiring explicit re-admission of a flaky replica.
#[derive(Debug, Clone)]
pub struct Degrader {
    monitor: LrcMonitor,
    rules: Vec<DegradationRule>,
    engaged: Vec<Option<Tick>>,
    mode_events: Vec<(Tick, u32)>,
}

impl Degrader {
    /// Wraps `monitor` with degradation `rules`.
    pub fn new(monitor: LrcMonitor, rules: Vec<DegradationRule>) -> Self {
        let n = rules.len();
        Degrader {
            monitor,
            rules,
            engaged: vec![None; n],
            mode_events: Vec::new(),
        }
    }

    /// The wrapped monitor (alarms, active flags, first violations).
    pub fn monitor(&self) -> &LrcMonitor {
        &self.monitor
    }

    /// The engagement instant of rule `i`, if it fired.
    pub fn engaged_at(&self, i: usize) -> Option<Tick> {
        self.engaged[i]
    }

    /// Mode-switch events emitted so far, as `(instant, event)` pairs —
    /// feed these to a modal E-machine's `Platform::event`.
    pub fn mode_events(&self) -> &[(Tick, u32)] {
        &self.mode_events
    }
}

impl Supervisor for Degrader {
    fn observe(&mut self, comm: CommunicatorId, now: Tick, value: Value) {
        self.monitor.observe(comm, now, value);
        for (i, rule) in self.rules.iter().enumerate() {
            if self.engaged[i].is_none() && rule.comm == comm && self.monitor.active(comm) {
                self.engaged[i] = Some(now);
                if let Response::ModeSwitch { event } = rule.response {
                    self.mode_events.push((now, event));
                }
            }
        }
    }

    fn observe_with(
        &mut self,
        comm: CommunicatorId,
        now: Tick,
        value: Value,
        sink: &mut dyn MetricsSink,
    ) {
        if !sink.enabled() {
            self.observe(comm, now, value);
            return;
        }
        let alarms_seen = self.monitor.alarms.len();
        let engaged_seen: Vec<bool> = self.engaged.iter().map(Option::is_some).collect();
        self.observe(comm, now, value);
        emit_alarms(&self.monitor.alarms[alarms_seen..], sink);
        for (i, was) in engaged_seen.iter().enumerate() {
            if !was && self.engaged[i].is_some() {
                sink.inc(names::DEGRADER_ENGAGED);
                sink.event(&ObsEvent::DegraderEngaged {
                    at: now.as_u64(),
                    rule: i,
                });
                if let Response::ModeSwitch { event } = self.rules[i].response {
                    sink.inc(names::MODE_SWITCH);
                    sink.event(&ObsEvent::ModeSwitch {
                        at: now.as_u64(),
                        event: event.to_string(),
                    });
                }
            }
        }
    }

    fn exclude_replica(&mut self, task: TaskId, host: HostId, _now: Tick) -> bool {
        self.rules.iter().zip(&self.engaged).any(|(rule, engaged)| {
            engaged.is_some()
                && matches!(rule.response,
                    Response::DropReplica { task: t, host: h } if t == task && h == host)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logrel_core::{CommunicatorDecl, Reliability, TaskDecl, ValueType};

    fn spec_with_lrc(lrc: f64) -> (Specification, CommunicatorId) {
        let mut sb = Specification::builder();
        let s = sb
            .communicator(
                CommunicatorDecl::new("s", ValueType::Float, 10)
                    .unwrap()
                    .from_sensor(),
            )
            .unwrap();
        let u = sb
            .communicator(
                CommunicatorDecl::new("u", ValueType::Float, 10)
                    .unwrap()
                    .with_lrc(Reliability::new(lrc).unwrap()),
            )
            .unwrap();
        sb.task(TaskDecl::new("t").reads(s, 0).writes(u, 1)).unwrap();
        (sb.build().unwrap(), u)
    }

    #[test]
    fn monitor_raises_and_clears() {
        let (spec, u) = spec_with_lrc(0.9);
        let mut m = LrcMonitor::new(
            &spec,
            MonitorConfig {
                window: 50,
                confidence: 0.99,
            },
        );
        // Healthy stream: no alarm.
        for i in 0..100u64 {
            m.observe(u, Tick::new(i * 10), Value::Float(1.0));
        }
        assert!(!m.active(u));
        assert!(m.alarms().is_empty());
        // Outage: the window drains to 0, confidently below 0.9.
        for i in 100..150u64 {
            m.observe(u, Tick::new(i * 10), Value::Unreliable);
        }
        assert!(m.active(u));
        assert_eq!(m.alarms().len(), 1);
        assert_eq!(m.alarms()[0].kind, AlarmKind::Raised);
        assert!(m.alarms()[0].mean + m.alarms()[0].epsilon < 0.9);
        let first = m.first_violation(u).unwrap();
        // Recovery: mean climbs back to µ.
        for i in 150..260u64 {
            m.observe(u, Tick::new(i * 10), Value::Float(1.0));
        }
        assert!(!m.active(u));
        assert_eq!(m.alarms().len(), 2);
        assert_eq!(m.alarms()[1].kind, AlarmKind::Cleared);
        // first_violation is sticky across the clear.
        assert_eq!(m.first_violation(u), Some(first));
    }

    #[test]
    fn near_threshold_dip_is_a_monitor_miss() {
        // window 50, confidence 0.99: ε ≈ 0.2302, half band ≈ 0.1151.
        // A sustained mean around 0.75 is a ground-truth violation of
        // µ = 0.9 (below µ by more than ε/2) that the full band never
        // makes confident — the monitor sleeps through it.
        let (spec, u) = spec_with_lrc(0.9);
        let cfg = MonitorConfig {
            window: 50,
            confidence: 0.99,
        };
        let mut m = LrcMonitor::new(&spec, cfg);
        for i in 0..200u64 {
            let v = if i % 4 == 0 { Value::Unreliable } else { Value::Float(1.0) };
            m.observe(u, Tick::new(i * 10), v);
        }
        assert!(m.first_dip(u).is_some());
        assert!(m.alarms().is_empty(), "band never confident");
        assert!(!m.dip_alarmed(u), "dip with no alarm = miss");

        // A lone failure is noise, not a violation: the mean stays well
        // inside the half band.
        let mut m = LrcMonitor::new(&spec, cfg);
        for i in 0..200u64 {
            let v = if i == 100 { Value::Unreliable } else { Value::Float(1.0) };
            m.observe(u, Tick::new(i * 10), v);
        }
        assert_eq!(m.first_dip(u), None);
        assert!(!m.dip_alarmed(u));

        // A hard outage decays through the dip threshold a few updates
        // before the alarm threshold; the promptly trailing alarm still
        // counts as catching the violation.
        let mut m = LrcMonitor::new(&spec, cfg);
        for i in 0..60u64 {
            m.observe(u, Tick::new(i * 10), Value::Float(1.0));
        }
        for i in 60..120u64 {
            m.observe(u, Tick::new(i * 10), Value::Unreliable);
        }
        let dip = m.first_dip(u).expect("outage dips");
        let raised = m.alarms().iter().find(|a| a.kind == AlarmKind::Raised).unwrap();
        assert!(dip < raised.at, "half band crossed first");
        assert!(m.dip_alarmed(u), "alarm within one window catches it");
    }

    #[test]
    fn monitor_ignores_unconstrained_communicators() {
        let (spec, _u) = spec_with_lrc(0.9);
        let s = spec.find_communicator("s").unwrap();
        let mut m = LrcMonitor::new(&spec, MonitorConfig::default());
        for i in 0..1000u64 {
            m.observe(s, Tick::new(i), Value::Unreliable);
        }
        assert!(!m.active(s));
        assert!(m.alarms().is_empty());
        assert_eq!(m.first_violation(s), None);
    }

    #[test]
    fn short_window_stays_inconclusive() {
        // With only a handful of samples ε is huge, so even an all-zero
        // prefix cannot be a *confident* violation of a small µ.
        let (spec, u) = spec_with_lrc(0.5);
        let mut m = LrcMonitor::new(
            &spec,
            MonitorConfig {
                window: 400,
                confidence: 0.99,
            },
        );
        for i in 0..5u64 {
            m.observe(u, Tick::new(i * 10), Value::Unreliable);
        }
        // ε(5, 0.99) ≈ 0.73 > 0.5: not confident yet.
        assert!(!m.active(u));
        // Plenty more zeros: ε(n) shrinks below 0.5 and the alarm fires.
        for i in 5..200u64 {
            m.observe(u, Tick::new(i * 10), Value::Unreliable);
        }
        assert!(m.active(u));
    }

    #[test]
    fn degrader_latches_and_excludes() {
        let (spec, u) = spec_with_lrc(0.9);
        let t = spec.find_task("t").unwrap();
        let h = HostId::new(1);
        let mut d = Degrader::new(
            LrcMonitor::new(
                &spec,
                MonitorConfig {
                    window: 50,
                    confidence: 0.99,
                },
            ),
            vec![
                DegradationRule {
                    comm: u,
                    response: Response::DropReplica { task: t, host: h },
                },
                DegradationRule {
                    comm: u,
                    response: Response::ModeSwitch { event: 3 },
                },
            ],
        );
        assert!(!d.exclude_replica(t, h, Tick::ZERO));
        for i in 0..60u64 {
            d.observe(u, Tick::new(i * 10), Value::Unreliable);
        }
        assert!(d.monitor().active(u));
        assert!(d.exclude_replica(t, h, Tick::new(600)));
        assert!(!d.exclude_replica(t, HostId::new(0), Tick::new(600)));
        assert_eq!(d.mode_events().len(), 1);
        assert_eq!(d.mode_events()[0].1, 3);
        let engaged = d.engaged_at(0).unwrap();
        // Recovery clears the alarm but the rule stays engaged (latched).
        for i in 60..200u64 {
            d.observe(u, Tick::new(i * 10), Value::Float(1.0));
        }
        assert!(!d.monitor().active(u));
        assert!(d.exclude_replica(t, h, Tick::new(2000)));
        assert_eq!(d.engaged_at(0), Some(engaged));
        assert_eq!(d.mode_events().len(), 1, "mode switch fires once");
    }
}
