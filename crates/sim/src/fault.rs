//! Fault injection.
//!
//! Hosts are fail-silent: a failed invocation produces no output at all.
//! [`ProbabilisticFaults`] draws independent per-invocation faults from the
//! architecture's `hrel`/`srel`/broadcast reliabilities — exactly the
//! probability space `Pr_I` over which Proposition 1 is stated.
//! [`UnplugAt`] reproduces the paper's §4 experiment ("we unplugged one of
//! the two hosts from the network"): from a given instant on, one host
//! stays silent forever.
//!
//! Every wrapper injector composes over any inner [`FaultInjector`], so
//! scripted outages, crash processes and value corruption stack freely:
//! `PermanentFaults::wrapping(CorruptingFaults::new(0.1, -1.0), hazards)`
//! models crashing hosts that emit garbage while alive. The shared "dead
//! host stays dead" rule lives once in [`HostSilencer`]: a silenced host
//! neither executes, nor broadcasts, nor corrupts — fail-silence covers
//! every channel, including a host that crashed earlier in the same
//! instant.

use logrel_core::{Architecture, HostId, SensorId, TaskId, Tick};
use rand::rngs::StdRng;
use rand::Rng;

/// Decides, per invocation/reading/broadcast, whether a component works.
pub trait FaultInjector {
    /// Does `host` execute its task invocation at `now` correctly?
    fn host_ok(&mut self, host: HostId, now: Tick, rng: &mut StdRng) -> bool;
    /// Does `sensor` deliver a reliable reading at `now`?
    fn sensor_ok(&mut self, sensor: SensorId, now: Tick, rng: &mut StdRng) -> bool;
    /// Is the atomic broadcast of `host`'s outputs at `now` delivered?
    fn broadcast_ok(&mut self, host: HostId, now: Tick, rng: &mut StdRng) -> bool;
    /// May mutate a *delivered* replica's outputs — a non-fail-silent
    /// host emitting garbage instead of staying quiet. The paper assumes
    /// this never happens (fail-silence, its ref \[2\]); the default
    /// implementation honours that.
    fn corrupt(
        &mut self,
        host: HostId,
        now: Tick,
        outputs: &mut [logrel_core::Value],
        rng: &mut StdRng,
    ) {
        let _ = (host, now, outputs, rng);
    }
    /// The most recent instant at or before `now` at which `host` returned
    /// to service after a *scripted* outage, if any. The kernel gates a
    /// rejoined host's vote on the warm-up rule (memory-free tasks rejoin
    /// immediately; tasks with state wait one full round after the next
    /// round boundary). Injectors without rejoin semantics — including
    /// purely transient fault processes — report `None`.
    fn rejoined_at(&self, host: HostId, now: Tick) -> Option<Tick> {
        let _ = (host, now);
        None
    }
    /// Whether this injector's [`FaultInjector::corrupt`] may ever act.
    ///
    /// Returning `false` is a *contract*: `corrupt` never mutates the
    /// outputs **and never consumes randomness**, so a caller may skip the
    /// call entirely without shifting the draw sequence. The bit-sliced
    /// kernel uses this to elide per-replica output materialisation on
    /// fail-silent fault models. The default is conservatively `true`
    /// (slow but always correct for injectors that override `corrupt`).
    fn corrupts(&self) -> bool {
        true
    }
    /// Does the broadcast `sender` sent at `now` reach `receiver`?
    ///
    /// Network partitions make broadcast delivery *per-receiver* instead
    /// of all-or-nothing. The query is **pure** — scripted membership,
    /// never a random draw — so calling it (or not) cannot shift the
    /// injector's draw sequence. Default: everything is delivered.
    fn delivers(&self, sender: HostId, receiver: HostId, now: Tick) -> bool {
        let _ = (sender, receiver, now);
        true
    }
    /// Whether [`FaultInjector::delivers`] may ever return `false`.
    ///
    /// Returning `false` is a contract that `delivers` is constantly
    /// `true`, so the kernels may skip the per-receiver audience check
    /// entirely. The default is `false` (no partitions).
    fn partitions(&self) -> bool {
        false
    }
    /// Reports a vote's outcome back to the injector: the hosts whose
    /// replicas of `task` delivered into the vote at `now`, out of
    /// `total` assigned replicas. Adaptive adversaries use this feedback
    /// to pick their next target; the hook **must not draw randomness**
    /// (it is only called when [`FaultInjector::adaptive`] is `true`, so
    /// passive injectors keep bit-identical streams). Default: ignored.
    fn observe_vote(&mut self, task: TaskId, now: Tick, delivered: &[HostId], total: usize) {
        let _ = (task, now, delivered, total);
    }
    /// Whether this injector wants [`FaultInjector::observe_vote`]
    /// feedback. `false` (the default) is a contract that `observe_vote`
    /// is a no-op, so the kernels skip collecting delivered-host lists.
    fn adaptive(&self) -> bool {
        false
    }
}

/// Forwarding so wrappers can hold type-erased inner injectors (the
/// campaign runner composes scenarios over caller-supplied boxes).
impl FaultInjector for Box<dyn FaultInjector + '_> {
    fn host_ok(&mut self, host: HostId, now: Tick, rng: &mut StdRng) -> bool {
        (**self).host_ok(host, now, rng)
    }
    fn sensor_ok(&mut self, sensor: SensorId, now: Tick, rng: &mut StdRng) -> bool {
        (**self).sensor_ok(sensor, now, rng)
    }
    fn broadcast_ok(&mut self, host: HostId, now: Tick, rng: &mut StdRng) -> bool {
        (**self).broadcast_ok(host, now, rng)
    }
    fn corrupt(
        &mut self,
        host: HostId,
        now: Tick,
        outputs: &mut [logrel_core::Value],
        rng: &mut StdRng,
    ) {
        (**self).corrupt(host, now, outputs, rng);
    }
    fn rejoined_at(&self, host: HostId, now: Tick) -> Option<Tick> {
        (**self).rejoined_at(host, now)
    }
    fn corrupts(&self) -> bool {
        (**self).corrupts()
    }
    fn delivers(&self, sender: HostId, receiver: HostId, now: Tick) -> bool {
        (**self).delivers(sender, receiver, now)
    }
    fn partitions(&self) -> bool {
        (**self).partitions()
    }
    fn observe_vote(&mut self, task: TaskId, now: Tick, delivered: &[HostId], total: usize) {
        (**self).observe_vote(task, now, delivered, total);
    }
    fn adaptive(&self) -> bool {
        (**self).adaptive()
    }
}

/// The shared core of the silencing wrappers ([`UnplugAt`],
/// [`PermanentFaults`]): a policy that decides per `(host, now)` whether
/// the host is silenced, over an inner injector handling everything else.
///
/// The blanket [`FaultInjector`] impl encodes the "dead host stays dead"
/// rule exactly once: a silenced host fails its invocation, loses its
/// broadcast and never corrupts delivered outputs — even when the host
/// was marked down earlier within the same instant.
pub trait HostSilencer {
    /// The inner injector everything else delegates to.
    type Inner: FaultInjector;
    /// The inner injector.
    fn inner(&mut self) -> &mut Self::Inner;
    /// Shared view of the inner injector.
    fn inner_ref(&self) -> &Self::Inner;
    /// Invocation-time silencing decision. May consume randomness and
    /// mutate state (crash hazards are drawn here). Called exactly once
    /// per replica invocation, from `host_ok`.
    fn invocation_down(&mut self, host: HostId, now: Tick, rng: &mut StdRng) -> bool;
    /// Pure silencing query used for broadcast and corruption suppression
    /// within the same instant; must not consume randomness.
    fn is_down(&self, host: HostId, now: Tick) -> bool;
    /// Rejoin instant of `host` at `now`, if the policy scripts one.
    fn silencer_rejoined_at(&self, host: HostId, now: Tick) -> Option<Tick> {
        let _ = (host, now);
        None
    }
}

impl<S: HostSilencer> FaultInjector for S {
    fn host_ok(&mut self, host: HostId, now: Tick, rng: &mut StdRng) -> bool {
        if self.invocation_down(host, now, rng) {
            return false;
        }
        self.inner().host_ok(host, now, rng)
    }
    fn sensor_ok(&mut self, sensor: SensorId, now: Tick, rng: &mut StdRng) -> bool {
        self.inner().sensor_ok(sensor, now, rng)
    }
    fn broadcast_ok(&mut self, host: HostId, now: Tick, rng: &mut StdRng) -> bool {
        if self.is_down(host, now) {
            return false;
        }
        self.inner().broadcast_ok(host, now, rng)
    }
    fn corrupt(
        &mut self,
        host: HostId,
        now: Tick,
        outputs: &mut [logrel_core::Value],
        rng: &mut StdRng,
    ) {
        // A silenced host delivers nothing, so it cannot corrupt — this
        // covers hosts marked fail-silent earlier in the same instant.
        if !self.is_down(host, now) {
            self.inner().corrupt(host, now, outputs, rng);
        }
    }
    fn rejoined_at(&self, host: HostId, now: Tick) -> Option<Tick> {
        if let Some(rj) = self.silencer_rejoined_at(host, now) {
            return Some(rj);
        }
        self.inner_ref().rejoined_at(host, now)
    }
    fn corrupts(&self) -> bool {
        // Silencing only suppresses corruption; it never introduces it.
        self.inner_ref().corrupts()
    }
    // Partition membership and vote feedback are orthogonal to host
    // silencing; forward them so wrapped scenario injectors keep working.
    fn delivers(&self, sender: HostId, receiver: HostId, now: Tick) -> bool {
        self.inner_ref().delivers(sender, receiver, now)
    }
    fn partitions(&self) -> bool {
        self.inner_ref().partitions()
    }
    fn observe_vote(&mut self, task: TaskId, now: Tick, delivered: &[HostId], total: usize) {
        self.inner().observe_vote(task, now, delivered, total);
    }
    fn adaptive(&self) -> bool {
        self.inner_ref().adaptive()
    }
}

/// The fault-free injector: everything always works.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoFaults;

impl FaultInjector for NoFaults {
    fn host_ok(&mut self, _host: HostId, _now: Tick, _rng: &mut StdRng) -> bool {
        true
    }
    fn sensor_ok(&mut self, _sensor: SensorId, _now: Tick, _rng: &mut StdRng) -> bool {
        true
    }
    fn broadcast_ok(&mut self, _host: HostId, _now: Tick, _rng: &mut StdRng) -> bool {
        true
    }
    fn corrupts(&self) -> bool {
        false
    }
}

/// Independent per-invocation transient faults drawn from the
/// architecture's declared reliabilities.
#[derive(Debug, Clone)]
pub struct ProbabilisticFaults {
    host_rel: Vec<f64>,
    sensor_rel: Vec<f64>,
    broadcast_rel: f64,
}

impl ProbabilisticFaults {
    /// Derives fault probabilities from `arch`.
    pub fn from_architecture(arch: &Architecture) -> Self {
        ProbabilisticFaults {
            host_rel: arch
                .host_ids()
                .map(|h| arch.host(h).reliability().get())
                .collect(),
            sensor_rel: arch
                .sensor_ids()
                .map(|s| arch.sensor(s).reliability().get())
                .collect(),
            broadcast_rel: arch.broadcast_reliability().get(),
        }
    }
}

impl FaultInjector for ProbabilisticFaults {
    fn host_ok(&mut self, host: HostId, _now: Tick, rng: &mut StdRng) -> bool {
        rng.gen::<f64>() < self.host_rel[host.index()]
    }
    fn sensor_ok(&mut self, sensor: SensorId, _now: Tick, rng: &mut StdRng) -> bool {
        rng.gen::<f64>() < self.sensor_rel[sensor.index()]
    }
    fn broadcast_ok(&mut self, _host: HostId, _now: Tick, rng: &mut StdRng) -> bool {
        self.broadcast_rel >= 1.0 || rng.gen::<f64>() < self.broadcast_rel
    }
    fn corrupts(&self) -> bool {
        false
    }
}

/// A non-fail-silent fault model: instead of staying quiet, a faulty host
/// *delivers corrupted values* with probability `corruption` per
/// invocation (float outputs are replaced by a garbage constant). Used to
/// test the paper's fail-silence assumption: under `AnyReliable` voting a
/// single corrupted replica poisons the communicator; `Majority` voting
/// over ≥3 replicas recovers.
///
/// Composable: `CorruptingFaults::wrapping(inner, corruption, garbage)`
/// layers corruption over any inner fault process (the corruption draw
/// happens first, then the inner injector's own `corrupt`).
#[derive(Debug, Clone)]
pub struct CorruptingFaults<I = NoFaults> {
    inner: I,
    corruption: f64,
    garbage: f64,
}

impl CorruptingFaults {
    /// Corrupts each delivered replica independently with probability
    /// `corruption`, replacing float outputs by `garbage`.
    pub fn new(corruption: f64, garbage: f64) -> Self {
        Self::wrapping(NoFaults, corruption, garbage)
    }
}

impl<I> CorruptingFaults<I> {
    /// Layers corruption over `inner`.
    pub fn wrapping(inner: I, corruption: f64, garbage: f64) -> Self {
        CorruptingFaults {
            inner,
            corruption: corruption.clamp(0.0, 1.0),
            garbage,
        }
    }
}

impl<I: FaultInjector> FaultInjector for CorruptingFaults<I> {
    fn host_ok(&mut self, host: HostId, now: Tick, rng: &mut StdRng) -> bool {
        self.inner.host_ok(host, now, rng)
    }
    fn sensor_ok(&mut self, sensor: SensorId, now: Tick, rng: &mut StdRng) -> bool {
        self.inner.sensor_ok(sensor, now, rng)
    }
    fn broadcast_ok(&mut self, host: HostId, now: Tick, rng: &mut StdRng) -> bool {
        self.inner.broadcast_ok(host, now, rng)
    }
    fn corrupt(
        &mut self,
        host: HostId,
        now: Tick,
        outputs: &mut [logrel_core::Value],
        rng: &mut StdRng,
    ) {
        if rng.gen::<f64>() < self.corruption {
            for v in outputs.iter_mut() {
                if matches!(v, logrel_core::Value::Float(_)) {
                    *v = logrel_core::Value::Float(self.garbage);
                }
            }
        }
        self.inner.corrupt(host, now, outputs, rng);
    }
    fn rejoined_at(&self, host: HostId, now: Tick) -> Option<Tick> {
        self.inner.rejoined_at(host, now)
    }
    fn corrupts(&self) -> bool {
        // Even with `corruption == 0.0` the corrupt hook consumes one
        // draw per delivered replica, so the call can never be skipped.
        true
    }
    fn delivers(&self, sender: HostId, receiver: HostId, now: Tick) -> bool {
        self.inner.delivers(sender, receiver, now)
    }
    fn partitions(&self) -> bool {
        self.inner.partitions()
    }
    fn observe_vote(&mut self, task: TaskId, now: Tick, delivered: &[HostId], total: usize) {
        self.inner.observe_vote(task, now, delivered, total);
    }
    fn adaptive(&self) -> bool {
        self.inner.adaptive()
    }
}

/// Wraps another injector and silences one host permanently from `at` on.
#[derive(Debug, Clone)]
pub struct UnplugAt<I> {
    inner: I,
    host: HostId,
    at: Tick,
}

impl<I> UnplugAt<I> {
    /// Unplugs `host` at instant `at`, delegating everything else to
    /// `inner`.
    pub fn new(inner: I, host: HostId, at: Tick) -> Self {
        UnplugAt { inner, host, at }
    }
}

impl<I: FaultInjector> HostSilencer for UnplugAt<I> {
    type Inner = I;
    fn inner(&mut self) -> &mut I {
        &mut self.inner
    }
    fn inner_ref(&self) -> &I {
        &self.inner
    }
    fn invocation_down(&mut self, host: HostId, now: Tick, _rng: &mut StdRng) -> bool {
        self.is_down(host, now)
    }
    fn is_down(&self, host: HostId, now: Tick) -> bool {
        host == self.host && now >= self.at
    }
}

/// Permanent (crash) faults: at every invocation a still-alive host fails
/// with its hazard probability and then stays silent forever — the
/// fail-silent *crash* regime, in contrast to the paper's per-invocation
/// transient model. Useful for studying how long a replication degree
/// survives (experiment binaries sweep this).
///
/// Composable: `PermanentFaults::wrapping(inner, hazards)` runs the crash
/// process over any inner injector — e.g. corrupting hosts that
/// eventually crash. A crashed host is silenced on every channel,
/// including `corrupt`, from the instant it dies.
#[derive(Debug, Clone)]
pub struct PermanentFaults<I = NoFaults> {
    inner: I,
    hazard: Vec<f64>,
    dead: Vec<bool>,
}

impl PermanentFaults {
    /// Per-invocation crash hazards, one per host (index = host id).
    pub fn new(hazard: Vec<f64>) -> Self {
        Self::wrapping(NoFaults, hazard)
    }

    /// Uses `1 − hrel(h)` as the per-invocation crash hazard of each host.
    pub fn from_architecture(arch: &Architecture) -> Self {
        Self::new(
            arch.host_ids()
                .map(|h| 1.0 - arch.host(h).reliability().get())
                .collect(),
        )
    }
}

impl<I> PermanentFaults<I> {
    /// Runs the crash process over `inner`.
    pub fn wrapping(inner: I, hazard: Vec<f64>) -> Self {
        let n = hazard.len();
        PermanentFaults {
            inner,
            hazard,
            dead: vec![false; n],
        }
    }

    /// `true` if `host` has crashed so far.
    pub fn is_dead(&self, host: HostId) -> bool {
        self.dead[host.index()]
    }

    /// Number of hosts still alive.
    pub fn alive_count(&self) -> usize {
        self.dead.iter().filter(|&&d| !d).count()
    }
}

impl<I: FaultInjector> HostSilencer for PermanentFaults<I> {
    type Inner = I;
    fn inner(&mut self) -> &mut I {
        &mut self.inner
    }
    fn inner_ref(&self) -> &I {
        &self.inner
    }
    fn invocation_down(&mut self, host: HostId, _now: Tick, rng: &mut StdRng) -> bool {
        let i = host.index();
        if self.dead[i] {
            return true;
        }
        if rng.gen::<f64>() < self.hazard[i] {
            self.dead[i] = true;
            return true;
        }
        false
    }
    fn is_down(&self, host: HostId, _now: Tick) -> bool {
        self.dead[host.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logrel_core::{HostDecl, Reliability, SensorDecl, Value};
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn no_faults_is_always_ok() {
        let mut f = NoFaults;
        let mut r = rng();
        assert!(f.host_ok(HostId::new(0), Tick::ZERO, &mut r));
        assert!(f.sensor_ok(SensorId::new(0), Tick::ZERO, &mut r));
        assert!(f.broadcast_ok(HostId::new(0), Tick::ZERO, &mut r));
        assert_eq!(f.rejoined_at(HostId::new(0), Tick::ZERO), None);
    }

    #[test]
    fn probabilistic_faults_match_declared_rates() {
        let mut ab = logrel_core::Architecture::builder();
        ab.host(HostDecl::new("h", Reliability::new(0.7).unwrap()))
            .unwrap();
        ab.sensor(SensorDecl::new("s", Reliability::new(0.9).unwrap()))
            .unwrap();
        let arch = ab.build();
        let mut f = ProbabilisticFaults::from_architecture(&arch);
        let mut r = rng();
        let n = 200_000;
        let ok = (0..n)
            .filter(|_| f.host_ok(HostId::new(0), Tick::ZERO, &mut r))
            .count();
        let rate = ok as f64 / n as f64;
        assert!((rate - 0.7).abs() < 0.01, "rate {rate}");
        let ok_s = (0..n)
            .filter(|_| f.sensor_ok(SensorId::new(0), Tick::ZERO, &mut r))
            .count();
        assert!((ok_s as f64 / n as f64 - 0.9).abs() < 0.01);
        // Perfect broadcast never consumes randomness or fails.
        assert!(f.broadcast_ok(HostId::new(0), Tick::ZERO, &mut r));
    }

    #[test]
    fn unplug_silences_only_the_target_after_the_instant() {
        let mut f = UnplugAt::new(NoFaults, HostId::new(1), Tick::new(100));
        let mut r = rng();
        assert!(f.host_ok(HostId::new(1), Tick::new(99), &mut r));
        assert!(!f.host_ok(HostId::new(1), Tick::new(100), &mut r));
        assert!(!f.host_ok(HostId::new(1), Tick::new(500), &mut r));
        assert!(!f.broadcast_ok(HostId::new(1), Tick::new(100), &mut r));
        assert!(f.host_ok(HostId::new(0), Tick::new(500), &mut r));
        assert!(f.sensor_ok(SensorId::new(0), Tick::new(500), &mut r));
    }

    #[test]
    fn permanent_faults_kill_hosts_forever() {
        let mut f = PermanentFaults::new(vec![0.5, 0.0]);
        let mut r = rng();
        assert_eq!(f.alive_count(), 2);
        // Invoke host 0 until it dies (hazard 0.5: quickly).
        let mut died_at = None;
        for k in 0..100 {
            if !f.host_ok(HostId::new(0), Tick::new(k), &mut r) {
                died_at = Some(k);
                break;
            }
        }
        let died_at = died_at.expect("host 0 must crash with hazard 0.5");
        assert!(f.is_dead(HostId::new(0)));
        assert_eq!(f.alive_count(), 1);
        // Dead forever — and its broadcast is silenced with it.
        for k in died_at..died_at + 10 {
            assert!(!f.host_ok(HostId::new(0), Tick::new(k), &mut r));
            assert!(!f.broadcast_ok(HostId::new(0), Tick::new(k), &mut r));
        }
        // Host 1 (hazard 0) never dies.
        for k in 0..100 {
            assert!(f.host_ok(HostId::new(1), Tick::new(k), &mut r));
        }
        // Sensors are untouched by this injector; a live host broadcasts.
        assert!(f.sensor_ok(SensorId::new(0), Tick::ZERO, &mut r));
        assert!(f.broadcast_ok(HostId::new(1), Tick::ZERO, &mut r));
    }

    #[test]
    fn permanent_faults_from_architecture() {
        let mut ab = logrel_core::Architecture::builder();
        ab.host(HostDecl::new("h", Reliability::new(0.75).unwrap()))
            .unwrap();
        let f = PermanentFaults::from_architecture(&ab.build());
        assert!(!f.is_dead(HostId::new(0)));
        assert_eq!(f.alive_count(), 1);
    }

    #[test]
    fn seeded_rng_makes_injection_deterministic() {
        let mut ab = logrel_core::Architecture::builder();
        ab.host(HostDecl::new("h", Reliability::new(0.5).unwrap()))
            .unwrap();
        let arch = ab.build();
        let draw = || {
            let mut f = ProbabilisticFaults::from_architecture(&arch);
            let mut r = rng();
            (0..64)
                .map(|_| f.host_ok(HostId::new(0), Tick::ZERO, &mut r))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(), draw());
    }

    /// Regression: a host marked fail-silent earlier in the same instant
    /// must not corrupt outputs. Before the silencing rework, composing a
    /// corruption model under a crash process would still mutate the
    /// buffer (and burn a random draw) for a host that had already died.
    #[test]
    fn dead_hosts_never_corrupt() {
        let mut f = PermanentFaults::wrapping(CorruptingFaults::new(1.0, -1.0), vec![1.0]);
        let mut r = rng();
        // First invocation kills the host (hazard 1.0)...
        assert!(!f.host_ok(HostId::new(0), Tick::ZERO, &mut r));
        // ...so its corrupt hook must leave delivered outputs untouched,
        // even within the same instant.
        let mut outputs = [Value::Float(42.0)];
        f.corrupt(HostId::new(0), Tick::ZERO, &mut outputs, &mut r);
        assert_eq!(outputs, [Value::Float(42.0)]);

        // An unplugged host is equally barred from corrupting.
        let mut u = UnplugAt::new(CorruptingFaults::new(1.0, -1.0), HostId::new(0), Tick::ZERO);
        u.corrupt(HostId::new(0), Tick::ZERO, &mut outputs, &mut r);
        assert_eq!(outputs, [Value::Float(42.0)]);
        // But a different, live host still corrupts.
        u.corrupt(HostId::new(1), Tick::ZERO, &mut outputs, &mut r);
        assert_eq!(outputs, [Value::Float(-1.0)]);
    }

    /// The wrappers compose over arbitrary inner injectors in any order.
    #[test]
    fn wrappers_compose_in_both_orders() {
        let mut ab = logrel_core::Architecture::builder();
        ab.host(HostDecl::new("a", Reliability::new(0.9).unwrap()))
            .unwrap();
        ab.host(HostDecl::new("b", Reliability::new(0.9).unwrap()))
            .unwrap();
        let arch = ab.build();
        let mut r = rng();

        // Crash process over corruption over transient faults.
        let mut f = PermanentFaults::wrapping(
            CorruptingFaults::wrapping(ProbabilisticFaults::from_architecture(&arch), 1.0, -7.0),
            vec![0.0, 0.0],
        );
        let mut outputs = [Value::Float(1.0)];
        assert!(f.host_ok(HostId::new(0), Tick::ZERO, &mut r), "zero hazard keeps the host up");
        f.corrupt(HostId::new(0), Tick::ZERO, &mut outputs, &mut r);
        assert_eq!(outputs, [Value::Float(-7.0)], "live host corrupts through the stack");

        // Unplug over a crash process: the unplugged host is down even
        // though its hazard is zero.
        let mut g = UnplugAt::new(
            PermanentFaults::new(vec![0.0, 0.0]),
            HostId::new(1),
            Tick::new(10),
        );
        assert!(g.host_ok(HostId::new(1), Tick::new(9), &mut r));
        assert!(!g.host_ok(HostId::new(1), Tick::new(10), &mut r));
        assert!(g.host_ok(HostId::new(0), Tick::new(10), &mut r));
    }
}
