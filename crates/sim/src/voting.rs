//! Voting over replica outputs.
//!
//! The paper's runtime assumes *fail-silent* hosts: every delivered replica
//! output is correct, so "if there is at least one non-⊥ value, then the
//! communicator replication is assigned that value"
//! ([`VotingStrategy::AnyReliable`]). The paper cites \[2\] for the claim
//! that fail-silence is achievable at reasonable cost; this module makes
//! that assumption *testable*: with [`VotingStrategy::Majority`] the
//! runtime tolerates value-corrupting (non-fail-silent) replicas at the
//! price of needing a strict majority.

use logrel_core::Value;

/// How a communicator replication decides among received replica outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VotingStrategy {
    /// Take any delivered value (the paper's fail-silent voting): all
    /// delivered values are assumed identical and correct.
    #[default]
    AnyReliable,
    /// Per output, take the value delivered by a strict majority of the
    /// delivering replicas; no strict majority yields ⊥.
    Majority,
}

/// Votes over the per-replica delivered outputs (`None` = the replica was
/// silent). Returns one value per output position; positions that cannot
/// be decided are ⊥.
///
/// # Panics
///
/// Panics in debug builds if a delivered output list has a length other
/// than `arity`.
pub fn vote(
    replicas: &[Option<Vec<Value>>],
    arity: usize,
    strategy: VotingStrategy,
) -> Vec<Value> {
    let delivered: Vec<&Vec<Value>> = replicas.iter().flatten().collect();
    for d in &delivered {
        debug_assert_eq!(d.len(), arity, "output arity mismatch");
    }
    if delivered.is_empty() {
        return vec![Value::Unreliable; arity];
    }
    match strategy {
        VotingStrategy::AnyReliable => delivered[0].clone(),
        VotingStrategy::Majority => (0..arity)
            .map(|k| {
                let need = delivered.len() / 2 + 1;
                for candidate in &delivered {
                    let v = candidate[k];
                    let count = delivered.iter().filter(|d| d[k] == v).count();
                    if count >= need {
                        return v;
                    }
                }
                Value::Unreliable
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_delivery_is_bottom() {
        let out = vote(&[None, None], 2, VotingStrategy::AnyReliable);
        assert_eq!(out, vec![Value::Unreliable, Value::Unreliable]);
        let out = vote(&[], 1, VotingStrategy::Majority);
        assert_eq!(out, vec![Value::Unreliable]);
    }

    #[test]
    fn any_reliable_takes_the_first_delivery() {
        let out = vote(
            &[None, Some(vec![Value::Float(42.0)]), Some(vec![Value::Float(7.0)])],
            1,
            VotingStrategy::AnyReliable,
        );
        assert_eq!(out, vec![Value::Float(42.0)]);
    }

    #[test]
    fn majority_outvotes_a_corrupted_replica() {
        let out = vote(
            &[
                Some(vec![Value::Float(42.0)]),
                Some(vec![Value::Float(9999.0)]), // corrupted
                Some(vec![Value::Float(42.0)]),
            ],
            1,
            VotingStrategy::Majority,
        );
        assert_eq!(out, vec![Value::Float(42.0)]);
    }

    #[test]
    fn majority_with_two_way_split_is_bottom() {
        let out = vote(
            &[
                Some(vec![Value::Float(1.0)]),
                Some(vec![Value::Float(2.0)]),
            ],
            1,
            VotingStrategy::Majority,
        );
        assert_eq!(out, vec![Value::Unreliable]);
    }

    #[test]
    fn majority_votes_per_output_position() {
        let out = vote(
            &[
                Some(vec![Value::Float(1.0), Value::Int(7)]),
                Some(vec![Value::Float(1.0), Value::Int(8)]),
                Some(vec![Value::Float(2.0), Value::Int(8)]),
            ],
            2,
            VotingStrategy::Majority,
        );
        assert_eq!(out, vec![Value::Float(1.0), Value::Int(8)]);
    }

    #[test]
    fn single_delivery_is_its_own_majority() {
        let out = vote(
            &[Some(vec![Value::Bool(true)]), None],
            1,
            VotingStrategy::Majority,
        );
        assert_eq!(out, vec![Value::Bool(true)]);
    }
}
