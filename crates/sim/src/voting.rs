//! Voting over replica outputs.
//!
//! The paper's runtime assumes *fail-silent* hosts: every delivered replica
//! output is correct, so "if there is at least one non-⊥ value, then the
//! communicator replication is assigned that value"
//! ([`VotingStrategy::AnyReliable`]). The paper cites \[2\] for the claim
//! that fail-silence is achievable at reasonable cost; this module makes
//! that assumption *testable*: with [`VotingStrategy::Majority`] the
//! runtime tolerates value-corrupting (non-fail-silent) replicas at the
//! price of needing a strict majority.

use logrel_core::Value;

/// How a communicator replication decides among received replica outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VotingStrategy {
    /// Take any delivered value (the paper's fail-silent voting): all
    /// delivered values are assumed identical and correct.
    #[default]
    AnyReliable,
    /// Per output, take the value delivered by a strict majority of the
    /// delivering replicas; no strict majority yields ⊥.
    Majority,
}

/// Votes over the per-replica delivered outputs (`None` = the replica was
/// silent). Returns one value per output position; positions that cannot
/// be decided are ⊥.
///
/// # Panics
///
/// Panics in debug builds if a delivered output list has a length other
/// than `arity`.
pub fn vote(
    replicas: &[Option<Vec<Value>>],
    arity: usize,
    strategy: VotingStrategy,
) -> Vec<Value> {
    let delivered: Vec<&Vec<Value>> = replicas.iter().flatten().collect();
    for d in &delivered {
        debug_assert_eq!(d.len(), arity, "output arity mismatch");
    }
    if delivered.is_empty() {
        return vec![Value::Unreliable; arity];
    }
    match strategy {
        VotingStrategy::AnyReliable => delivered[0].clone(),
        VotingStrategy::Majority => (0..arity)
            .map(|k| {
                let need = delivered.len() / 2 + 1;
                for candidate in &delivered {
                    let v = candidate[k];
                    let count = delivered.iter().filter(|d| d[k] == v).count();
                    if count >= need {
                        return v;
                    }
                }
                Value::Unreliable
            })
            .collect(),
    }
}

/// Index-addressed variant of [`vote`] used by the compiled kernel: the
/// replica outputs live in one flat buffer (`replica_vals`, row `i` at
/// `i*arity..(i+1)*arity`), with `replica_ok[i]` marking delivery. Writes
/// the voted outputs into `out` and returns whether any replica delivered.
///
/// Produces bit-identical results to [`vote`] on the equivalent
/// `&[Option<Vec<Value>>]` view, without allocating.
///
/// # Panics
///
/// Panics if `out.len() != arity` or the buffers are shorter than the
/// replica count implies.
pub fn vote_into(
    replica_vals: &[Value],
    replica_ok: &[bool],
    arity: usize,
    strategy: VotingStrategy,
    out: &mut [Value],
) -> bool {
    assert_eq!(out.len(), arity, "output arity mismatch");
    assert!(replica_vals.len() >= replica_ok.len() * arity);
    let delivered = replica_ok.iter().filter(|&&ok| ok).count();
    if delivered == 0 {
        out.fill(Value::Unreliable);
        return false;
    }
    match strategy {
        VotingStrategy::AnyReliable => {
            // First delivered replica wins, as in `vote`.
            let first = replica_ok.iter().position(|&ok| ok).unwrap();
            out.copy_from_slice(&replica_vals[first * arity..(first + 1) * arity]);
        }
        VotingStrategy::Majority => {
            let need = delivered / 2 + 1;
            for (k, slot) in out.iter_mut().enumerate() {
                *slot = Value::Unreliable;
                // Candidates in delivery order; first strict majority wins.
                for (c, _) in replica_ok.iter().enumerate().filter(|&(_, &ok)| ok) {
                    let v = replica_vals[c * arity + k];
                    let count = replica_ok
                        .iter()
                        .enumerate()
                        .filter(|&(d, &ok)| ok && replica_vals[d * arity + k] == v)
                        .count();
                    if count >= need {
                        *slot = v;
                        break;
                    }
                }
            }
        }
    }
    true
}

/// Classifies how a vote resolved, for the observability layer — see
/// [`VoteOutcome`].
///
/// Takes the same flat-buffer view as [`vote_into`] (*after* corruption
/// was applied, so disagreement between delivering replicas is visible):
///
/// * no delivering replica → [`VoteOutcome::Silent`];
/// * all delivering replica rows equal → [`VoteOutcome::Unanimous`];
/// * otherwise, if every output position has a strict-majority value →
///   [`VoteOutcome::Majority`], else [`VoteOutcome::Tie`].
///
/// The classification is independent of the [`VotingStrategy`] actually
/// used to decide the value — it describes the ballot, not the decision.
#[must_use]
pub fn classify_outcome(
    replica_vals: &[Value],
    replica_ok: &[bool],
    arity: usize,
) -> logrel_obs::VoteOutcome {
    use logrel_obs::VoteOutcome;
    // Alloc-free: this runs once per vote in the observed hot loop, so
    // the delivering-index set is re-derived from `replica_ok` on the fly
    // instead of being collected.
    let delivered = replica_ok.iter().filter(|&&ok| ok).count();
    if delivered == 0 {
        return VoteOutcome::Silent;
    }
    let row = |i: usize| &replica_vals[i * arity..(i + 1) * arity];
    let ok_rows = || replica_ok.iter().enumerate().filter_map(|(i, &ok)| ok.then_some(i));
    let first = ok_rows().next().expect("delivered > 0");
    if ok_rows().skip(1).all(|i| row(i) == row(first)) {
        return VoteOutcome::Unanimous;
    }
    let need = delivered / 2 + 1;
    let all_positions_decided = (0..arity).all(|k| {
        ok_rows().any(|c| {
            let v = replica_vals[c * arity + k];
            ok_rows().filter(|&d| replica_vals[d * arity + k] == v).count() >= need
        })
    });
    if all_positions_decided {
        VoteOutcome::Majority
    } else {
        VoteOutcome::Tie
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_delivery_is_bottom() {
        let out = vote(&[None, None], 2, VotingStrategy::AnyReliable);
        assert_eq!(out, vec![Value::Unreliable, Value::Unreliable]);
        let out = vote(&[], 1, VotingStrategy::Majority);
        assert_eq!(out, vec![Value::Unreliable]);
    }

    #[test]
    fn any_reliable_takes_the_first_delivery() {
        let out = vote(
            &[None, Some(vec![Value::Float(42.0)]), Some(vec![Value::Float(7.0)])],
            1,
            VotingStrategy::AnyReliable,
        );
        assert_eq!(out, vec![Value::Float(42.0)]);
    }

    #[test]
    fn majority_outvotes_a_corrupted_replica() {
        let out = vote(
            &[
                Some(vec![Value::Float(42.0)]),
                Some(vec![Value::Float(9999.0)]), // corrupted
                Some(vec![Value::Float(42.0)]),
            ],
            1,
            VotingStrategy::Majority,
        );
        assert_eq!(out, vec![Value::Float(42.0)]);
    }

    #[test]
    fn majority_with_two_way_split_is_bottom() {
        let out = vote(
            &[
                Some(vec![Value::Float(1.0)]),
                Some(vec![Value::Float(2.0)]),
            ],
            1,
            VotingStrategy::Majority,
        );
        assert_eq!(out, vec![Value::Unreliable]);
    }

    #[test]
    fn majority_votes_per_output_position() {
        let out = vote(
            &[
                Some(vec![Value::Float(1.0), Value::Int(7)]),
                Some(vec![Value::Float(1.0), Value::Int(8)]),
                Some(vec![Value::Float(2.0), Value::Int(8)]),
            ],
            2,
            VotingStrategy::Majority,
        );
        assert_eq!(out, vec![Value::Float(1.0), Value::Int(8)]);
    }

    #[test]
    fn single_delivery_is_its_own_majority() {
        let out = vote(
            &[Some(vec![Value::Bool(true)]), None],
            1,
            VotingStrategy::Majority,
        );
        assert_eq!(out, vec![Value::Bool(true)]);
    }

    #[test]
    fn outcome_classification_covers_the_four_cases() {
        use logrel_obs::VoteOutcome;
        let f = Value::Float;
        assert_eq!(classify_outcome(&[], &[], 1), VoteOutcome::Silent);
        assert_eq!(
            classify_outcome(&[f(1.0), f(2.0)], &[false, false], 1),
            VoteOutcome::Silent
        );
        // A single delivering replica is trivially unanimous.
        assert_eq!(
            classify_outcome(&[f(1.0), f(2.0)], &[true, false], 1),
            VoteOutcome::Unanimous
        );
        assert_eq!(
            classify_outcome(&[f(1.0), f(1.0), f(1.0)], &[true, true, true], 1),
            VoteOutcome::Unanimous
        );
        // 2-of-3 agreement on every position: majority.
        assert_eq!(
            classify_outcome(&[f(1.0), f(2.0), f(1.0)], &[true, true, true], 1),
            VoteOutcome::Majority
        );
        // 1-vs-1 split: no strict majority anywhere.
        assert_eq!(
            classify_outcome(&[f(1.0), f(2.0)], &[true, true], 1),
            VoteOutcome::Tie
        );
        // Mixed positions: position 0 decided, position 1 split 1-1-1.
        assert_eq!(
            classify_outcome(
                &[f(1.0), f(7.0), f(1.0), f(8.0), f(2.0), f(9.0)],
                &[true, true, true],
                2
            ),
            VoteOutcome::Tie
        );
    }

    /// `vote_into` must agree with `vote` on every replica pattern.
    #[test]
    fn flat_voting_matches_reference_voting() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xB0BA);
        for _ in 0..500 {
            let n_rep = rng.gen_range(0..5usize);
            let arity = rng.gen_range(0..4usize);
            let replicas: Vec<Option<Vec<Value>>> = (0..n_rep)
                .map(|_| {
                    if rng.gen_bool(0.4) {
                        None
                    } else {
                        Some(
                            (0..arity)
                                // A tiny value domain forces frequent ties
                                // and splits.
                                .map(|_| Value::Int(rng.gen_range(0..3i64)))
                                .collect(),
                        )
                    }
                })
                .collect();
            let mut flat = vec![Value::Unreliable; n_rep * arity];
            let mut ok = vec![false; n_rep];
            for (i, r) in replicas.iter().enumerate() {
                if let Some(vals) = r {
                    ok[i] = true;
                    flat[i * arity..(i + 1) * arity].copy_from_slice(vals);
                }
            }
            for strategy in [VotingStrategy::AnyReliable, VotingStrategy::Majority] {
                let expected = vote(&replicas, arity, strategy);
                let mut got = vec![Value::Unreliable; arity];
                let delivered = vote_into(&flat, &ok, arity, strategy, &mut got);
                assert_eq!(got, expected, "{replicas:?} under {strategy:?}");
                assert_eq!(delivered, replicas.iter().any(Option::is_some));
            }
        }
    }
}
