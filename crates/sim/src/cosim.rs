//! Co-simulation: the generated E-code drives an independent platform
//! implementation of the runtime semantics.
//!
//! [`crate::kernel`] interprets the specification directly; here the same
//! semantics is reconstructed from the *compiled artefact*: one
//! [`EMachine`] per host executes its generated E-code, and a shared
//! [`Platform`] implements the drivers (sensor refresh, voting updates,
//! input latching) and the replica execution at release points.
//!
//! Because every host's program contains every communicator update and the
//! machines run in ascending host order at each instant, driver effects
//! are made idempotent per instant and the random draws happen in exactly
//! the kernel's order — so for equal seeds the co-simulation trace is
//! **bit-identical** to the kernel's, which is the strongest equivalence
//! check the code generator can get (see `tests/cosim_equivalence.rs`).

use crate::behavior::BehaviorMap;
use crate::environment::Environment;
use crate::fault::FaultInjector;
use crate::trace::Trace;
use crate::voting::{vote_into, VotingStrategy};
use logrel_core::{
    CommunicatorId, FailureModel, HostId, Implementation, Specification, TaskId, Tick, Value,
};
use logrel_emachine::{generate, DriverOp, EMachine, Platform};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

struct CoPlatform<'a> {
    spec: &'a Specification,
    imp: &'a Implementation,
    behaviors: &'a mut BehaviorMap,
    env: &'a mut dyn Environment,
    injector: &'a mut dyn FaultInjector,
    rng: StdRng,
    voting: VotingStrategy,
    round: u64,
    /// `(comm, slot)` → (writer, output index, rounds back).
    landing: BTreeMap<(CommunicatorId, u64), (TaskId, usize, u64)>,
    comm_values: Vec<Value>,
    latched: Vec<Vec<Value>>,
    /// Start of each task's slice in the flat result buffers.
    out_base: Vec<usize>,
    /// Voted task outputs by round parity, indexed `out_base[t] + out_idx`.
    result_vals: [Vec<Value>; 2],
    /// Whether at least one replica delivered, by round parity.
    result_delivered: [Vec<bool>; 2],
    /// Scratch: flat replica outputs (`replica × arity`) and delivery flags.
    replica_vals: Vec<Value>,
    replica_ok: Vec<bool>,
    /// Scratch: task inputs after default substitution.
    inputs_buf: Vec<Value>,
    /// Correlated-failure gates, constant over a run (see
    /// [`crate::fault::FaultInjector::partitions`]).
    parts: bool,
    adaptive: bool,
    /// Per-task partition audiences (empty unless `parts`).
    audiences: Vec<Vec<HostId>>,
    /// Releases collected during the current instant: (task, host).
    pending_releases: Vec<(TaskId, HostId)>,
    /// Idempotence guards: the last instant each driver ran.
    sensor_done: Vec<Option<Tick>>,
    update_done: Vec<Option<Tick>>,
    latch_done: Vec<Vec<Option<Tick>>>,
    advanced: Option<Tick>,
    trace: Trace,
}

impl<'a> CoPlatform<'a> {
    fn advance_if_needed(&mut self, now: Tick) {
        if self.advanced != Some(now) {
            self.advanced = Some(now);
            self.env.advance(now);
        }
    }

    /// Executes the deferred releases of instant `now` in (task, host)
    /// order — the kernel's sampling order.
    fn commit_releases(&mut self, now: Tick) {
        if self.pending_releases.is_empty() {
            return;
        }
        let mut pending = std::mem::take(&mut self.pending_releases);
        pending.sort();
        pending.dedup();
        let round_index = now.as_u64() / self.round;
        let mut by_task: BTreeMap<TaskId, Vec<HostId>> = BTreeMap::new();
        for (t, h) in pending {
            by_task.entry(t).or_default().push(h);
        }
        for (t, hosts) in by_task {
            let decl = self.spec.task(t);
            let raw = &self.latched[t.index()];
            let executes = match decl.failure_model() {
                FailureModel::Series => raw.iter().all(Value::is_reliable),
                FailureModel::Parallel => raw.iter().any(Value::is_reliable),
                FailureModel::Independent => true,
            };
            let n_out = decl.outputs().len();
            let outputs = if executes {
                self.inputs_buf.clear();
                self.inputs_buf.extend(raw.iter().enumerate().map(|(i, &v)| {
                    if v.is_reliable() {
                        v
                    } else {
                        decl.default_values()[i]
                    }
                }));
                self.behaviors.invoke(self.spec, t, &self.inputs_buf)
            } else {
                Vec::new()
            };
            self.replica_vals.clear();
            self.replica_vals.resize(hosts.len() * n_out, Value::Unreliable);
            self.replica_ok.clear();
            let stateful = decl
                .inputs()
                .iter()
                .any(|a| !self.spec.is_sensor_input(a.comm));
            for (i, &h) in hosts.iter().enumerate() {
                let host_ok = self.injector.host_ok(h, now, &mut self.rng);
                let bc_ok = self.injector.broadcast_ok(h, now, &mut self.rng)
                    && (!self.parts
                        || self.audiences[t.index()]
                            .iter()
                            .all(|&rcv| self.injector.delivers(h, rcv, now)));
                let warm = !stateful
                    || crate::kernel::warm_after_rejoin(
                        self.injector.rejoined_at(h, now),
                        now,
                        self.round,
                    );
                let ok = executes && host_ok && bc_ok && warm;
                if ok {
                    let slice = &mut self.replica_vals[i * n_out..(i + 1) * n_out];
                    slice.copy_from_slice(&outputs);
                    self.injector.corrupt(h, now, slice, &mut self.rng);
                }
                self.replica_ok.push(ok);
            }
            let parity = (round_index % 2) as usize;
            let base = self.out_base[t.index()];
            let delivered = vote_into(
                &self.replica_vals,
                &self.replica_ok,
                n_out,
                self.voting,
                &mut self.result_vals[parity][base..base + n_out],
            );
            if self.adaptive {
                let delivered_hosts: Vec<HostId> = hosts
                    .iter()
                    .zip(&self.replica_ok)
                    .filter_map(|(&h, &ok)| ok.then_some(h))
                    .collect();
                self.injector.observe_vote(t, now, &delivered_hosts, hosts.len());
            }
            self.result_delivered[parity][t.index()] = delivered;
        }
    }
}

impl Platform for CoPlatform<'_> {
    fn call(&mut self, _host: HostId, op: DriverOp, now: Tick) {
        self.advance_if_needed(now);
        match op {
            DriverOp::ReadSensors { comm } => {
                if self.sensor_done[comm.index()] == Some(now) {
                    return; // another host already refreshed it
                }
                self.sensor_done[comm.index()] = Some(now);
                let mut any_ok = false;
                for &s in self.imp.sensors_of(comm) {
                    if self.injector.sensor_ok(s, now, &mut self.rng) {
                        any_ok = true;
                    }
                }
                self.comm_values[comm.index()] = if any_ok {
                    self.env.sense(comm, now)
                } else {
                    Value::Unreliable
                };
            }
            DriverOp::UpdateCommunicator { comm, .. } => {
                if self.update_done[comm.index()] == Some(now) {
                    return;
                }
                self.update_done[comm.index()] = Some(now);
                if self.spec.is_sensor_input(comm) {
                    // The value was staged by ReadSensors just before.
                    self.trace.record(comm, now, self.comm_values[comm.index()]);
                    return;
                }
                let slot = now.as_u64() % self.round;
                let round_index = now.as_u64() / self.round;
                if let Some(&(t, out_idx, rounds_back)) = self.landing.get(&(comm, slot)) {
                    if round_index >= rounds_back {
                        let parity = ((round_index - rounds_back) % 2) as usize;
                        self.comm_values[comm.index()] =
                            if self.result_delivered[parity][t.index()] {
                                self.result_vals[parity][self.out_base[t.index()] + out_idx]
                            } else {
                                Value::Unreliable
                            };
                    }
                }
                self.trace.record(comm, now, self.comm_values[comm.index()]);
                let v = self.comm_values[comm.index()];
                self.env.actuate(comm, v, now);
            }
            DriverOp::LatchInput { task, index } => {
                let index = index as usize;
                if self.latch_done[task.index()][index] == Some(now) {
                    return;
                }
                self.latch_done[task.index()][index] = Some(now);
                let comm = self.spec.task(task).inputs()[index].comm;
                self.latched[task.index()][index] = self.comm_values[comm.index()];
            }
        }
    }

    fn release(&mut self, host: HostId, task: TaskId, now: Tick) {
        self.advance_if_needed(now);
        self.pending_releases.push((task, host));
    }
}

/// Parameters of a co-simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CosimParams {
    /// Number of rounds to execute.
    pub rounds: u64,
    /// RNG seed (shared with the kernel for bit-equality checks).
    pub seed: u64,
    /// The replica voting strategy.
    pub voting: VotingStrategy,
}

/// Runs the system for `params.rounds` rounds by executing the generated
/// E-code of every host, returning the recorded trace.
///
/// With equal inputs and seed, the result is bit-identical to
/// [`crate::kernel::Simulation::run`] on the same (static) implementation.
pub fn run_cosim(
    spec: &Specification,
    imp: &Implementation,
    behaviors: &mut BehaviorMap,
    env: &mut dyn Environment,
    injector: &mut dyn FaultInjector,
    hosts: impl IntoIterator<Item = HostId>,
    params: CosimParams,
) -> Trace {
    let CosimParams {
        rounds,
        seed,
        voting,
    } = params;
    let round = spec.round_period().as_u64();
    let (out_base, total_outputs) = logrel_core::roundprog::output_layout(spec);
    let landing = logrel_core::Calendar::new(spec).landing().clone();
    let parts = injector.partitions();
    let adaptive = injector.adaptive();
    let audiences = if parts {
        crate::kernel::task_audiences(spec, std::slice::from_ref(imp))
    } else {
        Vec::new()
    };
    let mut platform = CoPlatform {
        spec,
        imp,
        behaviors,
        env,
        injector,
        rng: StdRng::seed_from_u64(seed),
        voting,
        round,
        landing,
        comm_values: spec
            .communicator_ids()
            .map(|c| spec.communicator(c).init())
            .collect(),
        latched: spec
            .task_ids()
            .map(|t| vec![Value::Unreliable; spec.task(t).inputs().len()])
            .collect(),
        out_base,
        result_vals: [
            vec![Value::Unreliable; total_outputs],
            vec![Value::Unreliable; total_outputs],
        ],
        result_delivered: [
            vec![false; spec.task_count()],
            vec![false; spec.task_count()],
        ],
        replica_vals: Vec::new(),
        replica_ok: Vec::new(),
        parts,
        adaptive,
        audiences,
        inputs_buf: Vec::new(),
        pending_releases: Vec::new(),
        sensor_done: vec![None; spec.communicator_count()],
        update_done: vec![None; spec.communicator_count()],
        latch_done: spec
            .task_ids()
            .map(|t| vec![None; spec.task(t).inputs().len()])
            .collect(),
        advanced: None,
        trace: Trace::new(spec),
    };

    // One machine per host, run instant by instant in ascending host order
    // (so driver idempotence and RNG ordering match the kernel).
    let mut machines: Vec<EMachine> = hosts
        .into_iter()
        .map(|h| EMachine::new(generate(spec, imp, h), h))
        .collect();
    machines.sort_by_key(EMachine::host);

    let horizon = rounds * round;
    while let Some(next) = machines.iter().filter_map(EMachine::next_trigger).min() {
        if next.as_u64() >= horizon {
            break;
        }
        for m in &mut machines {
            m.run_until(next, &mut platform);
        }
        platform.commit_releases(next);
    }
    platform.trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::environment::ConstantEnvironment;
    use crate::fault::NoFaults;
    use logrel_core::{
        Architecture, CommunicatorDecl, HostDecl, Reliability, SensorDecl, SensorId, TaskDecl,
        ValueType,
    };

    #[test]
    fn cosim_computes_the_pipeline_function() {
        let mut sb = Specification::builder();
        let s = sb
            .communicator(
                CommunicatorDecl::new("s", ValueType::Float, 10)
                    .unwrap()
                    .from_sensor(),
            )
            .unwrap();
        let u = sb
            .communicator(CommunicatorDecl::new("u", ValueType::Float, 10).unwrap())
            .unwrap();
        let t = sb.task(TaskDecl::new("double").reads(s, 0).writes(u, 1)).unwrap();
        let spec = sb.build().unwrap();
        let mut ab = Architecture::builder();
        let h1 = ab
            .host(HostDecl::new("h1", Reliability::new(0.99).unwrap()))
            .unwrap();
        let h2 = ab
            .host(HostDecl::new("h2", Reliability::new(0.99).unwrap()))
            .unwrap();
        ab.sensor(SensorDecl::new("sn", Reliability::ONE)).unwrap();
        ab.wcet_all(t, 1).unwrap();
        ab.wctt_all(t, 1).unwrap();
        let arch = ab.build();
        let imp = Implementation::builder()
            .assign(t, [h1, h2])
            .bind_sensor(s, SensorId::new(0))
            .build(&spec, &arch)
            .unwrap();
        let mut behaviors = BehaviorMap::new();
        behaviors.register(t, |i: &[Value]| {
            vec![Value::Float(2.0 * i[0].as_float().unwrap_or(0.0))]
        });
        let mut env = ConstantEnvironment::new(Value::Float(21.0));
        let trace = run_cosim(
            &spec,
            &imp,
            &mut behaviors,
            &mut env,
            &mut NoFaults,
            arch.host_ids(),
            CosimParams {
                rounds: 5,
                seed: 1,
                voting: VotingStrategy::AnyReliable,
            },
        );
        let values = trace.values(u);
        assert_eq!(values.len(), 5);
        assert_eq!(values[0].1, Value::Float(0.0)); // init persists at t=0
        for &(_, v) in &values[1..] {
            assert_eq!(v, Value::Float(42.0));
        }
    }
}
