//! The environment: sensor sources and actuator sinks.
//!
//! The paper assumes the environment "writes identical values to all
//! replications of a sensor when the update is due"; [`Environment::sense`]
//! produces that single value (per-sensor *failures* are injected
//! separately by the fault injector). Output communicators are "read by
//! physical actuators": the kernel forwards every task-written communicator
//! update to [`Environment::actuate`], so a closed-loop plant can react.

use logrel_core::{CommunicatorId, Tick, Value};

/// The world outside the program.
pub trait Environment {
    /// Advances physical dynamics to logical instant `now`. Called once
    /// per event instant, before any sensing.
    fn advance(&mut self, now: Tick);

    /// The value the environment writes to sensor-fed communicator `comm`
    /// at `now` (identical across replicated sensors).
    fn sense(&mut self, comm: CommunicatorId, now: Tick) -> Value;

    /// Observes the update of task-written communicator `comm` (actuator
    /// communicators act on it; others may be ignored).
    fn actuate(&mut self, comm: CommunicatorId, value: Value, now: Tick);

    /// Whether [`Environment::advance`] and [`Environment::actuate`] are
    /// both no-ops for this environment.
    ///
    /// Returning `true` is a *contract*: neither call ever changes state
    /// or is otherwise observed, so a caller may skip both entirely
    /// (sensing still happens). The bit-sliced kernel uses this to elide
    /// per-lane hook loops on passive environments. The default is
    /// conservatively `false` (always call).
    fn is_passive(&self) -> bool {
        false
    }
}

/// Forwarding so wrappers (e.g. the scenario layer) can hold type-erased
/// inner environments.
impl Environment for Box<dyn Environment + '_> {
    fn advance(&mut self, now: Tick) {
        (**self).advance(now);
    }
    fn sense(&mut self, comm: CommunicatorId, now: Tick) -> Value {
        (**self).sense(comm, now)
    }
    fn actuate(&mut self, comm: CommunicatorId, value: Value, now: Tick) {
        (**self).actuate(comm, value, now);
    }
    fn is_passive(&self) -> bool {
        (**self).is_passive()
    }
}

/// An environment returning each sensor communicator's configured constant
/// and ignoring actuations — the default for reliability-only experiments.
#[derive(Debug, Clone)]
pub struct ConstantEnvironment {
    constants: std::collections::BTreeMap<CommunicatorId, Value>,
    fallback: Value,
}

impl Default for ConstantEnvironment {
    /// All sensors read ⊥ until configured.
    fn default() -> Self {
        ConstantEnvironment::new(Value::Unreliable)
    }
}

impl ConstantEnvironment {
    /// All sensors read `fallback`.
    pub fn new(fallback: Value) -> Self {
        ConstantEnvironment {
            constants: Default::default(),
            fallback,
        }
    }

    /// Overrides the value of one sensor communicator.
    pub fn set(&mut self, comm: CommunicatorId, value: Value) -> &mut Self {
        self.constants.insert(comm, value);
        self
    }
}

impl Environment for ConstantEnvironment {
    fn advance(&mut self, _now: Tick) {}

    fn sense(&mut self, comm: CommunicatorId, _now: Tick) -> Value {
        self.constants.get(&comm).copied().unwrap_or(self.fallback)
    }

    fn actuate(&mut self, _comm: CommunicatorId, _value: Value, _now: Tick) {}

    fn is_passive(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_environment_returns_overrides() {
        let mut env = ConstantEnvironment::new(Value::Float(1.0));
        env.set(CommunicatorId::new(2), Value::Float(9.0));
        assert_eq!(
            env.sense(CommunicatorId::new(2), Tick::ZERO),
            Value::Float(9.0)
        );
        assert_eq!(
            env.sense(CommunicatorId::new(0), Tick::ZERO),
            Value::Float(1.0)
        );
        env.advance(Tick::new(5));
        env.actuate(CommunicatorId::new(1), Value::Float(3.0), Tick::new(5));
    }
}
