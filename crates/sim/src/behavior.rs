//! Task function registries.
//!
//! The formal model's `fn_t` maps input values to output values; the
//! analyses never look inside it, so behaviours live here, keyed by task
//! id. Tasks are functions of their inputs only ("all tasks are
//! functionally correct and given identical inputs provide identical
//! outputs") — any controller state must flow through communicators.

use logrel_core::{Specification, TaskId, Value};
use std::collections::BTreeMap;

/// A task's computable function.
pub trait TaskBehavior {
    /// Computes the output list from the (reliable, default-substituted)
    /// input list. Must return exactly one value per declared output.
    fn invoke(&mut self, inputs: &[Value]) -> Vec<Value>;
}

impl<F> TaskBehavior for F
where
    F: FnMut(&[Value]) -> Vec<Value>,
{
    fn invoke(&mut self, inputs: &[Value]) -> Vec<Value> {
        self(inputs)
    }
}

/// A registry of task behaviours with a zero-valued fallback.
///
/// # Example
///
/// ```
/// use logrel_core::{TaskId, Value};
/// use logrel_sim::BehaviorMap;
///
/// let mut map = BehaviorMap::new();
/// map.register(TaskId::new(0), |inputs: &[Value]| {
///     let x = inputs[0].as_float().unwrap_or(0.0);
///     vec![Value::Float(2.0 * x)]
/// });
/// assert!(map.contains(TaskId::new(0)));
/// ```
#[derive(Default)]
pub struct BehaviorMap {
    map: BTreeMap<TaskId, Box<dyn TaskBehavior>>,
}

impl BehaviorMap {
    /// An empty registry (every task falls back to zero outputs).
    pub fn new() -> Self {
        BehaviorMap::default()
    }

    /// Registers a behaviour for `task`, replacing any previous one.
    pub fn register(&mut self, task: TaskId, behavior: impl TaskBehavior + 'static) {
        self.map.insert(task, Box::new(behavior));
    }

    /// `true` if `task` has a registered behaviour.
    pub fn contains(&self, task: TaskId) -> bool {
        self.map.contains_key(&task)
    }

    /// Invokes `task`'s behaviour, or produces each output communicator's
    /// type-zero if none is registered. The result is padded/truncated to
    /// exactly the declared output arity.
    pub fn invoke(&mut self, spec: &Specification, task: TaskId, inputs: &[Value]) -> Vec<Value> {
        let mut values = Vec::new();
        self.invoke_into(spec, task, inputs, &mut values);
        values
    }

    /// [`BehaviorMap::invoke`] into a caller-provided buffer (cleared
    /// first): the fallback and the padding allocate nothing, so the hot
    /// simulation loop can reuse one buffer across all task reads.
    pub fn invoke_into(
        &mut self,
        spec: &Specification,
        task: TaskId,
        inputs: &[Value],
        out: &mut Vec<Value>,
    ) {
        let outputs = spec.task(task).outputs();
        out.clear();
        match self.map.get_mut(&task) {
            Some(b) => out.extend(b.invoke(inputs)),
            None => out.extend(
                outputs
                    .iter()
                    .map(|a| spec.communicator(a.comm).value_type().zero()),
            ),
        }
        out.resize(
            outputs.len(),
            Value::Unreliable, // missing outputs are unreliable, loudly
        );
    }
}

impl std::fmt::Debug for BehaviorMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BehaviorMap")
            .field(
                "registered",
                &self.map.keys().map(ToString::to_string).collect::<Vec<_>>(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logrel_core::{CommunicatorDecl, TaskDecl, ValueType};

    fn spec() -> Specification {
        let mut b = Specification::builder();
        let s = b
            .communicator(
                CommunicatorDecl::new("s", ValueType::Float, 10)
                    .unwrap()
                    .from_sensor(),
            )
            .unwrap();
        let u = b
            .communicator(CommunicatorDecl::new("u", ValueType::Float, 10).unwrap())
            .unwrap();
        let v = b
            .communicator(CommunicatorDecl::new("v", ValueType::Int, 10).unwrap())
            .unwrap();
        b.task(TaskDecl::new("t").reads(s, 0).writes(u, 1).writes(v, 1))
            .unwrap();
        b.build().unwrap()
    }

    #[test]
    fn registered_behavior_is_invoked() {
        let spec = spec();
        let t = spec.find_task("t").unwrap();
        let mut map = BehaviorMap::new();
        map.register(t, |inputs: &[Value]| {
            let x = inputs[0].as_float().unwrap_or(0.0);
            vec![Value::Float(x + 1.0), Value::Int(7)]
        });
        let out = map.invoke(&spec, t, &[Value::Float(2.0)]);
        assert_eq!(out, vec![Value::Float(3.0), Value::Int(7)]);
    }

    #[test]
    fn fallback_produces_type_zeros() {
        let spec = spec();
        let t = spec.find_task("t").unwrap();
        let mut map = BehaviorMap::new();
        assert!(!map.contains(t));
        let out = map.invoke(&spec, t, &[Value::Float(2.0)]);
        assert_eq!(out, vec![Value::Float(0.0), Value::Int(0)]);
    }

    #[test]
    fn short_outputs_are_padded_with_bottom() {
        let spec = spec();
        let t = spec.find_task("t").unwrap();
        let mut map = BehaviorMap::new();
        map.register(t, |_: &[Value]| vec![Value::Float(1.0)]);
        let out = map.invoke(&spec, t, &[Value::Float(0.0)]);
        assert_eq!(out, vec![Value::Float(1.0), Value::Unreliable]);
    }

    #[test]
    fn long_outputs_are_truncated() {
        let spec = spec();
        let t = spec.find_task("t").unwrap();
        let mut map = BehaviorMap::new();
        map.register(t, |_: &[Value]| {
            vec![Value::Float(1.0), Value::Int(2), Value::Int(3)]
        });
        let out = map.invoke(&spec, t, &[Value::Float(0.0)]);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn stateful_behaviors_accumulate() {
        let spec = spec();
        let t = spec.find_task("t").unwrap();
        let mut map = BehaviorMap::new();
        let mut counter = 0i64;
        map.register(t, move |_: &[Value]| {
            counter += 1;
            vec![Value::Float(counter as f64), Value::Int(counter)]
        });
        assert_eq!(
            map.invoke(&spec, t, &[])[1],
            Value::Int(1)
        );
        assert_eq!(map.invoke(&spec, t, &[])[1], Value::Int(2));
    }

    #[test]
    fn debug_lists_registered_tasks() {
        let spec = spec();
        let t = spec.find_task("t").unwrap();
        let mut map = BehaviorMap::new();
        map.register(t, |_: &[Value]| vec![]);
        assert!(format!("{map:?}").contains("t0"));
    }
}
