//! The deterministic simulation kernel.
//!
//! The kernel executes the LET semantics of §2 directly at communicator
//! granularity. Within every event instant, strictly in this order:
//!
//! 1. **updates** — every communicator whose period divides the instant is
//!    updated: sensor-fed communicators take the environment's value if at
//!    least one bound sensor reading succeeds (⊥ otherwise); task-written
//!    instances take the voted replica output (⊥ if no replica delivered);
//!    unwritten instances persist their value;
//! 2. **latches** — each task input access `(c, i)` latches `c`'s value at
//!    instant `i·π_c` (so a task can read an instance *earlier* than its
//!    read time, even if the communicator is updated again in between);
//! 3. **reads/executions** — tasks whose read time is now apply their
//!    input failure model, execute logically once (all replicas compute
//!    the same function), and each replica independently succeeds or
//!    fail-silences under the fault injector; outputs land at their write
//!    instants, possibly in the next round.
//!
//! With a seeded RNG the whole run is bit-reproducible.
//!
//! # Host rejoin and warm-up
//!
//! When a scenario brings a crashed host back
//! ([`FaultInjector::rejoined_at`]), the host re-latches communicator
//! state from the next broadcast round. A replica of a *memory-free*
//! task — one whose inputs are all sensor-fed, so its output depends only
//! on the current round's fresh readings (Proposition 1's precondition) —
//! resumes voting immediately. A replica of a task *with state* (reading
//! at least one task-written communicator) stays out of the vote until
//! one full round after the first round boundary following the rejoin:
//! only then has it observed a complete round of broadcasts. Warm-up is
//! pure bookkeeping — every fault draw is still sampled, so the RNG
//! stream is unchanged.

use crate::behavior::BehaviorMap;
use crate::environment::Environment;
use crate::fault::FaultInjector;
use crate::trace::Trace;
use logrel_core::roundprog::UpdateOp;
use logrel_core::{
    Architecture, Calendar, CommunicatorId, FailureModel, HostId, RoundProgram, Specification,
    TaskId, Tick, TimeDependentImplementation, Value,
};
use logrel_obs::{names, DropReason, MetricsSink, NoopSink, ObsEvent, Span};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;
use std::sync::Arc;

/// Configuration of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimConfig {
    /// Number of rounds (π_S repetitions) to simulate.
    pub rounds: u64,
    /// RNG seed (every run with equal inputs and seed is identical).
    pub seed: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            rounds: 1000,
            seed: 0xC0FFEE,
        }
    }
}

/// Per-task delivery statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TaskStats {
    /// Rounds in which at least one replica delivered an output.
    pub delivered: u64,
    /// Total executed rounds.
    pub invocations: u64,
}

/// The result of a run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimOutput {
    /// The recorded communicator trace.
    pub trace: Trace,
    /// Per-task delivery statistics, indexed by task.
    pub task_stats: Vec<TaskStats>,
    /// The communicator values at the end of the run.
    pub final_values: Vec<Value>,
}

#[derive(Debug, Clone)]
struct TaskResult {
    outputs: Vec<Value>,
    delivered: bool,
}

/// Why [`Simulation::try_new`] rejected a system.
///
/// Without the `validate` feature the enum is uninhabited — compilation
/// cannot fail — and `try_new` always returns `Ok`.
#[derive(Debug, Clone)]
pub enum SimBuildError {
    /// The compiled round program failed self-certification against the
    /// specification's denotational dataflow (`validate` feature): a
    /// kernel-compiler bug, reported with the certifier's V-series
    /// diagnostics.
    #[cfg(feature = "validate")]
    Certification(Vec<logrel_lint::Diagnostic>),
}

impl SimBuildError {
    /// The certifier diagnostics carried by the error, if any (empty
    /// without the `validate` feature).
    #[cfg(feature = "validate")]
    pub fn diagnostics(&self) -> &[logrel_lint::Diagnostic] {
        match self {
            SimBuildError::Certification(diags) => diags,
        }
    }
}

impl fmt::Display for SimBuildError {
    #[cfg(feature = "validate")]
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimBuildError::Certification(diags) => {
                let rendered: Vec<String> =
                    diags.iter().map(|d| d.ci_line("<round-program>")).collect();
                write!(
                    f,
                    "compiled round program failed self-certification:\n{}",
                    rendered.join("\n")
                )
            }
        }
    }

    #[cfg(not(feature = "validate"))]
    fn fmt(&self, _f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {}
    }
}

impl std::error::Error for SimBuildError {}

/// A prepared simulation of one system.
pub struct Simulation<'a> {
    pub(crate) spec: &'a Specification,
    pub(crate) imp: &'a TimeDependentImplementation,
    pub(crate) voting: crate::voting::VotingStrategy,
    /// The per-round event schedule, retained for
    /// [`Simulation::run_reference`] and exposed via
    /// [`Simulation::calendar`]. Shared (`Arc`) so a compilation cache
    /// can hand the same schedule to many concurrent simulations.
    calendar: Arc<Calendar>,
    /// The compiled form of the calendar, used by [`Simulation::run`] and
    /// exposed via [`Simulation::round_program`]. Shared for the same
    /// reason as `calendar`.
    pub(crate) program: Arc<RoundProgram>,
}

impl<'a> Simulation<'a> {
    /// Prepares a simulation (precomputes the event calendar).
    ///
    /// With the `validate` feature enabled, the compiled round program is
    /// self-certified against the specification's denotational dataflow
    /// (see `logrel-validate`); a failed certificate is a compiler bug and
    /// panics with the rendered V-series diagnostics. Library callers that
    /// prefer a diagnosed error over the panic use
    /// [`Simulation::try_new`].
    pub fn new(
        spec: &'a Specification,
        arch: &'a Architecture,
        imp: &'a TimeDependentImplementation,
    ) -> Self {
        Simulation::try_new(spec, arch, imp).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`Simulation::new`]: a failed self-certification
    /// under the `validate` feature comes back as
    /// [`SimBuildError::Certification`] carrying the certifier's
    /// diagnostics instead of panicking. Without the feature the error
    /// type is uninhabited and this always succeeds.
    pub fn try_new(
        spec: &'a Specification,
        arch: &'a Architecture,
        imp: &'a TimeDependentImplementation,
    ) -> Result<Self, SimBuildError> {
        Simulation::try_new_observed(spec, arch, imp, &mut NoopSink)
    }

    /// Like [`Simulation::try_new`], but records the wall-clock
    /// compile/certify span gauges (`logrel_compile_seconds`,
    /// `logrel_certify_seconds`) on `sink`.
    ///
    /// Span gauges are wall-clock values: record them only in top-level
    /// drivers, never inside a Monte-Carlo replication (see the
    /// `logrel-obs` crate docs for the determinism rule).
    pub fn try_new_observed(
        spec: &'a Specification,
        arch: &'a Architecture,
        imp: &'a TimeDependentImplementation,
        sink: &mut dyn MetricsSink,
    ) -> Result<Self, SimBuildError> {
        // The replication mapping must refer only to declared hosts;
        // builder-validated implementations always satisfy this.
        debug_assert!(imp.phases().iter().all(|phase| {
            spec.task_ids()
                .flat_map(|t| phase.hosts_of(t).iter())
                .all(|h| h.index() < arch.host_count())
        }));
        let compile_span = sink.enabled().then(Span::start);
        let calendar = Calendar::new(spec);
        let program = RoundProgram::compile(spec, imp, &calendar);
        if let Some(span) = compile_span {
            span.finish(sink, names::COMPILE_SECONDS);
        }
        #[cfg(feature = "validate")]
        {
            let certify_span = sink.enabled().then(Span::start);
            let certified = logrel_validate::certify_kernel(spec, imp, &program);
            if let Some(span) = certify_span {
                span.finish(sink, names::CERTIFY_SECONDS);
            }
            if let Err(diags) = certified {
                return Err(SimBuildError::Certification(diags));
            }
        }
        Ok(Simulation {
            spec,
            imp,
            voting: crate::voting::VotingStrategy::default(),
            calendar: Arc::new(calendar),
            program: Arc::new(program),
        })
    }

    /// Builds a simulation around an already-compiled round program.
    ///
    /// This is the compilation-cache entry point: a service that has run
    /// [`Calendar::new`] + [`RoundProgram::compile`] once for a spec can
    /// share the `Arc`s across any number of concurrent simulations
    /// without re-compiling. The caller is responsible for having
    /// compiled `calendar`/`program` from exactly this `(spec, imp)`
    /// pair; `debug_assert`s check the shape but release builds trust it.
    pub fn with_program(
        spec: &'a Specification,
        imp: &'a TimeDependentImplementation,
        calendar: Arc<Calendar>,
        program: Arc<RoundProgram>,
    ) -> Self {
        debug_assert_eq!(calendar.events().len(), program.slots.len());
        Simulation {
            spec,
            imp,
            voting: crate::voting::VotingStrategy::default(),
            calendar,
            program,
        }
    }

    /// The shared handles to the compiled schedule and program, for
    /// callers that cache compilations (see [`Simulation::with_program`]).
    pub fn shared_program(&self) -> (Arc<Calendar>, Arc<RoundProgram>) {
        (Arc::clone(&self.calendar), Arc::clone(&self.program))
    }

    /// The compiled round program interpreted by [`Simulation::run`]
    /// (read-only introspection, e.g. for the translation validator).
    pub fn round_program(&self) -> &RoundProgram {
        &self.program
    }

    /// The per-round event schedule the program was compiled from.
    pub fn calendar(&self) -> &Calendar {
        &self.calendar
    }

    /// Selects the replica voting strategy (defaults to
    /// [`VotingStrategy::AnyReliable`], the paper's fail-silent voting).
    ///
    /// [`VotingStrategy::AnyReliable`]: crate::voting::VotingStrategy::AnyReliable
    pub fn set_voting(&mut self, strategy: crate::voting::VotingStrategy) -> &mut Self {
        self.voting = strategy;
        self
    }

    /// Runs the simulation by interpreting the compiled round program.
    ///
    /// Produces bit-identical output to [`Simulation::run_reference`] for
    /// equal inputs and seed: the instruction lists replay the reference
    /// interpreter's exact iteration orders, so every RNG draw, trace
    /// record and environment call happens in the same sequence.
    pub fn run(
        &self,
        behaviors: &mut BehaviorMap,
        env: &mut dyn Environment,
        injector: &mut dyn FaultInjector,
        config: &SimConfig,
    ) -> SimOutput {
        self.run_supervised(
            behaviors,
            env,
            injector,
            &mut crate::monitor::NoSupervisor,
            config,
        )
    }

    /// Runs the simulation with a runtime [`Supervisor`]: the supervisor
    /// observes every communicator update as it is recorded and may drop
    /// replicas from the vote ([`Supervisor::exclude_replica`]).
    ///
    /// With [`NoSupervisor`] this is exactly [`Simulation::run`] — the
    /// hooks never change the RNG stream (fault draws are sampled
    /// unconditionally), so supervised and plain runs of the same seed
    /// only diverge where a supervisor actively excludes a replica.
    ///
    /// [`Supervisor`]: crate::monitor::Supervisor
    /// [`Supervisor::exclude_replica`]: crate::monitor::Supervisor::exclude_replica
    /// [`NoSupervisor`]: crate::monitor::NoSupervisor
    pub fn run_supervised(
        &self,
        behaviors: &mut BehaviorMap,
        env: &mut dyn Environment,
        injector: &mut dyn FaultInjector,
        supervisor: &mut dyn crate::monitor::Supervisor,
        config: &SimConfig,
    ) -> SimOutput {
        self.run_observed(behaviors, env, injector, supervisor, &mut NoopSink, config)
    }

    /// Runs the simulation with a [`Supervisor`] *and* a [`MetricsSink`]
    /// recording per-round vote outcomes, replica drops, host up/down
    /// transitions, broadcast failures and alarm transitions.
    ///
    /// The kernel is generic over the sink: with [`NoopSink`] every
    /// observation site monomorphizes to nothing and this is exactly
    /// [`Simulation::run_supervised`] (which delegates here). The sink
    /// never influences the simulation — fault draws, trace records and
    /// supervisor hooks happen in the same order with the same values
    /// whether or not metrics are recorded, so instrumented and plain
    /// runs of one seed produce bit-identical [`SimOutput`]s.
    ///
    /// [`Supervisor`]: crate::monitor::Supervisor
    pub fn run_observed<M: MetricsSink>(
        &self,
        behaviors: &mut BehaviorMap,
        env: &mut dyn Environment,
        injector: &mut dyn FaultInjector,
        supervisor: &mut dyn crate::monitor::Supervisor,
        sink: &mut M,
        config: &SimConfig,
    ) -> SimOutput {
        let spec = self.spec;
        let prog = &self.program;
        let round = spec.round_period().as_u64();
        let phase_count = prog.phases.len() as u64;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut trace = Trace::new(spec);
        let mut comm_values: Vec<Value> = spec
            .communicator_ids()
            .map(|c| spec.communicator(c).init())
            .collect();
        // Flat scratch state, allocated once per run. The two result
        // buffers are indexed by round parity, as in the reference
        // interpreter's `results` array; a `false` delivered flag covers
        // both "no result yet" and "executed but silent" (both read as ⊥).
        let mut latched = vec![Value::Unreliable; prog.total_inputs];
        let mut result_vals =
            [vec![Value::Unreliable; prog.total_outputs], vec![Value::Unreliable; prog.total_outputs]];
        let mut result_delivered = [vec![false; spec.task_count()], vec![false; spec.task_count()]];
        let mut task_stats = vec![TaskStats::default(); spec.task_count()];
        let mut inputs_buf: Vec<Value> = Vec::with_capacity(prog.max_inputs);
        let mut outputs_buf: Vec<Value> = Vec::with_capacity(prog.max_outputs);
        let mut replica_vals = vec![Value::Unreliable; prog.max_replicas * prog.max_outputs];
        let mut replica_ok = vec![false; prog.max_replicas];

        // Correlated-failure hooks. Both gates are constant over a run:
        // with a partition-free injector the audience tables are never
        // built and the delivery check vanishes; with a non-adaptive
        // injector the vote is never echoed back. Neither hook draws from
        // the RNG, so gated and ungated runs share one fault-draw stream.
        let parts = injector.partitions();
        let adaptive = injector.adaptive();
        let audiences = if parts {
            task_audiences(spec, self.imp.phases())
        } else {
            Vec::new()
        };
        let mut delivered_hosts: Vec<HostId> = Vec::with_capacity(prog.max_replicas);

        // Observation-only state. `obs` is a constant `false` for
        // `NoopSink`, so with the default sink all the `if obs` blocks
        // below vanish after monomorphization. Counters and histogram
        // samples are batched in `tally` (flushed once after the loop);
        // events and gauges are order-sensitive and stay inline.
        let obs = sink.enabled();
        let mut tally = ObsTally::new(prog.max_replicas);
        let mut host_up: Vec<bool> = if obs {
            // Hosts mentioned by any phase's mapping; assumed up until an
            // availability draw says otherwise.
            let hosts = prog
                .phases
                .iter()
                .flat_map(|p| p.hosts.iter().flatten())
                .map(|h| h.index())
                .max()
                .map_or(0, |m| m + 1);
            sink.set_gauge(names::HOSTS_UP, hosts as f64);
            vec![true; hosts]
        } else {
            Vec::new()
        };
        let mut hosts_up_count = host_up.len();

        for r in 0..config.rounds {
            let phase = &prog.phases[(r % phase_count) as usize];
            let base = r * round;
            let parity = (r % 2) as usize;
            for sp in &prog.slots {
                let now = Tick::new(base + sp.offset);
                env.advance(now);

                // ---- 1. communicator updates due at this instant ----
                for op in &sp.updates {
                    match *op {
                        UpdateOp::Sensor { comm } => {
                            let c = CommunicatorId::new(comm);
                            let mut any_ok = false;
                            for &s in &phase.sensors[comm as usize] {
                                // Sample every sensor (no short-circuit) so
                                // the failure process is independent of
                                // evaluation order.
                                if injector.sensor_ok(s, now, &mut rng) {
                                    any_ok = true;
                                }
                            }
                            comm_values[comm as usize] = if any_ok {
                                env.sense(c, now)
                            } else {
                                Value::Unreliable
                            };
                            trace.record(c, now, comm_values[comm as usize]);
                            supervisor.observe_with(c, now, comm_values[comm as usize], sink);
                        }
                        UpdateOp::Landed {
                            comm,
                            task,
                            out_slot,
                            rounds_back,
                        } => {
                            let c = CommunicatorId::new(comm);
                            let rb = u64::from(rounds_back);
                            if r >= rb {
                                let p = ((r - rb) % 2) as usize;
                                comm_values[comm as usize] = if result_delivered[p][task as usize]
                                {
                                    result_vals[p][out_slot as usize]
                                } else {
                                    Value::Unreliable
                                };
                            }
                            // else: nothing produced yet, init persists.
                            trace.record(c, now, comm_values[comm as usize]);
                            supervisor.observe_with(c, now, comm_values[comm as usize], sink);
                            env.actuate(c, comm_values[comm as usize], now);
                        }
                        UpdateOp::Persist { comm } => {
                            let c = CommunicatorId::new(comm);
                            trace.record(c, now, comm_values[comm as usize]);
                            supervisor.observe_with(c, now, comm_values[comm as usize], sink);
                            env.actuate(c, comm_values[comm as usize], now);
                        }
                    }
                    if obs {
                        tally.updates += 1;
                        if !comm_values[op.comm()].is_reliable() {
                            tally.updates_unreliable += 1;
                        }
                    }
                }

                // ---- 2. latch input accesses due at this instant ----
                for l in &sp.latches {
                    latched[l.dst as usize] = comm_values[l.comm as usize];
                }

                // ---- 3. task reads / logical execution ----
                for &ti in &sp.reads {
                    let t = ti as usize;
                    let tt = &prog.tasks[t];
                    let raw = &latched[tt.in_base..tt.in_base + tt.n_in];
                    let any_reliable = raw.iter().any(Value::is_reliable);
                    let all_reliable = raw.iter().all(Value::is_reliable);
                    let executes = match tt.model {
                        FailureModel::Series => all_reliable,
                        FailureModel::Parallel => any_reliable,
                        FailureModel::Independent => true,
                    };
                    if executes {
                        inputs_buf.clear();
                        inputs_buf.extend(raw.iter().enumerate().map(|(i, &v)| {
                            if v.is_reliable() {
                                v
                            } else {
                                tt.defaults[i]
                            }
                        }));
                        behaviors.invoke_into(spec, TaskId::new(ti), &inputs_buf, &mut outputs_buf);
                    }
                    let hosts = &phase.hosts[t];
                    let mut delivered = false;
                    for (i, &h) in hosts.iter().enumerate() {
                        // Sample both draws for every replica so the
                        // process is order-independent. The partition
                        // check is pure and folds into the broadcast
                        // outcome: a replica cut off from any audience
                        // host counts as a broadcast drop.
                        let host_ok = injector.host_ok(h, now, &mut rng);
                        let bc_ok = injector.broadcast_ok(h, now, &mut rng)
                            && (!parts
                                || audiences[t]
                                    .iter()
                                    .all(|&rcv| injector.delivers(h, rcv, now)));
                        let warm = !tt.stateful
                            || warm_after_rejoin(injector.rejoined_at(h, now), now, round);
                        let excluded = supervisor.exclude_replica(TaskId::new(ti), h, now);
                        let ok = executes && host_ok && bc_ok && warm && !excluded;
                        replica_ok[i] = ok;
                        if ok {
                            let dst = &mut replica_vals[i * tt.n_out..(i + 1) * tt.n_out];
                            dst.copy_from_slice(&outputs_buf);
                            injector.corrupt(h, now, dst, &mut rng);
                            delivered = true;
                        }
                        if obs {
                            let hi = h.index();
                            if host_up[hi] != host_ok {
                                host_up[hi] = host_ok;
                                if host_ok {
                                    hosts_up_count += 1;
                                    tally.host_up_transitions += 1;
                                    sink.event(&ObsEvent::HostUp {
                                        at: now.as_u64(),
                                        host: hi,
                                    });
                                } else {
                                    hosts_up_count -= 1;
                                    tally.host_down_transitions += 1;
                                    sink.event(&ObsEvent::HostDown {
                                        at: now.as_u64(),
                                        host: hi,
                                    });
                                }
                                sink.set_gauge(names::HOSTS_UP, hosts_up_count as f64);
                            }
                            if host_ok && !bc_ok {
                                tally.broadcast_fail += 1;
                            }
                            if ok {
                                tally.replica_ok += 1;
                            } else {
                                let reason = if !executes {
                                    DropReason::NotExecuted
                                } else if !host_ok {
                                    DropReason::HostDown
                                } else if !bc_ok {
                                    DropReason::Broadcast
                                } else if !warm {
                                    DropReason::Warmup
                                } else {
                                    DropReason::Excluded
                                };
                                tally.drop_reason(reason);
                                // A not-executed logical task is a
                                // property of the vote, not of any single
                                // replica — the Vote event below records
                                // it as `silent`.
                                if reason != DropReason::NotExecuted {
                                    sink.event(&ObsEvent::ReplicaDrop {
                                        at: now.as_u64(),
                                        task: t,
                                        host: hi,
                                        reason,
                                    });
                                }
                            }
                        }
                    }
                    crate::voting::vote_into(
                        &replica_vals[..hosts.len() * tt.n_out],
                        &replica_ok[..hosts.len()],
                        tt.n_out,
                        self.voting,
                        &mut result_vals[parity][tt.out_base..tt.out_base + tt.n_out],
                    );
                    if adaptive {
                        delivered_hosts.clear();
                        for (i, &h) in hosts.iter().enumerate() {
                            if replica_ok[i] {
                                delivered_hosts.push(h);
                            }
                        }
                        injector.observe_vote(TaskId::new(ti), now, &delivered_hosts, hosts.len());
                    }
                    task_stats[t].invocations += 1;
                    if delivered {
                        task_stats[t].delivered += 1;
                    }
                    result_delivered[parity][t] = delivered;
                    if obs {
                        tally.task_invocations += 1;
                        let n_del =
                            replica_ok[..hosts.len()].iter().filter(|&&ok| ok).count();
                        tally.replicas_per_vote[n_del] += 1;
                        if delivered {
                            tally.task_delivered += 1;
                        }
                        let outcome = crate::voting::classify_outcome(
                            &replica_vals[..hosts.len() * tt.n_out],
                            &replica_ok[..hosts.len()],
                            tt.n_out,
                        );
                        tally.vote(outcome);
                        sink.event(&ObsEvent::Vote {
                            at: now.as_u64(),
                            task: t,
                            outcome,
                            delivered: n_del,
                            replicas: hosts.len(),
                        });
                    }
                }
            }
            if obs {
                tally.rounds += 1;
            }
        }
        if obs {
            tally.flush(sink);
        }
        SimOutput {
            trace,
            task_stats,
            final_values: comm_values,
        }
    }

    /// Runs the simulation with the original map-driven interpreter.
    ///
    /// Retained as the differential oracle for the compiled round program
    /// (`tests` assert bit-identical [`SimOutput`]s) and as the baseline
    /// of the `simulator` benchmark. Semantically identical to
    /// [`Simulation::run`], only slower.
    pub fn run_reference(
        &self,
        behaviors: &mut BehaviorMap,
        env: &mut dyn Environment,
        injector: &mut dyn FaultInjector,
        config: &SimConfig,
    ) -> SimOutput {
        let spec = self.spec;
        let round = spec.round_period().as_u64();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut trace = Trace::new(spec);
        let mut comm_values: Vec<Value> = spec
            .communicator_ids()
            .map(|c| spec.communicator(c).init())
            .collect();
        // Results of the two most recent rounds, indexed by parity.
        let mut results: [Vec<Option<TaskResult>>; 2] =
            [vec![None; spec.task_count()], vec![None; spec.task_count()]];
        let mut latched: Vec<Vec<Value>> = spec
            .task_ids()
            .map(|t| vec![Value::Unreliable; spec.task(t).inputs().len()])
            .collect();
        let mut task_stats = vec![TaskStats::default(); spec.task_count()];

        // Correlated-failure hooks, mirroring `run_observed` exactly
        // (same gates, same pure delivery check, same vote echo) so the
        // two interpreters stay bit-identical under partitions and
        // adaptive adversaries.
        let parts = injector.partitions();
        let adaptive = injector.adaptive();
        let audiences = if parts {
            task_audiences(spec, self.imp.phases())
        } else {
            Vec::new()
        };

        for r in 0..config.rounds {
            let phase = self.imp.at_iteration(r);
            let base = r * round;
            for &slot in self.calendar.events() {
                let now = Tick::new(base + slot);
                env.advance(now);

                // ---- 1. communicator updates due at this instant ----
                for c in spec.communicator_ids() {
                    let period = spec.communicator(c).period().as_u64();
                    if slot % period != 0 {
                        continue;
                    }
                    if spec.is_sensor_input(c) {
                        let mut any_ok = false;
                        for &s in phase.sensors_of(c) {
                            // Sample every sensor (no short-circuit) so the
                            // failure process is independent of evaluation
                            // order.
                            if injector.sensor_ok(s, now, &mut rng) {
                                any_ok = true;
                            }
                        }
                        comm_values[c.index()] = if any_ok {
                            env.sense(c, now)
                        } else {
                            Value::Unreliable
                        };
                        trace.record(c, now, comm_values[c.index()]);
                    } else {
                        if let Some(&(t, out_idx, rounds_back)) =
                            self.calendar.landing().get(&(c, slot))
                        {
                            if r >= rounds_back {
                                let parity = ((r - rounds_back) % 2) as usize;
                                comm_values[c.index()] = match &results[parity][t.index()] {
                                    Some(res) if res.delivered => res.outputs[out_idx],
                                    _ => Value::Unreliable,
                                };
                            }
                            // else: nothing produced yet, init persists.
                        }
                        trace.record(c, now, comm_values[c.index()]);
                        env.actuate(c, comm_values[c.index()], now);
                    }
                }

                // ---- 2. latch input accesses due at this instant ----
                if let Some(latches) = self.calendar.latch_at().get(&slot) {
                    for &(t, idx) in latches {
                        latched[t.index()][idx] = comm_values[spec.task(t).inputs()[idx].comm.index()];
                    }
                }

                // ---- 3. task reads / logical execution ----
                if let Some(tasks) = self.calendar.reads_at().get(&slot) {
                    for &t in tasks {
                        let decl = spec.task(t);
                        let raw = &latched[t.index()];
                        let model = decl.failure_model();
                        let any_reliable = raw.iter().any(Value::is_reliable);
                        let all_reliable = raw.iter().all(Value::is_reliable);
                        let executes = match model {
                            FailureModel::Series => all_reliable,
                            FailureModel::Parallel => any_reliable,
                            FailureModel::Independent => true,
                        };
                        let outputs = if executes {
                            let inputs: Vec<Value> = raw
                                .iter()
                                .enumerate()
                                .map(|(i, &v)| {
                                    if v.is_reliable() {
                                        v
                                    } else {
                                        // Parallel/independent substitute
                                        // defaults (validated to exist).
                                        decl.default_values()[i]
                                    }
                                })
                                .collect();
                            behaviors.invoke(spec, t, &inputs)
                        } else {
                            vec![Value::Unreliable; decl.outputs().len()]
                        };
                        let stateful =
                            decl.inputs().iter().any(|a| !spec.is_sensor_input(a.comm));
                        let mut replica_outputs: Vec<Option<Vec<Value>>> =
                            Vec::with_capacity(phase.hosts_of(t).len());
                        for &h in phase.hosts_of(t) {
                            // Sample both draws for every replica so the
                            // process is order-independent; the pure
                            // partition check folds into the broadcast
                            // outcome as in `run_observed`.
                            let host_ok = injector.host_ok(h, now, &mut rng);
                            let bc_ok = injector.broadcast_ok(h, now, &mut rng)
                                && (!parts
                                    || audiences[t.index()]
                                        .iter()
                                        .all(|&rcv| injector.delivers(h, rcv, now)));
                            let warm = !stateful
                                || warm_after_rejoin(injector.rejoined_at(h, now), now, round);
                            if executes && host_ok && bc_ok && warm {
                                let mut o = outputs.clone();
                                injector.corrupt(h, now, &mut o, &mut rng);
                                replica_outputs.push(Some(o));
                            } else {
                                replica_outputs.push(None);
                            }
                        }
                        let delivered = replica_outputs.iter().any(Option::is_some);
                        let voted = crate::voting::vote(
                            &replica_outputs,
                            decl.outputs().len(),
                            self.voting,
                        );
                        if adaptive {
                            let delivered_hosts: Vec<HostId> = phase
                                .hosts_of(t)
                                .iter()
                                .zip(&replica_outputs)
                                .filter_map(|(&h, o)| o.is_some().then_some(h))
                                .collect();
                            injector.observe_vote(t, now, &delivered_hosts, replica_outputs.len());
                        }
                        task_stats[t.index()].invocations += 1;
                        if delivered {
                            task_stats[t.index()].delivered += 1;
                        }
                        results[(r % 2) as usize][t.index()] = Some(TaskResult {
                            outputs: voted,
                            delivered,
                        });
                    }
                }
            }
        }
        SimOutput {
            trace,
            task_stats,
            final_values: comm_values,
        }
    }
}

/// Batched counters for the observed hot loop.
///
/// `Registry::inc` costs a `BTreeMap` lookup per call; at ~10 counter
/// bumps per round that lookup chain dominated the observed kernel
/// (515k vs 1.34M rounds/s in BENCH_pr5). The hot loop instead bumps
/// plain `u64` fields here and [`ObsTally::flush`] writes the totals to
/// the sink once per run. Only *counters* and histogram observations are
/// tallied — events and gauges are order-sensitive (flight recorder,
/// last-write-wins) and stay inline. Flushing adds only nonzero values,
/// so a flushed registry has an entry exactly where the per-event form
/// created one, and exports stay byte-identical (counter order is
/// irrelevant: the registry sorts by name; histogram sums over
/// integer-valued samples are order-independent in `f64`).
#[derive(Debug, Clone)]
pub(crate) struct ObsTally {
    pub rounds: u64,
    pub updates: u64,
    pub updates_unreliable: u64,
    pub task_invocations: u64,
    pub task_delivered: u64,
    pub replica_ok: u64,
    pub replica_drop: u64,
    pub drop_silent: u64,
    pub drop_host: u64,
    pub drop_broadcast: u64,
    pub drop_warmup: u64,
    pub drop_excluded: u64,
    pub broadcast_fail: u64,
    pub host_up_transitions: u64,
    pub host_down_transitions: u64,
    pub vote_unanimous: u64,
    pub vote_majority: u64,
    pub vote_tie: u64,
    pub vote_silent: u64,
    /// `replicas_per_vote[n]` = votes with exactly `n` delivering
    /// replicas (histogram samples, batched).
    pub replicas_per_vote: Vec<u64>,
}

impl ObsTally {
    pub fn new(max_replicas: usize) -> Self {
        ObsTally {
            rounds: 0,
            updates: 0,
            updates_unreliable: 0,
            task_invocations: 0,
            task_delivered: 0,
            replica_ok: 0,
            replica_drop: 0,
            drop_silent: 0,
            drop_host: 0,
            drop_broadcast: 0,
            drop_warmup: 0,
            drop_excluded: 0,
            broadcast_fail: 0,
            host_up_transitions: 0,
            host_down_transitions: 0,
            vote_unanimous: 0,
            vote_majority: 0,
            vote_tie: 0,
            vote_silent: 0,
            replicas_per_vote: vec![0; max_replicas + 1],
        }
    }

    pub fn drop_reason(&mut self, reason: DropReason) {
        self.replica_drop += 1;
        match reason {
            DropReason::NotExecuted => self.drop_silent += 1,
            DropReason::HostDown => self.drop_host += 1,
            DropReason::Broadcast => self.drop_broadcast += 1,
            DropReason::Warmup => self.drop_warmup += 1,
            DropReason::Excluded => self.drop_excluded += 1,
        }
    }

    pub fn vote(&mut self, outcome: logrel_obs::VoteOutcome) {
        match outcome {
            logrel_obs::VoteOutcome::Unanimous => self.vote_unanimous += 1,
            logrel_obs::VoteOutcome::Majority => self.vote_majority += 1,
            logrel_obs::VoteOutcome::Tie => self.vote_tie += 1,
            logrel_obs::VoteOutcome::Silent => self.vote_silent += 1,
        }
    }

    /// Writes every nonzero total to `sink`.
    pub fn flush<M: MetricsSink + ?Sized>(&self, sink: &mut M) {
        let counters = [
            (names::ROUNDS, self.rounds),
            (names::UPDATES, self.updates),
            (names::UPDATES_UNRELIABLE, self.updates_unreliable),
            (names::TASK_INVOCATIONS, self.task_invocations),
            (names::TASK_DELIVERED, self.task_delivered),
            (names::REPLICA_OK, self.replica_ok),
            (names::REPLICA_DROP, self.replica_drop),
            (names::REPLICA_DROP_SILENT, self.drop_silent),
            (names::REPLICA_DROP_HOST, self.drop_host),
            (names::REPLICA_DROP_BROADCAST, self.drop_broadcast),
            (names::REPLICA_DROP_WARMUP, self.drop_warmup),
            (names::REPLICA_DROP_EXCLUDED, self.drop_excluded),
            (names::BROADCAST_FAIL, self.broadcast_fail),
            (names::HOST_UP_TRANSITIONS, self.host_up_transitions),
            (names::HOST_DOWN_TRANSITIONS, self.host_down_transitions),
            (names::VOTE_UNANIMOUS, self.vote_unanimous),
            (names::VOTE_MAJORITY, self.vote_majority),
            (names::VOTE_TIE, self.vote_tie),
            (names::VOTE_SILENT, self.vote_silent),
        ];
        for (name, v) in counters {
            if v != 0 {
                sink.add(name, v);
            }
        }
        for (n_del, &count) in self.replicas_per_vote.iter().enumerate() {
            if count != 0 {
                sink.observe_n(names::REPLICAS_PER_VOTE, n_del as f64, count);
            }
        }
    }
}

/// The warm-up rule for a stateful task's replica (see the module docs):
/// after a scripted rejoin at `rj`, the replica rejoins the vote one full
/// round after the first round boundary at or following `rj`.
pub(crate) fn warm_after_rejoin(rejoined: Option<Tick>, now: Tick, round: u64) -> bool {
    match rejoined {
        None => true,
        Some(rj) => now.as_u64() >= rj.as_u64().div_ceil(round) * round + round,
    }
}

/// The partition *audience* of every task: the hosts running any task
/// that reads a communicator this task writes, unioned over all mapping
/// phases (a result written in one phase may be read under another).
///
/// Under a partitioned injector ([`FaultInjector::partitions`]) a replica
/// only enters the vote when its broadcast reaches the *whole* audience —
/// the model keeps one logical copy per communicator, so a partial
/// delivery cannot be represented and is classified as a broadcast drop.
/// The check is pure (no RNG draws), so partitions never perturb the
/// fault-draw stream.
pub(crate) fn task_audiences(
    spec: &Specification,
    phases: &[logrel_core::Implementation],
) -> Vec<Vec<HostId>> {
    let mut readers: Vec<Vec<TaskId>> = vec![Vec::new(); spec.communicator_count()];
    for t in spec.task_ids() {
        for a in spec.task(t).inputs() {
            readers[a.comm.index()].push(t);
        }
    }
    spec.task_ids()
        .map(|t| {
            let mut set = std::collections::BTreeSet::new();
            for a in spec.task(t).outputs() {
                for &rt in &readers[a.comm.index()] {
                    for phase in phases {
                        set.extend(phase.hosts_of(rt).iter().copied());
                    }
                }
            }
            set.into_iter().collect()
        })
        .collect()
}

/// The per-reason replica-drop counter.
pub(crate) fn drop_counter(reason: DropReason) -> &'static str {
    match reason {
        DropReason::NotExecuted => names::REPLICA_DROP_SILENT,
        DropReason::HostDown => names::REPLICA_DROP_HOST,
        DropReason::Broadcast => names::REPLICA_DROP_BROADCAST,
        DropReason::Warmup => names::REPLICA_DROP_WARMUP,
        DropReason::Excluded => names::REPLICA_DROP_EXCLUDED,
    }
}

/// The per-outcome vote counter.
pub(crate) fn vote_counter(outcome: logrel_obs::VoteOutcome) -> &'static str {
    match outcome {
        logrel_obs::VoteOutcome::Unanimous => names::VOTE_UNANIMOUS,
        logrel_obs::VoteOutcome::Majority => names::VOTE_MAJORITY,
        logrel_obs::VoteOutcome::Tie => names::VOTE_TIE,
        logrel_obs::VoteOutcome::Silent => names::VOTE_SILENT,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::environment::ConstantEnvironment;
    use crate::fault::{NoFaults, ProbabilisticFaults, UnplugAt};
    use logrel_core::{
        CommunicatorDecl, HostDecl, HostId, Implementation, Reliability, SensorDecl, SensorId,
        TaskDecl, ValueType,
    };

    fn r(v: f64) -> Reliability {
        Reliability::new(v).unwrap()
    }

    struct Sys {
        spec: Specification,
        arch: Architecture,
        imp: TimeDependentImplementation,
    }

    /// sensor -> s(p10) -> double -> u(p10), one host.
    fn pipeline(host_rel: f64, sensor_rel: f64) -> Sys {
        let mut sb = Specification::builder();
        let s = sb
            .communicator(
                CommunicatorDecl::new("s", ValueType::Float, 10)
                    .unwrap()
                    .from_sensor(),
            )
            .unwrap();
        let u = sb
            .communicator(CommunicatorDecl::new("u", ValueType::Float, 10).unwrap())
            .unwrap();
        let t = sb.task(TaskDecl::new("double").reads(s, 0).writes(u, 1)).unwrap();
        let spec = sb.build().unwrap();
        let mut ab = Architecture::builder();
        let h = ab.host(HostDecl::new("h1", r(host_rel))).unwrap();
        ab.sensor(SensorDecl::new("sn", r(sensor_rel))).unwrap();
        ab.wcet_all(t, 1).unwrap();
        ab.wctt_all(t, 1).unwrap();
        let arch = ab.build();
        let imp = Implementation::builder()
            .assign(t, [h])
            .bind_sensor(s, SensorId::new(0))
            .build(&spec, &arch)
            .unwrap();
        Sys {
            spec,
            arch,
            imp: imp.into(),
        }
    }

    fn doubling_behaviors(spec: &Specification) -> BehaviorMap {
        let mut b = BehaviorMap::new();
        let t = spec.find_task("double").unwrap();
        b.register(t, |inputs: &[Value]| {
            vec![Value::Float(2.0 * inputs[0].as_float().unwrap_or(0.0))]
        });
        b
    }

    #[test]
    fn fault_free_run_computes_the_function() {
        let sys = pipeline(0.999, 0.999);
        let sim = Simulation::new(&sys.spec, &sys.arch, &sys.imp);
        let mut behaviors = doubling_behaviors(&sys.spec);
        let mut env = ConstantEnvironment::new(Value::Float(21.0));
        let out = sim.run(
            &mut behaviors,
            &mut env,
            &mut NoFaults,
            &SimConfig {
                rounds: 5,
                seed: 1,
            },
        );
        let u = sys.spec.find_communicator("u").unwrap();
        let values = out.trace.values(u);
        // u updates at 0 (init) and 10 each round: round length 10, so
        // instants 0, 10, 20, 30, 40: instance 1 of round k lands at
        // (k+1)*10... here write is at 10 within the round, so from the
        // second update on the value is 42.
        assert_eq!(values[0].1, Value::Float(0.0)); // init persists at t=0
        for &(_, v) in &values[1..] {
            assert_eq!(v, Value::Float(42.0));
        }
        assert_eq!(out.final_values[u.index()], Value::Float(42.0));
        assert_eq!(out.task_stats[0].invocations, 5);
        assert_eq!(out.task_stats[0].delivered, 5);
    }

    #[test]
    fn same_seed_same_trace() {
        let sys = pipeline(0.7, 0.8);
        let sim = Simulation::new(&sys.spec, &sys.arch, &sys.imp);
        let run = |seed| {
            let mut behaviors = doubling_behaviors(&sys.spec);
            let mut env = ConstantEnvironment::new(Value::Float(1.0));
            let mut inj = ProbabilisticFaults::from_architecture(&sys.arch);
            let out = sim.run(
                &mut behaviors,
                &mut env,
                &mut inj,
                &SimConfig { rounds: 200, seed },
            );
            let u = sys.spec.find_communicator("u").unwrap();
            out.trace.values(u).to_vec()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn empirical_reliability_approaches_analytic_srg() {
        let sys = pipeline(0.9, 0.95);
        let sim = Simulation::new(&sys.spec, &sys.arch, &sys.imp);
        let mut behaviors = doubling_behaviors(&sys.spec);
        let mut env = ConstantEnvironment::new(Value::Float(1.0));
        let mut inj = ProbabilisticFaults::from_architecture(&sys.arch);
        let out = sim.run(
            &mut behaviors,
            &mut env,
            &mut inj,
            &SimConfig {
                rounds: 40_000,
                seed: 3,
            },
        );
        let u = sys.spec.find_communicator("u").unwrap();
        // Skip the init update at t=0 of round 0 (not produced by the task).
        let bits: Vec<bool> = out.trace.abstraction(u).into_iter().skip(1).collect();
        let mean = bits.iter().filter(|&&b| b).count() as f64 / bits.len() as f64;
        // λ_u = 0.95 * 0.9 = 0.855.
        assert!((mean - 0.855).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn series_model_fails_on_unreliable_input() {
        // Sensor reliability 0 is not representable; use a custom injector.
        struct DeadSensor;
        impl FaultInjector for DeadSensor {
            fn host_ok(&mut self, _: HostId, _: Tick, _: &mut StdRng) -> bool {
                true
            }
            fn sensor_ok(&mut self, _: SensorId, _: Tick, _: &mut StdRng) -> bool {
                false
            }
            fn broadcast_ok(&mut self, _: HostId, _: Tick, _: &mut StdRng) -> bool {
                true
            }
        }
        let sys = pipeline(0.999, 0.999);
        let sim = Simulation::new(&sys.spec, &sys.arch, &sys.imp);
        let mut behaviors = doubling_behaviors(&sys.spec);
        let mut env = ConstantEnvironment::new(Value::Float(1.0));
        let out = sim.run(
            &mut behaviors,
            &mut env,
            &mut DeadSensor,
            &SimConfig {
                rounds: 10,
                seed: 1,
            },
        );
        let u = sys.spec.find_communicator("u").unwrap();
        for &(at, v) in out.trace.values(u).iter().skip(1) {
            assert_eq!(v, Value::Unreliable, "at {at}");
        }
        assert_eq!(out.task_stats[0].delivered, 0);
    }

    /// A parallel-model system with a dead sensor uses the default value.
    #[test]
    fn parallel_model_substitutes_defaults() {
        let mut sb = Specification::builder();
        let s = sb
            .communicator(
                CommunicatorDecl::new("s", ValueType::Float, 10)
                    .unwrap()
                    .from_sensor(),
            )
            .unwrap();
        let u = sb
            .communicator(CommunicatorDecl::new("u", ValueType::Float, 10).unwrap())
            .unwrap();
        let t = sb
            .task(
                TaskDecl::new("double")
                    .reads(s, 0)
                    .writes(u, 1)
                    .model(FailureModel::Parallel)
                    .default_value(Value::Float(5.0)),
            )
            .unwrap();
        let spec = sb.build().unwrap();
        let mut ab = Architecture::builder();
        let h = ab.host(HostDecl::new("h1", r(0.999))).unwrap();
        let s1 = ab.sensor(SensorDecl::new("sn1", r(0.999))).unwrap();
        let s2 = ab.sensor(SensorDecl::new("sn2", r(0.999))).unwrap();
        ab.wcet_all(t, 1).unwrap();
        ab.wctt_all(t, 1).unwrap();
        let arch = ab.build();
        let imp: TimeDependentImplementation = Implementation::builder()
            .assign(t, [h])
            .bind_sensor(s, s1)
            .bind_sensor(s, s2)
            .build(&spec, &arch)
            .unwrap()
            .into();

        struct DeadSensors;
        impl FaultInjector for DeadSensors {
            fn host_ok(&mut self, _: HostId, _: Tick, _: &mut StdRng) -> bool {
                true
            }
            fn sensor_ok(&mut self, _: SensorId, _: Tick, _: &mut StdRng) -> bool {
                false
            }
            fn broadcast_ok(&mut self, _: HostId, _: Tick, _: &mut StdRng) -> bool {
                true
            }
        }
        let sim = Simulation::new(&spec, &arch, &imp);
        let mut behaviors = BehaviorMap::new();
        behaviors.register(t, |inputs: &[Value]| {
            vec![Value::Float(2.0 * inputs[0].as_float().unwrap())]
        });
        let mut env = ConstantEnvironment::new(Value::Float(1.0));
        let out = sim.run(
            &mut behaviors,
            &mut env,
            &mut DeadSensors,
            &SimConfig {
                rounds: 3,
                seed: 1,
            },
        );
        // Wait: parallel with ALL inputs unreliable fails to execute.
        // There is exactly one input, so the task never executes.
        assert_eq!(out.task_stats[t.index()].delivered, 0);

        // Now with one live input among two (second input from a healthy
        // constant communicator is not possible here, so re-run with a
        // half-dead injector on a two-input task).
        let mut sb = Specification::builder();
        let a = sb
            .communicator(
                CommunicatorDecl::new("a", ValueType::Float, 10)
                    .unwrap()
                    .from_sensor(),
            )
            .unwrap();
        let b = sb
            .communicator(
                CommunicatorDecl::new("b", ValueType::Float, 10)
                    .unwrap()
                    .from_sensor(),
            )
            .unwrap();
        let o = sb
            .communicator(CommunicatorDecl::new("o", ValueType::Float, 10).unwrap())
            .unwrap();
        let t2 = sb
            .task(
                TaskDecl::new("sum")
                    .reads(a, 0)
                    .reads(b, 0)
                    .writes(o, 1)
                    .model(FailureModel::Parallel)
                    .default_value(Value::Float(100.0))
                    .default_value(Value::Float(100.0)),
            )
            .unwrap();
        let spec2 = sb.build().unwrap();
        let mut ab = Architecture::builder();
        let h = ab.host(HostDecl::new("h1", r(0.999))).unwrap();
        let sa = ab.sensor(SensorDecl::new("sa", r(0.999))).unwrap();
        let sb2 = ab.sensor(SensorDecl::new("sb", r(0.999))).unwrap();
        ab.wcet_all(t2, 1).unwrap();
        ab.wctt_all(t2, 1).unwrap();
        let arch2 = ab.build();
        let imp2: TimeDependentImplementation = Implementation::builder()
            .assign(t2, [h])
            .bind_sensor(a, sa)
            .bind_sensor(b, sb2)
            .build(&spec2, &arch2)
            .unwrap()
            .into();

        /// Kills only sensor 1 (`sb`).
        struct HalfDead;
        impl FaultInjector for HalfDead {
            fn host_ok(&mut self, _: HostId, _: Tick, _: &mut StdRng) -> bool {
                true
            }
            fn sensor_ok(&mut self, s: SensorId, _: Tick, _: &mut StdRng) -> bool {
                s.index() == 0
            }
            fn broadcast_ok(&mut self, _: HostId, _: Tick, _: &mut StdRng) -> bool {
                true
            }
        }
        let sim2 = Simulation::new(&spec2, &arch2, &imp2);
        let mut behaviors2 = BehaviorMap::new();
        behaviors2.register(t2, |inputs: &[Value]| {
            vec![Value::Float(
                inputs[0].as_float().unwrap() + inputs[1].as_float().unwrap(),
            )]
        });
        let mut env2 = ConstantEnvironment::new(Value::Float(1.0));
        let out2 = sim2.run(
            &mut behaviors2,
            &mut env2,
            &mut HalfDead,
            &SimConfig {
                rounds: 2,
                seed: 1,
            },
        );
        let o_vals = out2.trace.values(o);
        // Second update of o: 1.0 (live a) + 100.0 (default for dead b).
        assert_eq!(o_vals[1].1, Value::Float(101.0));
    }

    #[test]
    fn replication_tolerates_a_dead_host() {
        let mut sb = Specification::builder();
        let s = sb
            .communicator(
                CommunicatorDecl::new("s", ValueType::Float, 10)
                    .unwrap()
                    .from_sensor(),
            )
            .unwrap();
        let u = sb
            .communicator(CommunicatorDecl::new("u", ValueType::Float, 10).unwrap())
            .unwrap();
        let t = sb.task(TaskDecl::new("double").reads(s, 0).writes(u, 1)).unwrap();
        let spec = sb.build().unwrap();
        let mut ab = Architecture::builder();
        let h1 = ab.host(HostDecl::new("h1", r(0.999))).unwrap();
        let h2 = ab.host(HostDecl::new("h2", r(0.999))).unwrap();
        ab.sensor(SensorDecl::new("sn", r(0.999))).unwrap();
        ab.wcet_all(t, 1).unwrap();
        ab.wctt_all(t, 1).unwrap();
        let arch = ab.build();
        let imp: TimeDependentImplementation = Implementation::builder()
            .assign(t, [h1, h2])
            .bind_sensor(s, SensorId::new(0))
            .build(&spec, &arch)
            .unwrap()
            .into();
        let sim = Simulation::new(&spec, &arch, &imp);
        let mut behaviors = BehaviorMap::new();
        behaviors.register(t, |inputs: &[Value]| {
            vec![Value::Float(2.0 * inputs[0].as_float().unwrap_or(0.0))]
        });
        let mut env = ConstantEnvironment::new(Value::Float(21.0));
        // Unplug h1 from the very beginning: h2 carries the system alone.
        let mut inj = UnplugAt::new(NoFaults, h1, Tick::ZERO);
        let out = sim.run(
            &mut behaviors,
            &mut env,
            &mut inj,
            &SimConfig {
                rounds: 20,
                seed: 9,
            },
        );
        assert_eq!(out.task_stats[t.index()].delivered, 20);
        let u_id = spec.find_communicator("u").unwrap();
        assert_eq!(out.trace.values(u_id).last().unwrap().1, Value::Float(42.0));
    }

    #[test]
    fn unwritten_instances_persist_values() {
        // u has period 5 in a round of 10: instance 1 (t=5) is written,
        // instance 0 (t=0/10/20...) persists the previous round's value.
        let mut sb = Specification::builder();
        let s = sb
            .communicator(
                CommunicatorDecl::new("s", ValueType::Float, 10)
                    .unwrap()
                    .from_sensor(),
            )
            .unwrap();
        let u = sb
            .communicator(CommunicatorDecl::new("u", ValueType::Float, 5).unwrap())
            .unwrap();
        let t = sb.task(TaskDecl::new("double").reads(s, 0).writes(u, 1)).unwrap();
        let spec = sb.build().unwrap();
        let mut ab = Architecture::builder();
        let h = ab.host(HostDecl::new("h1", r(0.999))).unwrap();
        ab.sensor(SensorDecl::new("sn", r(0.999))).unwrap();
        ab.wcet_all(t, 1).unwrap();
        ab.wctt_all(t, 1).unwrap();
        let arch = ab.build();
        let imp: TimeDependentImplementation = Implementation::builder()
            .assign(t, [h])
            .bind_sensor(s, SensorId::new(0))
            .build(&spec, &arch)
            .unwrap()
            .into();
        let sim = Simulation::new(&spec, &arch, &imp);
        let mut behaviors = BehaviorMap::new();
        behaviors.register(t, |inputs: &[Value]| {
            vec![Value::Float(2.0 * inputs[0].as_float().unwrap_or(0.0))]
        });
        let mut env = ConstantEnvironment::new(Value::Float(3.0));
        let out = sim.run(
            &mut behaviors,
            &mut env,
            &mut NoFaults,
            &SimConfig {
                rounds: 3,
                seed: 1,
            },
        );
        let vals: Vec<Value> = out.trace.values(u).iter().map(|&(_, v)| v).collect();
        // Updates at 0, 5, 10, 15, 20, 25:
        // 0: init 0.0; 5: 6.0 (written); 10: persists 6.0; 15: 6.0; ...
        assert_eq!(
            vals,
            vec![
                Value::Float(0.0),
                Value::Float(6.0),
                Value::Float(6.0),
                Value::Float(6.0),
                Value::Float(6.0),
                Value::Float(6.0),
            ]
        );
    }

    #[test]
    fn earlier_instance_reads_latch_old_values() {
        // Task reads (a, 1) [t=2] and (b, 1) [t=6]; read time 6. `a` is
        // sensor-fed with period 2, so by t=6 `a` has been updated at 4 and
        // 6 — the task must still see the value latched at t=2.
        struct RampEnv;
        impl Environment for RampEnv {
            fn advance(&mut self, _now: Tick) {}
            fn sense(&mut self, _comm: CommunicatorId, now: Tick) -> Value {
                Value::Float(now.as_u64() as f64)
            }
            fn actuate(&mut self, _comm: CommunicatorId, _value: Value, _now: Tick) {}
        }
        let mut sb = Specification::builder();
        let a = sb
            .communicator(
                CommunicatorDecl::new("a", ValueType::Float, 2)
                    .unwrap()
                    .from_sensor(),
            )
            .unwrap();
        let b = sb
            .communicator(
                CommunicatorDecl::new("b", ValueType::Float, 6)
                    .unwrap()
                    .from_sensor(),
            )
            .unwrap();
        let o = sb
            .communicator(CommunicatorDecl::new("o", ValueType::Float, 12).unwrap())
            .unwrap();
        let t = sb
            .task(TaskDecl::new("latcher").reads(a, 1).reads(b, 1).writes(o, 1))
            .unwrap();
        let spec = sb.build().unwrap();
        let mut ab = Architecture::builder();
        let h = ab.host(HostDecl::new("h1", r(0.999))).unwrap();
        let sn = ab.sensor(SensorDecl::new("sn", r(0.999))).unwrap();
        ab.wcet_all(t, 1).unwrap();
        ab.wctt_all(t, 1).unwrap();
        let arch = ab.build();
        let imp: TimeDependentImplementation = Implementation::builder()
            .assign(t, [h])
            .bind_sensor(a, sn)
            .bind_sensor(b, sn)
            .build(&spec, &arch)
            .unwrap()
            .into();
        let sim = Simulation::new(&spec, &arch, &imp);
        let mut behaviors = BehaviorMap::new();
        behaviors.register(t, |inputs: &[Value]| {
            // output = a-value latched at t=2 (should be 2.0, not 6.0).
            vec![inputs[0]]
        });
        let out = sim.run(
            &mut behaviors,
            &mut RampEnv,
            &mut NoFaults,
            &SimConfig {
                rounds: 1,
                seed: 1,
            },
        );
        // o written at instance 1 = t 12 — beyond round 0's trace (lands at
        // round 1's t=12... round is 12, so instance 1 lands at slot 0 of
        // round 1). With a single round the write is dropped; run 2 rounds.
        let out2 = sim.run(
            &mut BehaviorMap::new(),
            &mut RampEnv,
            &mut NoFaults,
            &SimConfig {
                rounds: 1,
                seed: 1,
            },
        );
        let _ = (out, out2);
        let mut behaviors = BehaviorMap::new();
        behaviors.register(t, |inputs: &[Value]| vec![inputs[0]]);
        let out3 = sim.run(
            &mut behaviors,
            &mut RampEnv,
            &mut NoFaults,
            &SimConfig {
                rounds: 2,
                seed: 1,
            },
        );
        let o_vals = out3.trace.values(o);
        // o updates at t=0 (init) and t=12 (round 1 slot 0, carrying round
        // 0's write of instance 1).
        assert_eq!(o_vals[0].1, Value::Float(0.0));
        assert_eq!(o_vals[1].1, Value::Float(2.0), "latched a@2, not a@6");
    }

    #[test]
    fn corruption_poisons_any_reliable_but_majority_recovers() {
        use crate::fault::CorruptingFaults;
        use crate::voting::VotingStrategy;
        // One task on three hosts; one replica is corrupted per round
        // (deterministically, by a custom injector that corrupts host 0).
        struct CorruptH0;
        impl FaultInjector for CorruptH0 {
            fn host_ok(&mut self, _: HostId, _: Tick, _: &mut StdRng) -> bool {
                true
            }
            fn sensor_ok(&mut self, _: SensorId, _: Tick, _: &mut StdRng) -> bool {
                true
            }
            fn broadcast_ok(&mut self, _: HostId, _: Tick, _: &mut StdRng) -> bool {
                true
            }
            fn corrupt(&mut self, h: HostId, _: Tick, o: &mut [Value], _: &mut StdRng) {
                if h.index() == 0 {
                    for v in o.iter_mut() {
                        *v = Value::Float(-1.0);
                    }
                }
            }
        }
        let mut sb = Specification::builder();
        let s = sb
            .communicator(
                CommunicatorDecl::new("s", ValueType::Float, 10)
                    .unwrap()
                    .from_sensor(),
            )
            .unwrap();
        let u = sb
            .communicator(CommunicatorDecl::new("u", ValueType::Float, 10).unwrap())
            .unwrap();
        let t = sb.task(TaskDecl::new("f").reads(s, 0).writes(u, 1)).unwrap();
        let spec = sb.build().unwrap();
        let mut ab = Architecture::builder();
        let hs: Vec<HostId> = (0..3)
            .map(|i| ab.host(HostDecl::new(format!("h{i}"), r(0.999))).unwrap())
            .collect();
        ab.sensor(SensorDecl::new("sn", r(0.999))).unwrap();
        ab.wcet_all(t, 1).unwrap();
        ab.wctt_all(t, 1).unwrap();
        let arch = ab.build();
        let imp: TimeDependentImplementation = Implementation::builder()
            .assign(t, hs)
            .bind_sensor(s, SensorId::new(0))
            .build(&spec, &arch)
            .unwrap()
            .into();
        let run = |strategy: VotingStrategy| {
            let mut sim = Simulation::new(&spec, &arch, &imp);
            sim.set_voting(strategy);
            let mut behaviors = BehaviorMap::new();
            behaviors.register(t, |_: &[Value]| vec![Value::Float(42.0)]);
            let out = sim.run(
                &mut behaviors,
                &mut ConstantEnvironment::new(Value::Float(0.0)),
                &mut CorruptH0,
                &SimConfig {
                    rounds: 5,
                    seed: 1,
                },
            );
            out.trace.values(u).to_vec()
        };
        // AnyReliable: host 0's corrupted value is first in the sorted
        // host set, so it poisons every round.
        let any = run(VotingStrategy::AnyReliable);
        assert_eq!(any[1].1, Value::Float(-1.0));
        // Majority: two healthy replicas outvote the corrupted one.
        let maj = run(VotingStrategy::Majority);
        assert_eq!(maj[1].1, Value::Float(42.0));
        // The random corrupting injector compiles against the trait too.
        let _ = CorruptingFaults::new(0.1, 9999.0);
    }

    #[test]
    fn time_dependent_mapping_alternates_hosts() {
        // Host 0 always works, host 1 never does; alternating phases give
        // delivery in every other round.
        let mut sb = Specification::builder();
        let s = sb
            .communicator(
                CommunicatorDecl::new("s", ValueType::Float, 10)
                    .unwrap()
                    .from_sensor(),
            )
            .unwrap();
        let u = sb
            .communicator(CommunicatorDecl::new("u", ValueType::Float, 10).unwrap())
            .unwrap();
        let t = sb.task(TaskDecl::new("double").reads(s, 0).writes(u, 1)).unwrap();
        let spec = sb.build().unwrap();
        let mut ab = Architecture::builder();
        let h1 = ab.host(HostDecl::new("h1", r(0.999))).unwrap();
        let h2 = ab.host(HostDecl::new("h2", r(0.999))).unwrap();
        ab.sensor(SensorDecl::new("sn", r(0.999))).unwrap();
        ab.wcet_all(t, 1).unwrap();
        ab.wctt_all(t, 1).unwrap();
        let arch = ab.build();
        let p0 = Implementation::builder()
            .assign(t, [h1])
            .bind_sensor(s, SensorId::new(0))
            .build(&spec, &arch)
            .unwrap();
        let p1 = p0.with_assignment(t, [h2]);
        let imp = TimeDependentImplementation::new(vec![p0, p1]).unwrap();

        struct DeadH2;
        impl FaultInjector for DeadH2 {
            fn host_ok(&mut self, h: HostId, _: Tick, _: &mut StdRng) -> bool {
                h.index() == 0
            }
            fn sensor_ok(&mut self, _: SensorId, _: Tick, _: &mut StdRng) -> bool {
                true
            }
            fn broadcast_ok(&mut self, _: HostId, _: Tick, _: &mut StdRng) -> bool {
                true
            }
        }
        let sim = Simulation::new(&spec, &arch, &imp);
        let mut behaviors = BehaviorMap::new();
        behaviors.register(t, |i: &[Value]| {
            vec![Value::Float(i[0].as_float().unwrap_or(0.0))]
        });
        let mut env = ConstantEnvironment::new(Value::Float(1.0));
        let out = sim.run(
            &mut behaviors,
            &mut env,
            &mut DeadH2,
            &SimConfig {
                rounds: 100,
                seed: 1,
            },
        );
        // Half the rounds deliver (phase on h1), half fail (phase on h2).
        assert_eq!(out.task_stats[t.index()].delivered, 50);
        let bits = out.trace.abstraction(spec.find_communicator("u").unwrap());
        let mean = bits.iter().filter(|&&b| b).count() as f64 / bits.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    /// The compiled round program must be bit-identical to the reference
    /// interpreter: same trace, same statistics, same final values.
    #[test]
    fn compiled_program_matches_reference_interpreter() {
        for seed in [1u64, 7, 0xC0FFEE] {
            let sys = pipeline(0.8, 0.9);
            let sim = Simulation::new(&sys.spec, &sys.arch, &sys.imp);
            let config = SimConfig { rounds: 500, seed };
            let mut inj = ProbabilisticFaults::from_architecture(&sys.arch);
            let fast = sim.run(
                &mut doubling_behaviors(&sys.spec),
                &mut ConstantEnvironment::new(Value::Float(21.0)),
                &mut inj,
                &config,
            );
            let mut inj = ProbabilisticFaults::from_architecture(&sys.arch);
            let slow = sim.run_reference(
                &mut doubling_behaviors(&sys.spec),
                &mut ConstantEnvironment::new(Value::Float(21.0)),
                &mut inj,
                &config,
            );
            assert_eq!(fast, slow, "seed {seed}");
        }
    }

    /// Differential check on the hard cases: replication with majority
    /// voting and corruption, plus a phase-alternating implementation.
    #[test]
    fn compiled_program_matches_reference_on_replicated_phased_system() {
        use crate::fault::CorruptingFaults;
        use crate::voting::VotingStrategy;
        let mut sb = Specification::builder();
        let s = sb
            .communicator(
                CommunicatorDecl::new("s", ValueType::Float, 10)
                    .unwrap()
                    .from_sensor(),
            )
            .unwrap();
        let u = sb
            .communicator(CommunicatorDecl::new("u", ValueType::Float, 5).unwrap())
            .unwrap();
        let t = sb.task(TaskDecl::new("double").reads(s, 0).writes(u, 1)).unwrap();
        let spec = sb.build().unwrap();
        let mut ab = Architecture::builder();
        let hs: Vec<HostId> = (0..3)
            .map(|i| ab.host(HostDecl::new(format!("h{i}"), r(0.9))).unwrap())
            .collect();
        ab.sensor(SensorDecl::new("sn", r(0.95))).unwrap();
        ab.wcet_all(t, 1).unwrap();
        ab.wctt_all(t, 1).unwrap();
        let arch = ab.build();
        let p0 = Implementation::builder()
            .assign(t, hs.clone())
            .bind_sensor(s, SensorId::new(0))
            .build(&spec, &arch)
            .unwrap();
        let p1 = p0.with_assignment(t, [hs[0], hs[2]]);
        let imp = TimeDependentImplementation::new(vec![p0, p1]).unwrap();
        let mut sim = Simulation::new(&spec, &arch, &imp);
        sim.set_voting(VotingStrategy::Majority);
        let behaviors = || {
            let mut b = BehaviorMap::new();
            b.register(t, |i: &[Value]| {
                vec![Value::Float(2.0 * i[0].as_float().unwrap_or(0.0))]
            });
            b
        };
        let config = SimConfig { rounds: 400, seed: 42 };
        let fast = sim.run(
            &mut behaviors(),
            &mut ConstantEnvironment::new(Value::Float(1.0)),
            &mut CorruptingFaults::new(0.2, -7.0),
            &config,
        );
        let slow = sim.run_reference(
            &mut behaviors(),
            &mut ConstantEnvironment::new(Value::Float(1.0)),
            &mut CorruptingFaults::new(0.2, -7.0),
            &config,
        );
        assert_eq!(fast, slow);
        // Corruption actually bit somewhere (the run was not trivial).
        let vals = fast.trace.values(u);
        assert!(vals.iter().any(|&(_, v)| v == Value::Unreliable || v == Value::Float(-7.0)));
        assert!(fast.task_stats[0].delivered > 0);
    }
}
