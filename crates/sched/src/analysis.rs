//! The end-to-end schedulability analysis.
//!
//! For each replication `(t, h)` of implementation `I`:
//!
//! 1. a CPU job released at `read_t` with budget `wemap(t, h)` must finish
//!    by `write_t − wtmap(t, h)` on host `h` (preemptive EDF, exact);
//! 2. a bus job ready at the replication's CPU completion with duration
//!    `wtmap(t, h)` must finish by `write_t` (non-preemptive EDF,
//!    sufficient).
//!
//! On success the resulting [`Schedule`] is a witness that can be replayed
//! by the E-machine and the simulator; on failure every missed deadline is
//! reported.

use crate::bus::{self, BusJob};
use crate::edf::{self, CpuJob};
use crate::error::{MissedDeadline, SchedError};
use crate::schedule::Schedule;
use logrel_core::{Architecture, CoreError, Implementation, Specification, Tick};
use std::collections::BTreeMap;

/// Checks schedulability of `imp` and produces the static schedule.
///
/// # Errors
///
/// * [`SchedError::Core`] if a mapped replication lacks a WCET/WCTT
///   declaration (an unvalidated implementation);
/// * [`SchedError::NotSchedulable`] with full diagnostics when any CPU or
///   bus deadline is missed.
///
/// # Example
///
/// ```
/// use logrel_core::prelude::*;
/// use logrel_sched::analyze;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut sb = Specification::builder();
/// let s = sb.communicator(
///     CommunicatorDecl::new("s", ValueType::Float, 10)?.from_sensor(),
/// )?;
/// let u = sb.communicator(CommunicatorDecl::new("u", ValueType::Float, 10)?)?;
/// let t = sb.task(TaskDecl::new("ctrl").reads(s, 0).writes(u, 1))?;
/// let spec = sb.build()?;
///
/// let mut ab = Architecture::builder();
/// let h = ab.host(HostDecl::new("h", Reliability::new(0.99)?))?;
/// let sen = ab.sensor(SensorDecl::new("sen", Reliability::ONE))?;
/// ab.wcet(t, h, 6)?;
/// ab.wctt(t, h, 2)?;
/// let arch = ab.build();
/// let imp = Implementation::builder()
///     .assign(t, [h])
///     .bind_sensor(s, sen)
///     .build(&spec, &arch)?;
///
/// let schedule = analyze(&spec, &arch, &imp)?;
/// assert_eq!(schedule.completion(t, h).unwrap().as_u64(), 6);
/// # Ok(())
/// # }
/// ```
pub fn analyze(
    spec: &Specification,
    arch: &Architecture,
    imp: &Implementation,
) -> Result<Schedule, SchedError> {
    // Group CPU jobs by host.
    let mut cpu_jobs: BTreeMap<_, Vec<CpuJob>> = BTreeMap::new();
    for (t, h) in imp.replications() {
        let wcet = arch
            .wcet(t, h)
            .ok_or_else(|| missing_metric("WCET", spec, arch, t, h))?;
        let wctt = arch
            .wctt(t, h)
            .ok_or_else(|| missing_metric("WCTT", spec, arch, t, h))?;
        let write = spec.write_time(t);
        cpu_jobs.entry(h).or_default().push(CpuJob {
            task: t,
            host: h,
            release: spec.read_time(t),
            exec: wcet,
            deadline: write.saturating_sub(wctt),
        });
    }

    let mut misses: Vec<MissedDeadline> = Vec::new();
    let mut host_slots = BTreeMap::new();
    let mut completions: BTreeMap<_, Tick> = BTreeMap::new();
    let task_name = |t| spec.task(t).name().to_owned();
    let host_name = |h| arch.host(h).name().to_owned();

    for (&h, jobs) in &cpu_jobs {
        let outcome = edf::simulate_edf(jobs);
        misses.extend(edf::miss_diagnostics(jobs, &outcome, task_name, host_name));
        for (job, &completion) in jobs.iter().zip(&outcome.completions) {
            completions.insert((job.task, job.host), completion);
        }
        host_slots.insert(h, outcome.slots);
    }

    // Bus jobs become ready at CPU completion.
    let bus_jobs: Vec<BusJob> = imp
        .replications()
        .map(|(t, h)| BusJob {
            task: t,
            host: h,
            ready: completions[&(t, h)],
            duration: arch.wctt(t, h).expect("checked above"),
            deadline: spec.write_time(t),
        })
        .collect();
    let bus_outcome = bus::schedule_bus(&bus_jobs);
    misses.extend(bus::miss_diagnostics(
        &bus_jobs,
        &bus_outcome,
        task_name,
        host_name,
    ));

    if !misses.is_empty() {
        return Err(SchedError::NotSchedulable { misses });
    }
    Ok(Schedule::new(
        spec.round_period(),
        host_slots,
        bus_outcome.slots,
        completions,
    ))
}

/// Checks schedulability of every phase of a periodic time-dependent
/// implementation (each round uses one phase's mapping, so per-phase
/// feasibility suffices). Returns one schedule per phase.
///
/// # Errors
///
/// Same as [`analyze`], raised for the first infeasible phase.
pub fn analyze_time_dependent(
    spec: &Specification,
    arch: &Architecture,
    imp: &logrel_core::TimeDependentImplementation,
) -> Result<Vec<Schedule>, SchedError> {
    imp.phases()
        .iter()
        .map(|phase| analyze(spec, arch, phase))
        .collect()
}

fn missing_metric(
    metric: &'static str,
    spec: &Specification,
    arch: &Architecture,
    t: logrel_core::TaskId,
    h: logrel_core::HostId,
) -> SchedError {
    SchedError::Core(CoreError::MissingExecutionMetric {
        metric,
        task: spec.task(t).name().to_owned(),
        host: arch.host(h).name().to_owned(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use logrel_core::{
        CommunicatorDecl, HostDecl, HostId, Reliability, SensorDecl, SensorId, TaskDecl,
        ValueType,
    };

    fn r(v: f64) -> Reliability {
        Reliability::new(v).unwrap()
    }

    /// Two tasks in a pipeline over communicators of period 10:
    /// reader: s@0 -> l@1 (LET [0, 10]), ctrl: l@1 -> u@3 (LET [10, 30]).
    fn system(
        wcet_reader: u64,
        wcet_ctrl: u64,
        wctt: u64,
        replicate: bool,
    ) -> Result<Schedule, SchedError> {
        let mut sb = Specification::builder();
        let s = sb
            .communicator(
                CommunicatorDecl::new("s", ValueType::Float, 10)
                    .unwrap()
                    .from_sensor(),
            )
            .unwrap();
        let l = sb
            .communicator(CommunicatorDecl::new("l", ValueType::Float, 10).unwrap())
            .unwrap();
        let u = sb
            .communicator(CommunicatorDecl::new("u", ValueType::Float, 10).unwrap())
            .unwrap();
        let reader = sb
            .task(TaskDecl::new("reader").reads(s, 0).writes(l, 1))
            .unwrap();
        let ctrl = sb.task(TaskDecl::new("ctrl").reads(l, 1).writes(u, 3)).unwrap();
        let spec = sb.build().unwrap();

        let mut ab = Architecture::builder();
        let h1 = ab.host(HostDecl::new("h1", r(0.99))).unwrap();
        let h2 = ab.host(HostDecl::new("h2", r(0.99))).unwrap();
        ab.sensor(SensorDecl::new("sen", Reliability::ONE)).unwrap();
        ab.wcet_all(reader, wcet_reader).unwrap();
        ab.wcet_all(ctrl, wcet_ctrl).unwrap();
        ab.wctt_all(reader, wctt).unwrap();
        ab.wctt_all(ctrl, wctt).unwrap();
        let arch = ab.build();

        let mut builder = Implementation::builder()
            .assign(reader, [h1])
            .assign(ctrl, if replicate { vec![h1, h2] } else { vec![h1] })
            .bind_sensor(s, SensorId::new(0));
        if replicate {
            builder = builder.assign(reader, [h2]);
        }
        let imp = builder.build(&spec, &arch).unwrap();
        analyze(&spec, &arch, &imp)
    }

    #[test]
    fn feasible_pipeline_schedules() {
        let sched = system(4, 8, 2, false).unwrap();
        assert_eq!(sched.round().as_u64(), 30);
        // reader completes by 4, ctrl released at 10 finishes by 18.
        assert_eq!(
            sched.completion(logrel_core::TaskId::new(0), HostId::new(0)),
            Some(logrel_core::Tick::new(4))
        );
        assert_eq!(sched.bus_slots().len(), 2);
    }

    #[test]
    fn wcet_exceeding_window_fails_on_cpu() {
        // reader window is [0, 10 - wctt]; wcet 9 with wctt 2 misses.
        let err = system(9, 2, 2, false).unwrap_err();
        let SchedError::NotSchedulable { misses } = err else {
            panic!("expected NotSchedulable");
        };
        assert!(misses.iter().any(|m| m.task == "reader" && !m.on_bus));
    }

    #[test]
    fn bus_contention_between_replicas() {
        // Replicated on both hosts: CPUs are parallel but the bus serialises
        // 4 broadcasts of 2 ticks each. reader replicas both complete at 4
        // and must broadcast by 10: 4+2+2 = 8 <= 10, fine. ctrl replicas
        // complete at 18, broadcast by 30: fine. So still schedulable.
        let sched = system(4, 8, 2, true).unwrap();
        assert_eq!(sched.bus_slots().len(), 4);
        // Bus slots never overlap.
        for w in sched.bus_slots().windows(2) {
            assert!(w[0].end <= w[1].start);
        }
    }

    #[test]
    fn bus_overload_fails() {
        // WCTT 5: reader replicas complete at 4; broadcasts 4->9 and 9->14;
        // the second misses the write time 10.
        let err = system(4, 4, 5, true).unwrap_err();
        let SchedError::NotSchedulable { misses } = err else {
            panic!("expected NotSchedulable");
        };
        assert!(misses.iter().any(|m| m.on_bus));
    }

    #[test]
    fn utilization_is_consistent() {
        let sched = system(4, 8, 2, false).unwrap();
        // h1 runs 4 + 8 ticks in a round of 30.
        assert!((sched.utilization(HostId::new(0)) - 12.0 / 30.0).abs() < 1e-12);
        assert!((sched.bus_utilization() - 4.0 / 30.0).abs() < 1e-12);
    }

    #[test]
    fn time_dependent_phases_are_checked_individually() {
        use logrel_core::TimeDependentImplementation;
        // Build two phases from the feasible pipeline, one of which is
        // infeasible (ctrl moved next to reader on one host with an
        // impossible WCET is hard to construct via system(); instead use
        // two feasible phases and assert per-phase schedules).
        let mut sb = Specification::builder();
        let s = sb
            .communicator(
                CommunicatorDecl::new("s", ValueType::Float, 10)
                    .unwrap()
                    .from_sensor(),
            )
            .unwrap();
        let u = sb
            .communicator(CommunicatorDecl::new("u", ValueType::Float, 10).unwrap())
            .unwrap();
        let t = sb.task(TaskDecl::new("t").reads(s, 0).writes(u, 1)).unwrap();
        let spec = sb.build().unwrap();
        let mut ab = Architecture::builder();
        let h1 = ab.host(HostDecl::new("h1", r(0.99))).unwrap();
        let h2 = ab.host(HostDecl::new("h2", r(0.99))).unwrap();
        ab.sensor(SensorDecl::new("sen", Reliability::ONE)).unwrap();
        ab.wcet(t, h1, 4).unwrap();
        ab.wctt(t, h1, 1).unwrap();
        ab.wcet(t, h2, 20).unwrap(); // cannot fit the [0, 10) window
        ab.wctt(t, h2, 1).unwrap();
        let arch = ab.build();
        let p0 = Implementation::builder()
            .assign(t, [h1])
            .bind_sensor(s, SensorId::new(0))
            .build(&spec, &arch)
            .unwrap();
        let p1 = p0.with_assignment(t, [h2]);
        let ok = TimeDependentImplementation::new(vec![p0.clone()]).unwrap();
        assert_eq!(analyze_time_dependent(&spec, &arch, &ok).unwrap().len(), 1);
        let mixed = TimeDependentImplementation::new(vec![p0, p1]).unwrap();
        assert!(matches!(
            analyze_time_dependent(&spec, &arch, &mixed).unwrap_err(),
            SchedError::NotSchedulable { .. }
        ));
    }

    #[test]
    fn missing_metric_is_core_error() {
        // Build a spec/arch pair where the implementation bypasses
        // validation via with_assignment to a host lacking metrics.
        let mut sb = Specification::builder();
        let s = sb
            .communicator(
                CommunicatorDecl::new("s", ValueType::Float, 10)
                    .unwrap()
                    .from_sensor(),
            )
            .unwrap();
        let u = sb
            .communicator(CommunicatorDecl::new("u", ValueType::Float, 10).unwrap())
            .unwrap();
        let t = sb.task(TaskDecl::new("t").reads(s, 0).writes(u, 1)).unwrap();
        let spec = sb.build().unwrap();
        let mut ab = Architecture::builder();
        let h1 = ab.host(HostDecl::new("h1", r(0.9))).unwrap();
        ab.host(HostDecl::new("h2", r(0.9))).unwrap();
        ab.sensor(SensorDecl::new("sen", Reliability::ONE)).unwrap();
        ab.wcet(t, h1, 1).unwrap();
        ab.wctt(t, h1, 1).unwrap();
        let arch = ab.build();
        let imp = Implementation::builder()
            .assign(t, [h1])
            .bind_sensor(s, SensorId::new(0))
            .build(&spec, &arch)
            .unwrap()
            .with_assignment(t, [HostId::new(1)]);
        assert!(matches!(
            analyze(&spec, &arch, &imp).unwrap_err(),
            SchedError::Core(CoreError::MissingExecutionMetric { .. })
        ));
    }
}
