//! Worst-case end-to-end data age along communicator chains.
//!
//! LET semantics make end-to-end latency *deterministic*: a task's output
//! becomes visible exactly at its write time, regardless of when the
//! replication actually finished. The *data age* of a communicator is the
//! time since the oldest sensor sample that influenced its current value:
//!
//! * a sensor-fed communicator has age 0 at its update instants;
//! * a task `t` reading `c` at access instant `a` and writing `c'` at `w`
//!   adds `(a − w_c) mod π_S` (how long `c`'s value waited since its
//!   producing write `w_c`) plus `w − a` (the LET transport);
//! * with several inputs the worst (oldest) chain dominates.
//!
//! Computed by dynamic programming over the communicator dependency graph
//! (which the reliability analysis already requires to be acyclic).

use logrel_core::graph::CommDependencyGraph;
use logrel_core::{CommAccess, CommunicatorId, Specification};

/// Worst-case data ages, per communicator, in ticks.
#[derive(Debug, Clone, PartialEq)]
pub struct DataAges {
    ages: Vec<Option<u64>>,
    write_instants: Vec<Option<u64>>,
}

impl DataAges {
    /// The worst-case age of `comm`'s value at its producing write instant
    /// (`Some(0)` for sensor-fed communicators; `None` for constants and
    /// for communicators downstream of an unresolvable cycle).
    pub fn age(&self, comm: CommunicatorId) -> Option<u64> {
        self.ages[comm.index()]
    }
}

/// Computes worst-case data ages for every communicator of `spec`.
///
/// Communicators on dependency cycles (and everything downstream of them)
/// get `None` — the age there is unbounded across rounds.
pub fn data_ages(spec: &Specification) -> DataAges {
    let n = spec.communicator_count();
    let round = spec.round_period().as_u64();
    let mut ages: Vec<Option<u64>> = vec![None; n];
    let mut write_instants: Vec<Option<u64>> = vec![None; n];

    let graph = CommDependencyGraph::new(spec);
    let Ok(order) = graph.analysis_order() else {
        // Cyclic: leave everything unresolved except pure sensors.
        for c in spec.communicator_ids() {
            if spec.is_sensor_input(c) {
                ages[c.index()] = Some(0);
                write_instants[c.index()] = Some(0);
            }
        }
        return DataAges {
            ages,
            write_instants,
        };
    };

    for c in order {
        if spec.is_sensor_input(c) {
            ages[c.index()] = Some(0);
            // Sensor communicators refresh at every update instant; use 0
            // as the canonical producing instant (ages are measured per
            // access below, modulo the round).
            write_instants[c.index()] = Some(0);
            continue;
        }
        let Some(t) = spec.writer(c) else {
            continue; // constant: no meaningful age
        };
        let decl = spec.task(t);
        // The write instant of THIS communicator among t's outputs.
        let w_out = decl
            .outputs()
            .iter()
            .filter(|a| a.comm == c)
            .map(|&a| spec.access_instant(a).as_u64())
            .max()
            .expect("writer writes c");
        let mut worst: Option<u64> = Some(0);
        for &access in decl.inputs() {
            let CommAccess { comm: c_in, .. } = access;
            let a_in = spec.access_instant(access).as_u64();
            let (Some(up_age), Some(up_write)) =
                (ages[c_in.index()], write_instants[c_in.index()])
            else {
                worst = None;
                break;
            };
            let wait = if spec.is_sensor_input(c_in) {
                // Sensor comms refresh every π_c; the value read at a_in
                // was sampled at the latest update not after a_in: age 0.
                0
            } else {
                (a_in + round - up_write % round) % round
            };
            let chain = up_age + wait + (w_out - a_in);
            worst = worst.map(|w| w.max(chain));
        }
        ages[c.index()] = worst;
        write_instants[c.index()] = Some(w_out);
    }
    DataAges {
        ages,
        write_instants,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logrel_core::{CommunicatorDecl, FailureModel, TaskDecl, Value, ValueType};

    fn comm(name: &str, period: u64) -> CommunicatorDecl {
        CommunicatorDecl::new(name, ValueType::Float, period).unwrap()
    }

    #[test]
    fn chain_ages_accumulate_let_transport() {
        // sensor s(p100) -> read@[0,100] -> l -> ctrl@[100,300] -> u.
        let mut b = Specification::builder();
        let s = b.communicator(comm("s", 500).from_sensor()).unwrap();
        let l = b.communicator(comm("l", 100)).unwrap();
        let u = b.communicator(comm("u", 100)).unwrap();
        b.task(TaskDecl::new("read").reads(s, 0).writes(l, 1)).unwrap();
        b.task(TaskDecl::new("ctrl").reads(l, 1).writes(u, 3)).unwrap();
        let spec = b.build().unwrap();
        let ages = data_ages(&spec);
        assert_eq!(ages.age(s), Some(0));
        assert_eq!(ages.age(l), Some(100));
        // ctrl reads l exactly at its write instant: no waiting; +200 LET.
        assert_eq!(ages.age(u), Some(300));
    }

    #[test]
    fn waiting_between_write_and_read_is_counted() {
        // producer writes l at 100; consumer reads l@3 (t=300): value
        // waited 200 ticks before being picked up.
        let mut b = Specification::builder();
        let s = b.communicator(comm("s", 500).from_sensor()).unwrap();
        let l = b.communicator(comm("l", 100)).unwrap();
        let u = b.communicator(comm("u", 100)).unwrap();
        b.task(TaskDecl::new("read").reads(s, 0).writes(l, 1)).unwrap();
        b.task(TaskDecl::new("ctrl").reads(l, 3).writes(u, 4)).unwrap();
        let spec = b.build().unwrap();
        let ages = data_ages(&spec);
        // age(l)=100; wait (300-100)=200; transport (400-300)=100.
        assert_eq!(ages.age(u), Some(400));
    }

    #[test]
    fn cross_round_wait_wraps_by_the_round_period() {
        // producer writes l at 400 (round 500); consumer reads l@1 (t=100):
        // it sees the PREVIOUS round's value, waited (100+500-400)=200.
        let mut b = Specification::builder();
        let s = b.communicator(comm("s", 500).from_sensor()).unwrap();
        let l = b.communicator(comm("l", 100)).unwrap();
        let u = b.communicator(comm("u", 100)).unwrap();
        let r = b.communicator(comm("r", 500)).unwrap();
        b.task(TaskDecl::new("read").reads(s, 0).writes(l, 4)).unwrap();
        // ctrl reads l@1 and writes u@2 -- but it must read strictly
        // before writing and the dependency graph has read->l; l is
        // written at 400, so ctrl's l@1 read sees the previous round.
        b.task(TaskDecl::new("ctrl").reads(l, 1).writes(u, 2)).unwrap();
        b.task(TaskDecl::new("obs").reads(u, 2).writes(r, 1)).unwrap();
        let spec = b.build().unwrap();
        let ages = data_ages(&spec);
        assert_eq!(ages.age(l), Some(400));
        // age(u) = 400 + 200 (wrap wait) + (200-100) = 700.
        assert_eq!(ages.age(u), Some(700));
        // obs reads u@2 (=200, its write instant): wait 0; +300 transport.
        assert_eq!(ages.age(r), Some(1000));
    }

    #[test]
    fn worst_input_dominates_a_diamond() {
        let mut b = Specification::builder();
        let s = b.communicator(comm("s", 500).from_sensor()).unwrap();
        let fast = b.communicator(comm("fast", 100)).unwrap();
        let slow = b.communicator(comm("slow", 100)).unwrap();
        let out = b.communicator(comm("out", 100)).unwrap();
        b.task(TaskDecl::new("f").reads(s, 0).writes(fast, 1)).unwrap();
        b.task(TaskDecl::new("g").reads(s, 0).writes(slow, 3)).unwrap();
        b.task(
            TaskDecl::new("join")
                .reads(fast, 3)
                .reads(slow, 3)
                .writes(out, 4),
        )
        .unwrap();
        let spec = b.build().unwrap();
        let ages = data_ages(&spec);
        // fast: age 100, waits 200 at the join -> chain 100+200+100 = 400.
        // slow: age 300, waits 0 -> chain 300+0+100 = 400. Equal here;
        // stretch slow's write to make it dominate:
        assert_eq!(ages.age(out), Some(400));
    }

    #[test]
    fn constants_and_cycles_have_no_age() {
        let mut b = Specification::builder();
        let k = b.communicator(comm("k", 10)).unwrap(); // constant
        let c = b.communicator(comm("c", 10)).unwrap();
        b.task(
            TaskDecl::new("t")
                .reads(k, 0)
                .reads(c, 0)
                .writes(c, 1)
                .model(FailureModel::Independent)
                .default_value(Value::Float(0.0))
                .default_value(Value::Float(0.0)),
        )
        .unwrap();
        let spec = b.build().unwrap();
        let ages = data_ages(&spec);
        assert_eq!(ages.age(k), None);
        // c reads the constant k (no age) and itself: unresolved.
        assert_eq!(ages.age(c), None);
    }

    #[test]
    fn three_tank_actuation_age_is_300ms() {
        // The full 3TS has the same structure as chain_ages... verify via
        // a replica of its timing.
        let mut b = Specification::builder();
        let s1 = b.communicator(comm("s1", 500).from_sensor()).unwrap();
        let l1 = b.communicator(comm("l1", 100)).unwrap();
        let u1 = b.communicator(comm("u1", 100)).unwrap();
        let r1 = b.communicator(comm("r1", 500)).unwrap();
        b.task(TaskDecl::new("read1").reads(s1, 0).writes(l1, 1)).unwrap();
        b.task(TaskDecl::new("t1").reads(l1, 1).writes(u1, 3)).unwrap();
        b.task(
            TaskDecl::new("estimate1")
                .reads(l1, 1)
                .reads(u1, 3)
                .writes(r1, 1),
        )
        .unwrap();
        let spec = b.build().unwrap();
        let ages = data_ages(&spec);
        assert_eq!(ages.age(u1), Some(300));
        assert_eq!(ages.age(r1), Some(500));
    }
}
