//! Preemptive earliest-deadline-first simulation on one host.
//!
//! EDF is optimal on a single preemptive processor, so if this simulation
//! misses a deadline the replication set is infeasible on that host (for
//! the declared WCETs) — making the check exact on the CPU side.

use crate::error::MissedDeadline;
use crate::schedule::ExecSlot;
use logrel_core::{HostId, TaskId, Tick};

/// A CPU job: one task replication's execution demand within one round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuJob {
    /// The replicated task.
    pub task: TaskId,
    /// The executing host.
    pub host: HostId,
    /// Release instant (the task's read time).
    pub release: Tick,
    /// Execution budget (WCET on this host), > 0.
    pub exec: u64,
    /// Absolute CPU deadline (write time minus WCTT).
    pub deadline: Tick,
}

/// Result of scheduling one host's jobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdfOutcome {
    /// Completion instant per input job (same order as the input).
    pub completions: Vec<Tick>,
    /// The produced execution slots, in chronological order (a preempted
    /// job occupies several slots).
    pub slots: Vec<ExecSlot>,
    /// Jobs whose completion exceeds their deadline.
    pub misses: Vec<usize>,
}

impl EdfOutcome {
    /// `true` if every job met its deadline.
    pub fn feasible(&self) -> bool {
        self.misses.is_empty()
    }
}

/// Simulates preemptive EDF over the given jobs (all on one host).
///
/// Ties on deadlines are broken by job index, making the schedule
/// deterministic. The simulation runs until all jobs complete, even past
/// deadlines, so that diagnostics can report actual completion times.
pub fn simulate_edf(jobs: &[CpuJob]) -> EdfOutcome {
    let n = jobs.len();
    let mut remaining: Vec<u64> = jobs.iter().map(|j| j.exec).collect();
    let mut completions: Vec<Tick> = vec![Tick::ZERO; n];
    let mut done = vec![false; n];
    let mut slots: Vec<ExecSlot> = Vec::new();
    let mut now = jobs
        .iter()
        .map(|j| j.release)
        .min()
        .unwrap_or(Tick::ZERO);
    let mut pending = n;

    while pending > 0 {
        // Ready job with earliest deadline.
        let ready = (0..n)
            .filter(|&i| !done[i] && jobs[i].release <= now)
            .min_by_key(|&i| (jobs[i].deadline, i));
        let Some(i) = ready else {
            // Idle until next release.
            now = jobs
                .iter()
                .enumerate()
                .filter(|(k, _)| !done[*k])
                .map(|(_, j)| j.release)
                .min()
                .expect("pending jobs exist");
            continue;
        };
        // Run job i until it finishes or a release could preempt it.
        let next_release = jobs
            .iter()
            .enumerate()
            .filter(|(k, j)| !done[*k] && j.release > now)
            .map(|(_, j)| j.release)
            .min();
        let finish_at = now + remaining[i];
        let until = match next_release {
            Some(r) if r < finish_at => r,
            _ => finish_at,
        };
        let ran = until - now;
        remaining[i] -= ran;
        // Merge with the previous slot when the same job continues.
        match slots.last_mut() {
            Some(last) if last.task == jobs[i].task && last.end == now => last.end = until,
            _ => slots.push(ExecSlot {
                task: jobs[i].task,
                host: jobs[i].host,
                start: now,
                end: until,
            }),
        }
        now = until;
        if remaining[i] == 0 {
            done[i] = true;
            completions[i] = now;
            pending -= 1;
        }
    }

    let misses = (0..n)
        .filter(|&i| completions[i] > jobs[i].deadline)
        .collect();
    EdfOutcome {
        completions,
        slots,
        misses,
    }
}

/// Converts EDF misses into [`MissedDeadline`] diagnostics.
pub fn miss_diagnostics(
    jobs: &[CpuJob],
    outcome: &EdfOutcome,
    task_name: impl Fn(TaskId) -> String,
    host_name: impl Fn(HostId) -> String,
) -> Vec<MissedDeadline> {
    outcome
        .misses
        .iter()
        .map(|&i| MissedDeadline {
            task: task_name(jobs[i].task),
            host: host_name(jobs[i].host),
            release: jobs[i].release.as_u64(),
            deadline: jobs[i].deadline.as_u64(),
            completion: Some(outcome.completions[i].as_u64()),
            on_bus: false,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn job(release: u64, exec: u64, deadline: u64) -> CpuJob {
        CpuJob {
            task: TaskId::new(0),
            host: HostId::new(0),
            release: Tick::new(release),
            exec,
            deadline: Tick::new(deadline),
        }
    }

    fn job_t(t: u32, release: u64, exec: u64, deadline: u64) -> CpuJob {
        CpuJob {
            task: TaskId::new(t),
            ..job(release, exec, deadline)
        }
    }

    #[test]
    fn single_job_runs_at_release() {
        let out = simulate_edf(&[job(3, 2, 10)]);
        assert!(out.feasible());
        assert_eq!(out.completions, vec![Tick::new(5)]);
        assert_eq!(out.slots.len(), 1);
        assert_eq!(out.slots[0].start, Tick::new(3));
        assert_eq!(out.slots[0].end, Tick::new(5));
    }

    #[test]
    fn edf_prefers_earlier_deadline() {
        let jobs = [job_t(0, 0, 5, 20), job_t(1, 0, 2, 4)];
        let out = simulate_edf(&jobs);
        assert!(out.feasible());
        // Job 1 (deadline 4) runs first.
        assert_eq!(out.completions[1], Tick::new(2));
        assert_eq!(out.completions[0], Tick::new(7));
    }

    #[test]
    fn preemption_on_later_release() {
        // Long job released at 0 with deadline 20; short urgent job at 2.
        let jobs = [job_t(0, 0, 10, 20), job_t(1, 2, 3, 6)];
        let out = simulate_edf(&jobs);
        assert!(out.feasible());
        assert_eq!(out.completions[1], Tick::new(5));
        assert_eq!(out.completions[0], Tick::new(13));
        // The long job appears in two slots (preempted at t=2).
        let slots_t0: Vec<_> = out
            .slots
            .iter()
            .filter(|s| s.task == TaskId::new(0))
            .collect();
        assert_eq!(slots_t0.len(), 2);
    }

    #[test]
    fn overload_is_reported_not_hidden() {
        let jobs = [job_t(0, 0, 5, 4)];
        let out = simulate_edf(&jobs);
        assert!(!out.feasible());
        assert_eq!(out.misses, vec![0]);
        assert_eq!(out.completions[0], Tick::new(5));
        let diags = miss_diagnostics(
            &jobs,
            &out,
            |t| format!("task{}", t.index()),
            |h| format!("host{}", h.index()),
        );
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].completion, Some(5));
        assert!(!diags[0].on_bus);
    }

    #[test]
    fn idle_gaps_are_skipped() {
        let jobs = [job_t(0, 0, 1, 2), job_t(1, 10, 1, 12)];
        let out = simulate_edf(&jobs);
        assert!(out.feasible());
        assert_eq!(out.completions[1], Tick::new(11));
        assert_eq!(out.slots.len(), 2);
    }

    #[test]
    fn empty_job_set() {
        let out = simulate_edf(&[]);
        assert!(out.feasible());
        assert!(out.slots.is_empty());
    }

    #[test]
    fn slots_of_same_task_merge_when_contiguous() {
        // Two jobs of the same task back to back merge into one slot.
        let jobs = [job_t(0, 0, 2, 10), job_t(0, 2, 2, 12)];
        let out = simulate_edf(&jobs);
        assert_eq!(out.slots.len(), 1);
        assert_eq!(out.slots[0].end, Tick::new(4));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]
        #[test]
        fn edf_slots_never_overlap_and_cover_exec(
            raw in proptest::collection::vec((0u64..20, 1u64..5, 1u64..30), 1..8)
        ) {
            let jobs: Vec<CpuJob> = raw
                .iter()
                .enumerate()
                .map(|(i, &(r, e, d))| CpuJob {
                    task: TaskId::new(i as u32),
                    host: HostId::new(0),
                    release: Tick::new(r),
                    exec: e,
                    deadline: Tick::new(r + d),
                })
                .collect();
            let out = simulate_edf(&jobs);
            // Slots are chronological and non-overlapping.
            for w in out.slots.windows(2) {
                prop_assert!(w[0].end <= w[1].start);
            }
            // Total slot time equals total execution demand.
            let total: u64 = out.slots.iter().map(|s| s.end - s.start).sum();
            let demand: u64 = jobs.iter().map(|j| j.exec).sum();
            prop_assert_eq!(total, demand);
            // Completions are never before release + exec.
            for (i, j) in jobs.iter().enumerate() {
                prop_assert!(out.completions[i] >= j.release + j.exec);
            }
        }
    }
}
