//! LET schedulability analysis and static schedule generation.
//!
//! §2 of the paper: "The implementation I is schedulable if (all
//! replications of) all tasks complete execution and transmission (of the
//! outputs) between the read and the write time of the respective task."
//!
//! Each task replication `(t, h)` becomes a job on host `h` released at
//! `read_t` with execution budget `wemap(t, h)`; after finishing on the CPU
//! its outputs occupy the shared broadcast bus for `wtmap(t, h)` and the
//! broadcast must complete by `write_t`. This crate checks feasibility
//! constructively:
//!
//! * [`edf`] — per-host preemptive EDF simulation over one round (the
//!   optimal uniprocessor policy, so EDF failing proves infeasibility on
//!   that host);
//! * [`bus`] — non-preemptive earliest-deadline-first dispatch of the
//!   broadcasts on the single shared bus (a sufficient, constructive test);
//! * [`analysis`] — the end-to-end check producing a time-triggered
//!   [`Schedule`] table that the E-machine and the simulator replay.
//!
//! Because every job's release and deadline fall within one round `π_S` and
//! the task set repeats with period `π_S`, a single-round schedule repeats
//! verbatim forever.

pub mod analysis;
pub mod bus;
pub mod dbf;
pub mod edf;
pub mod error;
pub mod latency;
pub mod schedule;

pub use analysis::{analyze, analyze_time_dependent};
pub use dbf::processor_demand_check;
pub use latency::{data_ages, DataAges};
pub use error::SchedError;
pub use schedule::{BusSlot, ExecSlot, Schedule};
