//! Errors of the schedulability analysis.

use logrel_core::CoreError;
use std::error::Error;
use std::fmt;

/// A job that cannot meet its deadline, with enough context to explain why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MissedDeadline {
    /// The task whose replication misses.
    pub task: String,
    /// The host executing the replication (or broadcasting on the bus).
    pub host: String,
    /// The job's release instant.
    pub release: u64,
    /// The job's absolute deadline.
    pub deadline: u64,
    /// The earliest completion the analysis could achieve (`None` if the
    /// job cannot even start, e.g. its budget exceeds its window).
    pub completion: Option<u64>,
    /// `true` if the miss occurred on the broadcast bus rather than a CPU.
    pub on_bus: bool,
}

impl fmt::Display for MissedDeadline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let res = if self.on_bus { "bus" } else { "cpu" };
        match self.completion {
            Some(c) => write!(
                f,
                "{res} job `{}`@`{}` [release {}, deadline {}] completes at {c}",
                self.task, self.host, self.release, self.deadline
            ),
            None => write!(
                f,
                "{res} job `{}`@`{}` [release {}, deadline {}] cannot fit its window",
                self.task, self.host, self.release, self.deadline
            ),
        }
    }
}

/// Errors raised while checking schedulability.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SchedError {
    /// A core-model error.
    Core(CoreError),
    /// The implementation is not schedulable; every missed deadline is
    /// reported.
    NotSchedulable {
        /// All deadline misses found (CPU first, then bus).
        misses: Vec<MissedDeadline>,
    },
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedError::Core(e) => write!(f, "{e}"),
            SchedError::NotSchedulable { misses } => {
                write!(f, "not schedulable: ")?;
                for (i, m) in misses.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{m}")?;
                }
                Ok(())
            }
        }
    }
}

impl Error for SchedError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SchedError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for SchedError {
    fn from(e: CoreError) -> Self {
        SchedError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let m1 = MissedDeadline {
            task: "t".into(),
            host: "h".into(),
            release: 0,
            deadline: 5,
            completion: Some(7),
            on_bus: false,
        };
        let m2 = MissedDeadline {
            task: "t".into(),
            host: "h".into(),
            release: 0,
            deadline: 5,
            completion: None,
            on_bus: true,
        };
        assert!(m1.to_string().contains("completes at 7"));
        assert!(m2.to_string().contains("cannot fit"));
        let e = SchedError::NotSchedulable {
            misses: vec![m1, m2],
        };
        assert!(e.to_string().contains("not schedulable"));
        let c: SchedError = CoreError::ZeroPeriod.into();
        assert!(!c.to_string().is_empty());
        assert!(c.source().is_some());
        assert!(e.source().is_none());
    }
}
