//! Static time-triggered schedule tables.
//!
//! The product of a successful schedulability analysis: per-host execution
//! slots and bus broadcast slots over one round `π_S`, which repeats
//! verbatim. The E-machine code generator and the runtime simulator both
//! replay this table.

use logrel_core::{HostId, Period, TaskId, Tick};
use std::collections::BTreeMap;
use std::fmt;

/// One contiguous execution segment of a task replication on a host's CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ExecSlot {
    /// The executing task.
    pub task: TaskId,
    /// The executing host.
    pub host: HostId,
    /// Slot start (inclusive).
    pub start: Tick,
    /// Slot end (exclusive).
    pub end: Tick,
}

/// One broadcast transmission on the shared bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct BusSlot {
    /// The broadcasting task.
    pub task: TaskId,
    /// The sending host.
    pub host: HostId,
    /// Transmission start (inclusive).
    pub start: Tick,
    /// Transmission end (exclusive); equals `start` for zero-WCTT jobs.
    pub end: Tick,
}

/// A complete single-round schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    round: Period,
    host_slots: BTreeMap<HostId, Vec<ExecSlot>>,
    bus_slots: Vec<BusSlot>,
    /// CPU completion instant of each replication `(task, host)`.
    completions: BTreeMap<(TaskId, HostId), Tick>,
}

impl Schedule {
    /// Assembles a schedule. Intended for use by
    /// [`crate::analysis::analyze`]; exposed for tests and custom
    /// analyses.
    pub fn new(
        round: Period,
        host_slots: BTreeMap<HostId, Vec<ExecSlot>>,
        bus_slots: Vec<BusSlot>,
        completions: BTreeMap<(TaskId, HostId), Tick>,
    ) -> Self {
        Schedule {
            round,
            host_slots,
            bus_slots,
            completions,
        }
    }

    /// The schedule's repetition period (the specification round π_S).
    pub fn round(&self) -> Period {
        self.round
    }

    /// The execution slots of `host`, chronological.
    pub fn host_slots(&self, host: HostId) -> &[ExecSlot] {
        self.host_slots.get(&host).map_or(&[], Vec::as_slice)
    }

    /// The hosts that execute at least one slot.
    pub fn busy_hosts(&self) -> impl Iterator<Item = HostId> + '_ {
        self.host_slots.keys().copied()
    }

    /// All bus slots, chronological.
    pub fn bus_slots(&self) -> &[BusSlot] {
        &self.bus_slots
    }

    /// The CPU completion instant of replication `(task, host)` within the
    /// round, if it is scheduled.
    pub fn completion(&self, task: TaskId, host: HostId) -> Option<Tick> {
        self.completions.get(&(task, host)).copied()
    }

    /// CPU utilisation of `host` over one round, in `[0, 1]`.
    pub fn utilization(&self, host: HostId) -> f64 {
        let busy: u64 = self
            .host_slots(host)
            .iter()
            .map(|s| s.end - s.start)
            .sum();
        busy as f64 / self.round.as_u64() as f64
    }

    /// Bus utilisation over one round, in `[0, 1]`.
    pub fn bus_utilization(&self) -> f64 {
        let busy: u64 = self.bus_slots.iter().map(|s| s.end - s.start).sum();
        busy as f64 / self.round.as_u64() as f64
    }

    /// Renders a text Gantt chart using the provided name lookups.
    pub fn gantt(
        &self,
        task_name: impl Fn(TaskId) -> String,
        host_name: impl Fn(HostId) -> String,
    ) -> String {
        let mut out = format!("round = {}\n", self.round);
        for (&h, slots) in &self.host_slots {
            out.push_str(&format!("{}: ", host_name(h)));
            for s in slots {
                out.push_str(&format!("[{}..{} {}] ", s.start, s.end, task_name(s.task)));
            }
            out.push('\n');
        }
        out.push_str("bus: ");
        for s in &self.bus_slots {
            out.push_str(&format!(
                "[{}..{} {}@{}] ",
                s.start,
                s.end,
                task_name(s.task),
                host_name(s.host)
            ));
        }
        out.push('\n');
        out
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}",
            self.gantt(|t| t.to_string(), |h| h.to_string())
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mini() -> Schedule {
        let t = TaskId::new(0);
        let h = HostId::new(0);
        let mut host_slots = BTreeMap::new();
        host_slots.insert(
            h,
            vec![ExecSlot {
                task: t,
                host: h,
                start: Tick::new(0),
                end: Tick::new(3),
            }],
        );
        let bus = vec![BusSlot {
            task: t,
            host: h,
            start: Tick::new(3),
            end: Tick::new(4),
        }];
        let mut completions = BTreeMap::new();
        completions.insert((t, h), Tick::new(3));
        Schedule::new(Period::new(10).unwrap(), host_slots, bus, completions)
    }

    #[test]
    fn accessors() {
        let s = mini();
        let t = TaskId::new(0);
        let h = HostId::new(0);
        assert_eq!(s.round().as_u64(), 10);
        assert_eq!(s.host_slots(h).len(), 1);
        assert_eq!(s.host_slots(HostId::new(5)).len(), 0);
        assert_eq!(s.bus_slots().len(), 1);
        assert_eq!(s.completion(t, h), Some(Tick::new(3)));
        assert_eq!(s.completion(t, HostId::new(9)), None);
        assert_eq!(s.busy_hosts().collect::<Vec<_>>(), vec![h]);
    }

    #[test]
    fn utilizations() {
        let s = mini();
        assert!((s.utilization(HostId::new(0)) - 0.3).abs() < 1e-12);
        assert_eq!(s.utilization(HostId::new(7)), 0.0);
        assert!((s.bus_utilization() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn gantt_and_display() {
        let s = mini();
        let text = s.gantt(|_| "ctrl".into(), |_| "hostA".into());
        assert!(text.contains("ctrl") && text.contains("hostA") && text.contains("bus"));
        assert!(s.to_string().contains("round = 10"));
    }
}
