//! The processor-demand criterion: an analytical EDF feasibility test.
//!
//! For a finite job set on one preemptive processor, EDF feasibility is
//! equivalent to the *processor demand criterion*: for every interval
//! `[a, b]`, the total execution demand of jobs with `release ≥ a` and
//! `deadline ≤ b` must not exceed `b − a`. It suffices to check intervals
//! whose endpoints are job releases and deadlines.
//!
//! This gives a second, independent implementation of the CPU-side
//! feasibility question answered constructively by
//! [`crate::edf::simulate_edf`]; the two are cross-checked by property
//! tests.

use crate::edf::CpuJob;

/// A violated demand interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DemandOverflow {
    /// Interval start (a job release).
    pub from: u64,
    /// Interval end (a job deadline).
    pub to: u64,
    /// Total demand of jobs contained in the interval.
    pub demand: u64,
}

/// Checks the processor demand criterion for `jobs` (all on one host).
///
/// Returns `Ok(())` if every interval's demand fits, or the first violated
/// interval.
///
/// # Errors
///
/// Returns a [`DemandOverflow`] describing a witness interval whose demand
/// exceeds its length (so the job set is EDF-infeasible).
pub fn processor_demand_check(jobs: &[CpuJob]) -> Result<(), DemandOverflow> {
    let mut starts: Vec<u64> = jobs.iter().map(|j| j.release.as_u64()).collect();
    let mut ends: Vec<u64> = jobs.iter().map(|j| j.deadline.as_u64()).collect();
    starts.sort_unstable();
    starts.dedup();
    ends.sort_unstable();
    ends.dedup();
    for &a in &starts {
        for &b in &ends {
            if b <= a {
                continue;
            }
            let demand: u64 = jobs
                .iter()
                .filter(|j| j.release.as_u64() >= a && j.deadline.as_u64() <= b)
                .map(|j| j.exec)
                .sum();
            if demand > b - a {
                return Err(DemandOverflow {
                    from: a,
                    to: b,
                    demand,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::edf::simulate_edf;
    use logrel_core::{HostId, TaskId, Tick};
    use proptest::prelude::*;

    fn job(t: u32, release: u64, exec: u64, deadline: u64) -> CpuJob {
        CpuJob {
            task: TaskId::new(t),
            host: HostId::new(0),
            release: Tick::new(release),
            exec,
            deadline: Tick::new(deadline),
        }
    }

    #[test]
    fn feasible_set_passes() {
        let jobs = [job(0, 0, 2, 4), job(1, 0, 2, 8), job(2, 4, 2, 8)];
        processor_demand_check(&jobs).unwrap();
        assert!(simulate_edf(&jobs).feasible());
    }

    #[test]
    fn overloaded_interval_is_witnessed() {
        let jobs = [job(0, 0, 3, 4), job(1, 0, 3, 4)];
        let err = processor_demand_check(&jobs).unwrap_err();
        assert_eq!(err, DemandOverflow { from: 0, to: 4, demand: 6 });
        assert!(!simulate_edf(&jobs).feasible());
    }

    #[test]
    fn empty_set_is_feasible() {
        processor_demand_check(&[]).unwrap();
    }

    #[test]
    fn demand_only_counts_contained_jobs() {
        // A long-deadline job overlapping the interval does not count.
        let jobs = [job(0, 0, 4, 4), job(1, 0, 100, 200)];
        processor_demand_check(&jobs).unwrap();
        assert!(simulate_edf(&jobs).feasible());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]
        /// EDF optimality: the constructive simulation and the analytical
        /// criterion agree on feasibility for every job set.
        #[test]
        fn demand_criterion_matches_edf_simulation(
            raw in proptest::collection::vec((0u64..20, 1u64..6, 1u64..25), 1..9)
        ) {
            let jobs: Vec<CpuJob> = raw
                .iter()
                .enumerate()
                .map(|(i, &(r, e, d))| job(i as u32, r, e, r + d))
                .collect();
            let analytical = processor_demand_check(&jobs).is_ok();
            let constructive = simulate_edf(&jobs).feasible();
            prop_assert_eq!(analytical, constructive);
        }
    }
}
