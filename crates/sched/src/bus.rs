//! Non-preemptive broadcast scheduling on the shared bus.
//!
//! Once a replication finishes on its CPU, its outputs are broadcast to all
//! hosts; the broadcast occupies the single shared medium for the
//! replication's WCTT and must complete by the task's write time. Work-
//! conserving non-preemptive EDF dispatch is used: whenever the bus frees
//! up, the ready broadcast with the earliest deadline is sent. This is a
//! *sufficient* feasibility test (non-preemptive EDF is not optimal with
//! arbitrary release times), which errs on the safe side: a schedule it
//! produces is always valid.

use crate::error::MissedDeadline;
use crate::schedule::BusSlot;
use logrel_core::{HostId, TaskId, Tick};

/// A broadcast job on the shared bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BusJob {
    /// The broadcasting task.
    pub task: TaskId,
    /// The host that executed the replication.
    pub host: HostId,
    /// Earliest start (the replication's CPU completion).
    pub ready: Tick,
    /// Transmission duration (WCTT); zero-duration jobs are emitted as
    /// empty slots and always meet their deadline if `ready <= deadline`.
    pub duration: u64,
    /// Absolute deadline (the task's write time).
    pub deadline: Tick,
}

/// Result of scheduling the bus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BusOutcome {
    /// Chronological bus slots, one per job, indexed like the input.
    pub slots: Vec<BusSlot>,
    /// Completion instant per input job.
    pub completions: Vec<Tick>,
    /// Indices of jobs completing after their deadline.
    pub misses: Vec<usize>,
}

impl BusOutcome {
    /// `true` if every broadcast met its deadline.
    pub fn feasible(&self) -> bool {
        self.misses.is_empty()
    }
}

/// Schedules the given broadcasts with work-conserving non-preemptive EDF.
pub fn schedule_bus(jobs: &[BusJob]) -> BusOutcome {
    let n = jobs.len();
    let mut done = vec![false; n];
    let mut completions = vec![Tick::ZERO; n];
    let mut slots_by_job: Vec<Option<BusSlot>> = vec![None; n];
    let mut now = jobs.iter().map(|j| j.ready).min().unwrap_or(Tick::ZERO);
    let mut pending = n;

    while pending > 0 {
        let ready = (0..n)
            .filter(|&i| !done[i] && jobs[i].ready <= now)
            .min_by_key(|&i| (jobs[i].deadline, i));
        let Some(i) = ready else {
            now = jobs
                .iter()
                .enumerate()
                .filter(|(k, _)| !done[*k])
                .map(|(_, j)| j.ready)
                .min()
                .expect("pending jobs exist");
            continue;
        };
        let start = now;
        let end = start + jobs[i].duration;
        slots_by_job[i] = Some(BusSlot {
            task: jobs[i].task,
            host: jobs[i].host,
            start,
            end,
        });
        completions[i] = end;
        done[i] = true;
        pending -= 1;
        now = end;
    }

    let mut slots: Vec<BusSlot> = slots_by_job.into_iter().flatten().collect();
    slots.sort_by_key(|s| (s.start, s.end, s.task, s.host));
    let misses = (0..n)
        .filter(|&i| completions[i] > jobs[i].deadline)
        .collect();
    BusOutcome {
        slots,
        completions,
        misses,
    }
}

/// Exact non-preemptive bus feasibility by branch-and-bound over
/// transmission orders.
///
/// Work-conserving non-preemptive EDF ([`schedule_bus`]) is only a
/// *sufficient* test: it can be beaten by schedules that leave the bus
/// idle while a tight job is about to become ready. This search tries all
/// orders (with pruning) and inserted idle time, so it is exact — and
/// exponential, intended for the per-round job counts of real systems
/// (tens of broadcasts).
///
/// Returns the slots of a feasible order, or `None` if none exists.
pub fn schedule_bus_exact(jobs: &[BusJob]) -> Option<Vec<BusSlot>> {
    let n = jobs.len();
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut used = vec![false; n];
    let mut slots: Vec<BusSlot> = Vec::with_capacity(n);

    fn dfs(
        jobs: &[BusJob],
        used: &mut [bool],
        order: &mut Vec<usize>,
        slots: &mut Vec<BusSlot>,
        now: Tick,
    ) -> bool {
        if order.len() == jobs.len() {
            return true;
        }
        // Prune: if some unscheduled job already cannot meet its deadline
        // even if sent immediately, fail fast.
        for (i, j) in jobs.iter().enumerate() {
            if !used[i] && now.max(j.ready) + j.duration > j.deadline {
                return false;
            }
        }
        // Candidates sorted by deadline (EDF ordering first explores the
        // most promising branches).
        let mut candidates: Vec<usize> = (0..jobs.len()).filter(|&i| !used[i]).collect();
        candidates.sort_by_key(|&i| (jobs[i].deadline, jobs[i].ready));
        for &i in &candidates {
            let start = now.max(jobs[i].ready);
            let end = start + jobs[i].duration;
            if end > jobs[i].deadline {
                continue;
            }
            used[i] = true;
            order.push(i);
            slots.push(BusSlot {
                task: jobs[i].task,
                host: jobs[i].host,
                start,
                end,
            });
            if dfs(jobs, used, order, slots, end) {
                return true;
            }
            slots.pop();
            order.pop();
            used[i] = false;
        }
        false
    }

    let start = jobs.iter().map(|j| j.ready).min().unwrap_or(Tick::ZERO);
    if dfs(jobs, &mut used, &mut order, &mut slots, start) {
        Some(slots)
    } else {
        None
    }
}

/// Converts bus misses into [`MissedDeadline`] diagnostics.
pub fn miss_diagnostics(
    jobs: &[BusJob],
    outcome: &BusOutcome,
    task_name: impl Fn(TaskId) -> String,
    host_name: impl Fn(HostId) -> String,
) -> Vec<MissedDeadline> {
    outcome
        .misses
        .iter()
        .map(|&i| MissedDeadline {
            task: task_name(jobs[i].task),
            host: host_name(jobs[i].host),
            release: jobs[i].ready.as_u64(),
            deadline: jobs[i].deadline.as_u64(),
            completion: Some(outcome.completions[i].as_u64()),
            on_bus: true,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn job(t: u32, ready: u64, duration: u64, deadline: u64) -> BusJob {
        BusJob {
            task: TaskId::new(t),
            host: HostId::new(0),
            ready: Tick::new(ready),
            duration,
            deadline: Tick::new(deadline),
        }
    }

    #[test]
    fn single_broadcast() {
        let out = schedule_bus(&[job(0, 5, 2, 10)]);
        assert!(out.feasible());
        assert_eq!(out.completions, vec![Tick::new(7)]);
    }

    #[test]
    fn earliest_deadline_goes_first() {
        let out = schedule_bus(&[job(0, 0, 3, 20), job(1, 0, 3, 5)]);
        assert!(out.feasible());
        assert_eq!(out.completions[1], Tick::new(3));
        assert_eq!(out.completions[0], Tick::new(6));
    }

    #[test]
    fn no_preemption_once_started() {
        // Job 0 starts at 0 (only ready job); job 1 becomes ready at 1 with
        // a tighter deadline but must wait.
        let out = schedule_bus(&[job(0, 0, 5, 20), job(1, 1, 1, 6)]);
        assert_eq!(out.completions[0], Tick::new(5));
        assert_eq!(out.completions[1], Tick::new(6));
        assert!(out.feasible());
    }

    #[test]
    fn contention_miss_is_reported() {
        let jobs = [job(0, 0, 5, 5), job(1, 0, 5, 6)];
        let out = schedule_bus(&jobs);
        assert!(!out.feasible());
        assert_eq!(out.misses, vec![1]);
        let d = miss_diagnostics(&jobs, &out, |t| t.to_string(), |h| h.to_string());
        assert!(d[0].on_bus);
    }

    #[test]
    fn zero_duration_broadcast() {
        let out = schedule_bus(&[job(0, 4, 0, 4)]);
        assert!(out.feasible());
        assert_eq!(out.completions[0], Tick::new(4));
    }

    #[test]
    fn empty_bus() {
        let out = schedule_bus(&[]);
        assert!(out.feasible());
        assert!(out.slots.is_empty());
    }

    #[test]
    fn exact_search_beats_greedy_by_inserting_idle_time() {
        // A (ready 0, dur 4, deadline 10) and B (ready 1, dur 2, deadline
        // 3): work-conserving EDF must start A at 0 and B misses; the
        // exact search idles until 1, sends B, then A.
        let jobs = [job(0, 0, 4, 10), job(1, 1, 2, 3)];
        let greedy = schedule_bus(&jobs);
        assert!(!greedy.feasible(), "greedy must fail here");
        let exact = schedule_bus_exact(&jobs).expect("an order exists");
        assert_eq!(exact[0].task, TaskId::new(1));
        assert_eq!(exact[0].start, Tick::new(1));
        assert_eq!(exact[1].start, Tick::new(3));
        assert_eq!(exact[1].end, Tick::new(7));
    }

    #[test]
    fn exact_search_reports_infeasible_sets() {
        let jobs = [job(0, 0, 5, 5), job(1, 0, 5, 6)];
        assert!(schedule_bus_exact(&jobs).is_none());
        assert!(schedule_bus_exact(&[]).is_some());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]
        #[test]
        fn greedy_feasible_implies_exact_feasible(
            raw in proptest::collection::vec((0u64..15, 0u64..4, 1u64..20), 1..7)
        ) {
            let jobs: Vec<BusJob> = raw
                .iter()
                .enumerate()
                .map(|(i, &(r, dur, d))| job(i as u32, r, dur, r + d))
                .collect();
            let greedy = schedule_bus(&jobs);
            let exact = schedule_bus_exact(&jobs);
            if greedy.feasible() {
                prop_assert!(exact.is_some(), "exact must cover greedy");
            }
            if let Some(slots) = exact {
                // The exact schedule is itself valid: ordered, within
                // ready/deadline windows.
                let mut sorted = slots.clone();
                sorted.sort_by_key(|s| s.start);
                for w in sorted.windows(2) {
                    prop_assert!(w[0].end <= w[1].start);
                }
                for s in &slots {
                    let j = jobs.iter().find(|j| j.task == s.task).expect("job");
                    prop_assert!(s.start >= j.ready);
                    prop_assert!(s.end <= j.deadline);
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]
        #[test]
        fn bus_slots_never_overlap(
            raw in proptest::collection::vec((0u64..20, 0u64..4, 1u64..30), 1..8)
        ) {
            let jobs: Vec<BusJob> = raw
                .iter()
                .enumerate()
                .map(|(i, &(r, dur, d))| job(i as u32, r, dur, r + d))
                .collect();
            let out = schedule_bus(&jobs);
            for w in out.slots.windows(2) {
                prop_assert!(w[0].end <= w[1].start);
            }
            for (i, j) in jobs.iter().enumerate() {
                prop_assert!(out.completions[i] >= j.ready + j.duration);
            }
        }
    }
}
