//! The abstract syntax tree.

use crate::token::Span;

/// A literal value in the source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Literal {
    /// An integer literal.
    Int(i64),
    /// A float literal.
    Float(f64),
    /// A boolean literal.
    Bool(bool),
}

/// A payload type annotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TypeName {
    /// `float`
    Float,
    /// `int`
    Int,
    /// `bool`
    Bool,
}

/// A communicator declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct CommDecl {
    /// The communicator's name.
    pub name: String,
    /// Its payload type.
    pub ty: TypeName,
    /// Its accessibility period, in ticks.
    pub period: u64,
    /// Optional initial value.
    pub init: Option<Literal>,
    /// Optional logical reliability constraint.
    pub lrc: Option<f64>,
    /// `true` if updated by the environment through sensors.
    pub sensor: bool,
    /// Source position.
    pub span: Span,
}

/// A failure-model annotation on an invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelName {
    /// `series`
    Series,
    /// `parallel`
    Parallel,
    /// `independent`
    Independent,
}

/// A communicator-instance access `name[instance]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Access {
    /// The accessed communicator's name.
    pub comm: String,
    /// The instance number.
    pub instance: u64,
    /// Source position.
    pub span: Span,
}

/// A task invocation inside a mode.
#[derive(Debug, Clone, PartialEq)]
pub struct Invocation {
    /// The task's name.
    pub task: String,
    /// The input failure model (defaults to series).
    pub model: ModelName,
    /// Input accesses.
    pub reads: Vec<Access>,
    /// Output accesses.
    pub writes: Vec<Access>,
    /// Default values (positional with `reads`).
    pub defaults: Vec<Literal>,
    /// Source position.
    pub span: Span,
}

/// A mode switch `switch event -> target;`.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchDecl {
    /// The triggering event's name.
    pub event: String,
    /// The target mode's name.
    pub target: String,
    /// Source position.
    pub span: Span,
}

/// A mode: a period, task invocations and mode switches.
#[derive(Debug, Clone, PartialEq)]
pub struct Mode {
    /// The mode's name.
    pub name: String,
    /// `true` if declared as the module's start mode.
    pub start: bool,
    /// The mode period.
    pub period: u64,
    /// Task invocations.
    pub invocations: Vec<Invocation>,
    /// Mode switches.
    pub switches: Vec<SwitchDecl>,
    /// Source position.
    pub span: Span,
}

/// A module: a set of alternative modes.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// The module's name.
    pub name: String,
    /// The modes, in declaration order.
    pub modes: Vec<Mode>,
    /// Source position.
    pub span: Span,
}

/// One architecture-block item.
#[derive(Debug, Clone, PartialEq)]
pub enum ArchItem {
    /// `host name reliability r;`
    Host {
        /// The host's name.
        name: String,
        /// Its reliability.
        reliability: f64,
        /// Source position.
        span: Span,
    },
    /// `sensor name reliability r;`
    Sensor {
        /// The sensor's name.
        name: String,
        /// Its reliability.
        reliability: f64,
        /// Source position.
        span: Span,
    },
    /// `broadcast reliability r;`
    Broadcast {
        /// The broadcast reliability.
        reliability: f64,
        /// Source position.
        span: Span,
    },
    /// `wcet task on host ticks;`
    Wcet {
        /// The task's name.
        task: String,
        /// The host's name.
        host: String,
        /// The WCET in ticks.
        ticks: u64,
        /// Source position.
        span: Span,
    },
    /// `wctt task on host ticks;`
    Wctt {
        /// The task's name.
        task: String,
        /// The host's name.
        host: String,
        /// The WCTT in ticks.
        ticks: u64,
        /// Source position.
        span: Span,
    },
}

/// One mapping-block item.
#[derive(Debug, Clone, PartialEq)]
pub enum MapItem {
    /// `task -> h1, h2;`
    Assign {
        /// The task's name.
        task: String,
        /// The hosts' names.
        hosts: Vec<String>,
        /// Source position.
        span: Span,
    },
    /// `bind comm -> s1, s2;`
    Bind {
        /// The input communicator's name.
        comm: String,
        /// The sensors' names.
        sensors: Vec<String>,
        /// Source position.
        span: Span,
    },
}

/// A declared refinement between two programs of a source file:
/// `refinement <refining> refines <refined> { t' -> t; … }`. An empty
/// mapping block means κ is taken by task name.
#[derive(Debug, Clone, PartialEq)]
pub struct RefinementDecl {
    /// The refining (more concrete) program's name.
    pub refining: String,
    /// The refined (more abstract) program's name.
    pub refined: String,
    /// Explicit task pairs `(refining task, refined task)`; empty = match
    /// by name.
    pub map: Vec<(String, String)>,
    /// Source position.
    pub span: Span,
}

/// A source file: one or more programs plus declared refinements between
/// them.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceFile {
    /// The programs, in declaration order.
    pub programs: Vec<Program>,
    /// The refinement declarations, in declaration order.
    pub refinements: Vec<RefinementDecl>,
}

/// A complete program.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// The program's name.
    pub name: String,
    /// Communicator declarations.
    pub communicators: Vec<CommDecl>,
    /// Modules.
    pub modules: Vec<Module>,
    /// Architecture items (in declaration order).
    pub arch: Vec<ArchItem>,
    /// Mapping items (in declaration order).
    pub map: Vec<MapItem>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ast_nodes_are_comparable() {
        let a = Access {
            comm: "c".into(),
            instance: 1,
            span: Span::default(),
        };
        assert_eq!(a, a.clone());
        let lit = Literal::Float(0.5);
        assert_eq!(lit, Literal::Float(0.5));
        assert_ne!(Literal::Int(1), Literal::Int(2));
    }
}
