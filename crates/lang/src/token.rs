//! Tokens and source positions.

use std::fmt;

/// A position in the source text (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Span {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Keywords of the language.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Keyword {
    /// `program`
    Program,
    /// `communicator`
    Communicator,
    /// `module`
    Module,
    /// `mode`
    Mode,
    /// `start`
    Start,
    /// `period`
    Period,
    /// `init`
    Init,
    /// `lrc`
    Lrc,
    /// `sensor`
    Sensor,
    /// `invoke`
    Invoke,
    /// `model`
    Model,
    /// `series`
    Series,
    /// `parallel`
    Parallel,
    /// `independent`
    Independent,
    /// `reads`
    Reads,
    /// `writes`
    Writes,
    /// `defaults`
    Defaults,
    /// `switch`
    Switch,
    /// `architecture`
    Architecture,
    /// `host`
    Host,
    /// `reliability`
    Reliability,
    /// `broadcast`
    Broadcast,
    /// `wcet`
    Wcet,
    /// `wctt`
    Wctt,
    /// `on`
    On,
    /// `map`
    Map,
    /// `bind`
    Bind,
    /// `refines`
    Refines,
    /// `float`
    Float,
    /// `int`
    Int,
    /// `bool`
    Bool,
    /// `true`
    True,
    /// `false`
    False,
}

impl Keyword {
    /// Looks up a keyword by its spelling.
    pub fn lookup(s: &str) -> Option<Keyword> {
        Some(match s {
            "program" => Keyword::Program,
            "communicator" => Keyword::Communicator,
            "module" => Keyword::Module,
            "mode" => Keyword::Mode,
            "start" => Keyword::Start,
            "period" => Keyword::Period,
            "init" => Keyword::Init,
            "lrc" => Keyword::Lrc,
            "sensor" => Keyword::Sensor,
            "invoke" => Keyword::Invoke,
            "model" => Keyword::Model,
            "series" => Keyword::Series,
            "parallel" => Keyword::Parallel,
            "independent" => Keyword::Independent,
            "reads" => Keyword::Reads,
            "writes" => Keyword::Writes,
            "defaults" => Keyword::Defaults,
            "switch" => Keyword::Switch,
            "architecture" => Keyword::Architecture,
            "host" => Keyword::Host,
            "reliability" => Keyword::Reliability,
            "broadcast" => Keyword::Broadcast,
            "wcet" => Keyword::Wcet,
            "wctt" => Keyword::Wctt,
            "on" => Keyword::On,
            "map" => Keyword::Map,
            "bind" => Keyword::Bind,
            "refines" => Keyword::Refines,
            "float" => Keyword::Float,
            "int" => Keyword::Int,
            "bool" => Keyword::Bool,
            "true" => Keyword::True,
            "false" => Keyword::False,
            _ => return None,
        })
    }

    /// The keyword's spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Keyword::Program => "program",
            Keyword::Communicator => "communicator",
            Keyword::Module => "module",
            Keyword::Mode => "mode",
            Keyword::Start => "start",
            Keyword::Period => "period",
            Keyword::Init => "init",
            Keyword::Lrc => "lrc",
            Keyword::Sensor => "sensor",
            Keyword::Invoke => "invoke",
            Keyword::Model => "model",
            Keyword::Series => "series",
            Keyword::Parallel => "parallel",
            Keyword::Independent => "independent",
            Keyword::Reads => "reads",
            Keyword::Writes => "writes",
            Keyword::Defaults => "defaults",
            Keyword::Switch => "switch",
            Keyword::Architecture => "architecture",
            Keyword::Host => "host",
            Keyword::Reliability => "reliability",
            Keyword::Broadcast => "broadcast",
            Keyword::Wcet => "wcet",
            Keyword::Wctt => "wctt",
            Keyword::On => "on",
            Keyword::Map => "map",
            Keyword::Bind => "bind",
            Keyword::Refines => "refines",
            Keyword::Float => "float",
            Keyword::Int => "int",
            Keyword::Bool => "bool",
            Keyword::True => "true",
            Keyword::False => "false",
        }
    }
}

/// A lexical token. Identifiers borrow their spelling from the source
/// text, so tokens are `Copy` and lexing allocates nothing per token.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Token<'a> {
    /// A keyword.
    Keyword(Keyword),
    /// An identifier.
    Ident(&'a str),
    /// An integer literal (possibly negative).
    Int(i64),
    /// A floating-point literal (contains `.`, `e` or `E`).
    Float(f64),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `:`
    Colon,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `->`
    Arrow,
    /// End of input.
    Eof,
}

impl fmt::Display for Token<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Keyword(k) => write!(f, "`{}`", k.as_str()),
            Token::Ident(s) => write!(f, "identifier `{s}`"),
            Token::Int(v) => write!(f, "integer `{v}`"),
            Token::Float(v) => write!(f, "float `{v}`"),
            Token::LBrace => write!(f, "`{{`"),
            Token::RBrace => write!(f, "`}}`"),
            Token::LBracket => write!(f, "`[`"),
            Token::RBracket => write!(f, "`]`"),
            Token::Colon => write!(f, "`:`"),
            Token::Semi => write!(f, "`;`"),
            Token::Comma => write!(f, "`,`"),
            Token::Arrow => write!(f, "`->`"),
            Token::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpannedToken<'a> {
    /// The token.
    pub token: Token<'a>,
    /// Where it starts.
    pub span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_roundtrip() {
        for kw in [
            Keyword::Program,
            Keyword::Communicator,
            Keyword::Module,
            Keyword::Mode,
            Keyword::Start,
            Keyword::Period,
            Keyword::Init,
            Keyword::Lrc,
            Keyword::Sensor,
            Keyword::Invoke,
            Keyword::Model,
            Keyword::Series,
            Keyword::Parallel,
            Keyword::Independent,
            Keyword::Reads,
            Keyword::Writes,
            Keyword::Defaults,
            Keyword::Switch,
            Keyword::Architecture,
            Keyword::Host,
            Keyword::Reliability,
            Keyword::Broadcast,
            Keyword::Wcet,
            Keyword::Wctt,
            Keyword::On,
            Keyword::Map,
            Keyword::Bind,
            Keyword::Refines,
            Keyword::Float,
            Keyword::Int,
            Keyword::Bool,
            Keyword::True,
            Keyword::False,
        ] {
            assert_eq!(Keyword::lookup(kw.as_str()), Some(kw));
        }
        assert_eq!(Keyword::lookup("task"), None);
    }

    #[test]
    fn token_display() {
        assert_eq!(Token::Arrow.to_string(), "`->`");
        assert_eq!(Token::Ident("x").to_string(), "identifier `x`");
        assert_eq!(Token::Keyword(Keyword::Mode).to_string(), "`mode`");
    }

    #[test]
    fn span_display() {
        assert_eq!(Span { line: 3, col: 7 }.to_string(), "3:7");
    }
}
