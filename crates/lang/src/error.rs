//! Diagnostics of the language front-end.

use crate::token::Span;
use logrel_core::CoreError;
use std::error::Error;
use std::fmt;

/// Errors of the lexer, parser and elaborator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LangError {
    /// A lexical error (unexpected character, malformed number).
    Lex {
        /// Explanation.
        message: String,
        /// Position of the offending character.
        span: Span,
    },
    /// A syntax error.
    Parse {
        /// What the parser expected.
        expected: String,
        /// What it found (rendered token).
        found: String,
        /// Position of the offending token.
        span: Span,
    },
    /// A semantic error during elaboration (unknown name, duplicate,
    /// inconsistent modes, …).
    Resolve {
        /// Explanation.
        message: String,
        /// Position of the offending construct.
        span: Span,
    },
    /// A core-model validation error surfaced while building the
    /// specification / architecture / implementation.
    Core(CoreError),
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Lex { message, span } => write!(f, "{span}: lexical error: {message}"),
            LangError::Parse {
                expected,
                found,
                span,
            } => write!(f, "{span}: expected {expected}, found {found}"),
            LangError::Resolve { message, span } => write!(f, "{span}: {message}"),
            LangError::Core(e) => write!(f, "{e}"),
        }
    }
}

impl Error for LangError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LangError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for LangError {
    fn from(e: CoreError) -> Self {
        LangError::Core(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_include_positions() {
        let span = Span { line: 2, col: 5 };
        let e = LangError::Parse {
            expected: "`;`".into(),
            found: "`}`".into(),
            span,
        };
        assert!(e.to_string().starts_with("2:5"));
        let l = LangError::Lex {
            message: "bad char".into(),
            span,
        };
        assert!(l.to_string().contains("lexical"));
        let r = LangError::Resolve {
            message: "unknown task".into(),
            span,
        };
        assert!(r.to_string().contains("unknown task"));
        let c: LangError = CoreError::ZeroPeriod.into();
        assert!(c.source().is_some());
        assert!(e.source().is_none());
    }
}
