//! Name resolution and flattening into the core model.
//!
//! Flattening picks the *start mode* of every module (the mode marked
//! `start`, or the first one) and turns its invocations into core task
//! declarations. Mode switches are checked per the paper's §4 observation:
//! the analysis of one mode carries over to the others only when "the
//! switch is always to tasks with identical reliability constraints" —
//! concretely, every mode of a module must write exactly the same set of
//! communicators (hence the same LRCs), and switch targets must exist.

use crate::ast::*;
use crate::error::LangError;
use crate::token::Span;
use logrel_core::{
    Architecture, CommunicatorDecl, FailureModel, Implementation, Reliability, Specification,
    TaskDecl, Value, ValueType,
};
use std::collections::{BTreeMap, BTreeSet};

/// The result of elaborating a program: the three core-model components.
#[derive(Debug, Clone)]
pub struct ElaboratedSystem {
    /// The program's name.
    pub name: String,
    /// The flattened specification (start modes only).
    pub spec: Specification,
    /// The declared architecture.
    pub arch: Architecture,
    /// The declared replication mapping and sensor bindings.
    pub imp: Implementation,
}

/// One elaborated mode of a single-module program.
#[derive(Debug, Clone)]
pub struct ElaboratedMode {
    /// The mode's name.
    pub name: String,
    /// The mode's flattened specification.
    pub spec: Specification,
    /// The mode's replication mapping.
    pub imp: Implementation,
}

/// All modes of a single-module program, with its switch table — the input
/// of modal E-code generation.
#[derive(Debug, Clone)]
pub struct ElaboratedModes {
    /// The program's name.
    pub name: String,
    /// The shared architecture.
    pub arch: Architecture,
    /// One entry per mode, in declaration order.
    pub modes: Vec<ElaboratedMode>,
    /// Switches: (source mode index, event name, target mode index).
    pub switches: Vec<(usize, String, usize)>,
    /// Index of the start mode.
    pub start: usize,
}

/// Elaborates *every* mode of a program's single module, for modal
/// execution. The program must declare exactly one module; each mode is
/// elaborated as if it were the start mode (so each gets its own
/// specification and mapping over the shared communicators and
/// architecture).
///
/// # Errors
///
/// [`LangError::Resolve`] if the program does not have exactly one module,
/// plus any error of [`elaborate`] for the per-mode systems.
pub fn elaborate_modes(program: &Program) -> Result<ElaboratedModes, LangError> {
    let [module] = program.modules.as_slice() else {
        let span = program
            .modules
            .first()
            .map(|m| m.span)
            .unwrap_or_default();
        return Err(resolve_err(
            format!(
                "modal elaboration requires exactly one module, found {}",
                program.modules.len()
            ),
            span,
        ));
    };
    let mut modes = Vec::with_capacity(module.modes.len());
    let mut start = 0usize;
    for (k, mode) in module.modes.iter().enumerate() {
        if mode.start {
            start = k;
        }
        // Re-elaborate with this mode forced as the start mode.
        let mut variant = program.clone();
        for m in &mut variant.modules[0].modes {
            m.start = false;
        }
        variant.modules[0].modes[k].start = true;
        let sys = elaborate(&variant)?;
        modes.push(ElaboratedMode {
            name: mode.name.clone(),
            spec: sys.spec,
            imp: sys.imp,
        });
    }
    let mut switches = Vec::new();
    for (k, mode) in module.modes.iter().enumerate() {
        for sw in &mode.switches {
            let target = module
                .modes
                .iter()
                .position(|m| m.name == sw.target)
                .ok_or_else(|| {
                    resolve_err(
                        format!(
                            "switch target `{}` is not a mode of module `{}`",
                            sw.target, module.name
                        ),
                        sw.span,
                    )
                })?;
            switches.push((k, sw.event.clone(), target));
        }
    }
    // The shared architecture comes from the start mode's elaboration; all
    // variants declare the same hosts/sensors.
    let arch = elaborate(program)?.arch;
    Ok(ElaboratedModes {
        name: program.name.clone(),
        arch,
        modes,
        switches,
        start,
    })
}

fn resolve_err(message: impl Into<String>, span: Span) -> LangError {
    LangError::Resolve {
        message: message.into(),
        span,
    }
}

fn type_of(ty: TypeName) -> ValueType {
    match ty {
        TypeName::Float => ValueType::Float,
        TypeName::Int => ValueType::Int,
        TypeName::Bool => ValueType::Bool,
    }
}

fn model_of(m: ModelName) -> FailureModel {
    match m {
        ModelName::Series => FailureModel::Series,
        ModelName::Parallel => FailureModel::Parallel,
        ModelName::Independent => FailureModel::Independent,
    }
}

/// Converts a literal to a [`Value`], coercing integer literals to floats
/// where the target type requires it.
fn literal_to_value(lit: Literal, ty: ValueType, span: Span) -> Result<Value, LangError> {
    let v = match (lit, ty) {
        (Literal::Int(i), ValueType::Int) => Value::Int(i),
        (Literal::Int(i), ValueType::Float) => Value::Float(i as f64),
        (Literal::Float(x), ValueType::Float) => Value::Float(x),
        (Literal::Bool(b), ValueType::Bool) => Value::Bool(b),
        _ => {
            return Err(resolve_err(
                format!("literal {lit:?} does not fit type {ty}"),
                span,
            ))
        }
    };
    Ok(v)
}

/// A resolved refinement declaration: indices into
/// [`ElaboratedFile::systems`] plus the (possibly empty) explicit task
/// pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedRefinement {
    /// Index of the refining system.
    pub refining: usize,
    /// Index of the refined system.
    pub refined: usize,
    /// Explicit task pairs (refining name, refined name); empty = by name.
    pub pairs: Vec<(String, String)>,
}

/// An elaborated multi-program source file.
#[derive(Debug, Clone)]
pub struct ElaboratedFile {
    /// The elaborated systems, in declaration order.
    pub systems: Vec<ElaboratedSystem>,
    /// The resolved refinement declarations.
    pub refinements: Vec<ResolvedRefinement>,
}

/// Elaborates every program of a source file and resolves its refinement
/// declarations (name resolution only — the semantic refinement check
/// lives in `logrel-refine`).
///
/// # Errors
///
/// Any elaboration error of the contained programs, plus
/// [`LangError::Resolve`] for duplicate program names, unknown program
/// references or unknown task names in explicit κ pairs.
pub fn elaborate_file(file: &crate::ast::SourceFile) -> Result<ElaboratedFile, LangError> {
    let mut names: BTreeMap<&str, usize> = BTreeMap::new();
    for (i, p) in file.programs.iter().enumerate() {
        if names.insert(&p.name, i).is_some() {
            return Err(resolve_err(
                format!("duplicate program name `{}`", p.name),
                Span::default(),
            ));
        }
    }
    let systems = file
        .programs
        .iter()
        .map(elaborate)
        .collect::<Result<Vec<_>, _>>()?;
    let mut refinements = Vec::with_capacity(file.refinements.len());
    for decl in &file.refinements {
        let &refining = names.get(decl.refining.as_str()).ok_or_else(|| {
            resolve_err(format!("unknown program `{}`", decl.refining), decl.span)
        })?;
        let &refined = names.get(decl.refined.as_str()).ok_or_else(|| {
            resolve_err(format!("unknown program `{}`", decl.refined), decl.span)
        })?;
        for (from, to) in &decl.map {
            if systems[refining].spec.find_task(from).is_none() {
                return Err(resolve_err(
                    format!("unknown task `{from}` in program `{}`", decl.refining),
                    decl.span,
                ));
            }
            if systems[refined].spec.find_task(to).is_none() {
                return Err(resolve_err(
                    format!("unknown task `{to}` in program `{}`", decl.refined),
                    decl.span,
                ));
            }
        }
        refinements.push(ResolvedRefinement {
            refining,
            refined,
            pairs: decl.map.clone(),
        });
    }
    Ok(ElaboratedFile {
        systems,
        refinements,
    })
}

/// Elaborates a parsed program into the core model.
///
/// # Errors
///
/// * [`LangError::Resolve`] for unknown names, duplicate declarations,
///   empty modules, invalid mode switches, invocations exceeding the mode
///   period or reliability-incompatible modes;
/// * [`LangError::Core`] for core-model validation failures (race
///   conditions, missing metrics, …).
pub fn elaborate(program: &Program) -> Result<ElaboratedSystem, LangError> {
    // --- Communicators -------------------------------------------------
    let mut spec_builder = Specification::builder();
    let mut comm_ids = BTreeMap::new();
    for c in &program.communicators {
        let mut decl = CommunicatorDecl::new(c.name.clone(), type_of(c.ty), c.period)?;
        if let Some(init) = c.init {
            decl = decl.with_init(literal_to_value(init, type_of(c.ty), c.span)?)?;
        }
        if let Some(lrc) = c.lrc {
            decl = decl.with_lrc(Reliability::new(lrc)?);
        }
        if c.sensor {
            decl = decl.from_sensor();
        }
        let id = spec_builder.communicator(decl)?;
        comm_ids.insert(c.name.clone(), id);
    }

    // --- Modules: checks + flattening ----------------------------------
    let mut known_tasks: BTreeSet<&str> = BTreeSet::new();
    let mut flattened_tasks: BTreeMap<String, logrel_core::TaskId> = BTreeMap::new();
    for module in &program.modules {
        if module.modes.is_empty() {
            return Err(resolve_err(
                format!("module `{}` has no modes", module.name),
                module.span,
            ));
        }
        let mode_names: BTreeSet<&str> =
            module.modes.iter().map(|m| m.name.as_str()).collect();
        if mode_names.len() != module.modes.len() {
            return Err(resolve_err(
                format!("module `{}` has duplicate mode names", module.name),
                module.span,
            ));
        }
        let start_count = module.modes.iter().filter(|m| m.start).count();
        if start_count > 1 {
            return Err(resolve_err(
                format!("module `{}` has more than one start mode", module.name),
                module.span,
            ));
        }

        // Per-mode checks: known communicators, accesses within the mode
        // period, valid switch targets.
        let mut written_sets: Vec<(String, BTreeSet<&str>)> = Vec::new();
        for mode in &module.modes {
            let mut written = BTreeSet::new();
            for inv in &mode.invocations {
                known_tasks.insert(&inv.task);
                for a in inv.reads.iter().chain(&inv.writes) {
                    let Some(&cid) = comm_ids.get(&a.comm) else {
                        return Err(resolve_err(
                            format!("unknown communicator `{}`", a.comm),
                            a.span,
                        ));
                    };
                    let period = program.communicators[cid.index()].period;
                    let instant = period.saturating_mul(a.instance);
                    if instant > mode.period {
                        return Err(resolve_err(
                            format!(
                                "access `{}[{}]` at instant {instant} exceeds mode \
                                 period {}",
                                a.comm, a.instance, mode.period
                            ),
                            a.span,
                        ));
                    }
                }
                for a in &inv.writes {
                    written.insert(a.comm.as_str());
                }
            }
            for sw in &mode.switches {
                if !mode_names.contains(sw.target.as_str()) {
                    return Err(resolve_err(
                        format!(
                            "switch target `{}` is not a mode of module `{}`",
                            sw.target, module.name
                        ),
                        sw.span,
                    ));
                }
            }
            written_sets.push((mode.name.clone(), written));
        }

        // §4 mode-switch reliability compatibility: all modes must write
        // the same communicator set (hence identical LRCs).
        if let Some((first_name, first_set)) = written_sets.first() {
            for (name, set) in &written_sets[1..] {
                if set != first_set {
                    return Err(resolve_err(
                        format!(
                            "modes `{first_name}` and `{name}` of module `{}` write \
                             different communicators; mode switches require identical \
                             reliability constraints",
                            module.name
                        ),
                        module.span,
                    ));
                }
            }
        }

        // Flatten the start mode.
        let start_mode = module
            .modes
            .iter()
            .find(|m| m.start)
            .unwrap_or(&module.modes[0]);
        // Accesses were resolved in the per-mode check loop above, but a
        // lookup failure must stay a diagnostic, never a panic.
        let resolved = |a: &Access| {
            comm_ids.get(&a.comm).copied().ok_or_else(|| {
                resolve_err(format!("unknown communicator `{}`", a.comm), a.span)
            })
        };
        for inv in &start_mode.invocations {
            let mut td = TaskDecl::new(inv.task.clone()).model(model_of(inv.model));
            for a in &inv.reads {
                td = td.reads(resolved(a)?, a.instance);
            }
            for a in &inv.writes {
                td = td.writes(resolved(a)?, a.instance);
            }
            for (k, &lit) in inv.defaults.iter().enumerate() {
                let Some(access) = inv.reads.get(k) else {
                    return Err(resolve_err(
                        format!("more defaults than inputs for task `{}`", inv.task),
                        inv.span,
                    ));
                };
                let cid = resolved(access)?;
                let ty = type_of(program.communicators[cid.index()].ty);
                td = td.default_value(literal_to_value(lit, ty, inv.span)?);
            }
            let id = spec_builder.task(td)?;
            flattened_tasks.insert(inv.task.clone(), id);
        }
    }
    let spec = spec_builder.build()?;

    // --- Architecture ---------------------------------------------------
    let mut arch_builder = Architecture::builder();
    let mut host_ids = BTreeMap::new();
    let mut sensor_ids = BTreeMap::new();
    // Hosts and sensors first, metrics second (declaration order within
    // each group is preserved).
    for item in &program.arch {
        match item {
            ArchItem::Host {
                name,
                reliability,
                ..
            } => {
                let id = arch_builder
                    .host(logrel_core::HostDecl::new(name.clone(), Reliability::new(*reliability)?))?;
                host_ids.insert(name.clone(), id);
            }
            ArchItem::Sensor {
                name,
                reliability,
                ..
            } => {
                let id = arch_builder.sensor(logrel_core::SensorDecl::new(
                    name.clone(),
                    Reliability::new(*reliability)?,
                ))?;
                sensor_ids.insert(name.clone(), id);
            }
            ArchItem::Broadcast { reliability, .. } => {
                arch_builder.broadcast_reliability(Reliability::new(*reliability)?);
            }
            ArchItem::Wcet { .. } | ArchItem::Wctt { .. } => {}
        }
    }
    for item in &program.arch {
        let (task, host, ticks, span, is_wcet) = match item {
            ArchItem::Wcet {
                task,
                host,
                ticks,
                span,
            } => (task, host, *ticks, *span, true),
            ArchItem::Wctt {
                task,
                host,
                ticks,
                span,
            } => (task, host, *ticks, *span, false),
            _ => continue,
        };
        if !known_tasks.contains(task.as_str()) {
            return Err(resolve_err(format!("unknown task `{task}`"), span));
        }
        let Some(&hid) = host_ids.get(host) else {
            return Err(resolve_err(format!("unknown host `{host}`"), span));
        };
        // Metrics for tasks outside the flattened (start) modes are
        // accepted and ignored.
        if let Some(&tid) = flattened_tasks.get(task) {
            if is_wcet {
                arch_builder.wcet(tid, hid, ticks)?;
            } else {
                arch_builder.wctt(tid, hid, ticks)?;
            }
        }
    }
    let arch = arch_builder.build();

    // --- Mapping ---------------------------------------------------------
    let mut imp_builder = Implementation::builder();
    for item in &program.map {
        match item {
            MapItem::Assign { task, hosts, span } => {
                if !known_tasks.contains(task.as_str()) {
                    return Err(resolve_err(format!("unknown task `{task}`"), *span));
                }
                let Some(&tid) = flattened_tasks.get(task) else {
                    continue; // non-start-mode task
                };
                for h in hosts {
                    let Some(&hid) = host_ids.get(h) else {
                        return Err(resolve_err(format!("unknown host `{h}`"), *span));
                    };
                    imp_builder = imp_builder.assign(tid, [hid]);
                }
            }
            MapItem::Bind {
                comm,
                sensors,
                span,
            } => {
                let Some(&cid) = comm_ids.get(comm) else {
                    return Err(resolve_err(
                        format!("unknown communicator `{comm}`"),
                        *span,
                    ));
                };
                for s in sensors {
                    let Some(&sid) = sensor_ids.get(s) else {
                        return Err(resolve_err(format!("unknown sensor `{s}`"), *span));
                    };
                    imp_builder = imp_builder.bind_sensor(cid, sid);
                }
            }
        }
    }
    let imp = imp_builder.build(&spec, &arch)?;

    Ok(ElaboratedSystem {
        name: program.name.clone(),
        spec,
        arch,
        imp,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    const OK: &str = r#"
program demo {
    communicator s : float period 500 init 1.5 lrc 0.99 sensor;
    communicator l : float period 100;
    communicator u : float period 100 lrc 0.9;
    module control {
        start mode normal period 500 {
            invoke reader model parallel reads s[0] writes l[1] defaults 0.0;
            invoke ctrl reads l[1] writes u[3];
            switch overload -> degraded;
        }
        mode degraded period 500 {
            invoke reader2 model parallel reads s[0] writes l[1] defaults 0.0;
            invoke ctrl2 reads l[1] writes u[3];
        }
    }
    architecture {
        host h1 reliability 0.999;
        host h2 reliability 0.999;
        sensor sn reliability 0.999;
        wcet reader on h1 5;
        wcet reader on h2 5;
        wcet ctrl on h1 10;
        wctt reader on h1 2;
        wctt reader on h2 2;
        wctt ctrl on h1 2;
        wcet reader2 on h1 5;
        wctt reader2 on h1 2;
    }
    map {
        reader -> h1, h2;
        ctrl -> h1;
        reader2 -> h1;
        bind s -> sn;
    }
}
"#;

    fn compile(src: &str) -> Result<ElaboratedSystem, LangError> {
        elaborate(&parse(src).unwrap())
    }

    #[test]
    fn elaborates_the_demo() {
        let sys = compile(OK).unwrap();
        assert_eq!(sys.name, "demo");
        assert_eq!(sys.spec.task_count(), 2);
        assert_eq!(sys.spec.communicator_count(), 3);
        let reader = sys.spec.find_task("reader").unwrap();
        assert_eq!(sys.imp.hosts_of(reader).len(), 2);
        let s = sys.spec.find_communicator("s").unwrap();
        assert!(sys.spec.is_sensor_input(s));
        assert_eq!(sys.spec.communicator(s).init(), Value::Float(1.5));
        assert_eq!(
            sys.spec.communicator(s).lrc().unwrap(),
            Reliability::new(0.99).unwrap()
        );
        assert_eq!(sys.arch.host_count(), 2);
        let ctrl = sys.spec.find_task("ctrl").unwrap();
        assert_eq!(
            sys.spec.task(ctrl).failure_model(),
            FailureModel::Series
        );
        // Non-start-mode tasks are not flattened.
        assert!(sys.spec.find_task("reader2").is_none());
    }

    #[test]
    fn unknown_communicator_in_access() {
        let src = OK.replace("reads s[0]", "reads bogus[0]");
        let err = compile(&src).unwrap_err();
        assert!(err.to_string().contains("bogus"));
    }

    #[test]
    fn unknown_host_in_mapping() {
        let src = OK.replace("ctrl -> h1;", "ctrl -> h9;");
        let err = compile(&src).unwrap_err();
        assert!(err.to_string().contains("h9"));
    }

    #[test]
    fn unknown_task_in_wcet() {
        let src = OK.replace("wcet ctrl on h1 10;", "wcet ghost on h1 10;");
        let err = compile(&src).unwrap_err();
        assert!(err.to_string().contains("ghost"));
    }

    #[test]
    fn unknown_sensor_in_bind() {
        let src = OK.replace("bind s -> sn;", "bind s -> nos;");
        let err = compile(&src).unwrap_err();
        assert!(err.to_string().contains("nos"));
    }

    #[test]
    fn switch_target_must_exist() {
        let src = OK.replace("switch overload -> degraded;", "switch overload -> nowhere;");
        let err = compile(&src).unwrap_err();
        assert!(err.to_string().contains("nowhere"));
    }

    #[test]
    fn modes_must_write_identical_communicator_sets() {
        // Remove ctrl2's write of u from the degraded mode.
        let src = OK.replace(
            "invoke ctrl2 reads l[1] writes u[3];",
            "invoke ctrl2 reads l[1] writes l[2];",
        );
        let err = compile(&src).unwrap_err();
        assert!(err.to_string().contains("identical reliability"));
    }

    #[test]
    fn access_beyond_mode_period_rejected() {
        let src = OK.replace("writes u[3]", "writes u[6]"); // 600 > 500
        let err = compile(&src).unwrap_err();
        assert!(err.to_string().contains("exceeds mode period"));
    }

    #[test]
    fn duplicate_start_modes_rejected() {
        let src = OK.replace("mode degraded", "start mode degraded");
        let err = compile(&src).unwrap_err();
        assert!(err.to_string().contains("more than one start mode"));
    }

    #[test]
    fn empty_module_rejected() {
        let err = compile("program p { module m { } }").unwrap_err();
        assert!(err.to_string().contains("no modes"));
    }

    #[test]
    fn bad_lrc_value_is_a_core_error() {
        let src = OK.replace("lrc 0.99", "lrc 1.5");
        let err = compile(&src).unwrap_err();
        assert!(matches!(err, LangError::Core(_)));
    }

    #[test]
    fn int_literal_coerces_to_float_default() {
        let src = OK.replace("defaults 0.0", "defaults 0");
        let sys = compile(&src).unwrap();
        let reader = sys.spec.find_task("reader").unwrap();
        assert_eq!(sys.spec.task(reader).default_values(), &[Value::Float(0.0)]);
    }

    #[test]
    fn bool_literal_for_float_comm_rejected() {
        let src = OK.replace("defaults 0.0", "defaults true");
        let err = compile(&src).unwrap_err();
        assert!(err.to_string().contains("does not fit"));
    }

    /// A two-mode program with complete metrics and mappings for both.
    const MODAL: &str = r#"
program modal {
    communicator s : float period 10 sensor;
    communicator u : float period 10 lrc 0.9;
    module m {
        start mode normal period 10 {
            invoke fast reads s[0] writes u[1];
            switch overload -> degraded;
        }
        mode degraded period 10 {
            invoke slow reads s[0] writes u[1];
            switch recovered -> normal;
        }
    }
    architecture {
        host h1 reliability 0.999;
        sensor sn reliability 0.999;
        wcet fast on h1 2;
        wctt fast on h1 1;
        wcet slow on h1 4;
        wctt slow on h1 1;
    }
    map {
        fast -> h1;
        slow -> h1;
        bind s -> sn;
    }
}
"#;

    #[test]
    fn elaborate_modes_produces_one_system_per_mode() {
        let prog = parse(MODAL).unwrap();
        let modal = elaborate_modes(&prog).unwrap();
        assert_eq!(modal.name, "modal");
        assert_eq!(modal.modes.len(), 2);
        assert_eq!(modal.start, 0);
        assert_eq!(modal.modes[0].name, "normal");
        assert!(modal.modes[0].spec.find_task("fast").is_some());
        assert!(modal.modes[0].spec.find_task("slow").is_none());
        assert!(modal.modes[1].spec.find_task("slow").is_some());
        // Both modes share the round period and write the same set.
        assert_eq!(
            modal.modes[0].spec.round_period(),
            modal.modes[1].spec.round_period()
        );
        assert_eq!(
            modal.switches,
            vec![
                (0, "overload".to_owned(), 1),
                (1, "recovered".to_owned(), 0)
            ]
        );
        assert_eq!(modal.arch.host_count(), 1);
    }

    #[test]
    fn elaborate_modes_requires_one_module() {
        let two_modules = MODAL.replace(
            "module m {",
            "module extra { start mode e period 10 { invoke fast reads s[0] writes u[1]; } }\n    module m {",
        );
        // The duplicated write to u across modules fails spec validation
        // first; use a structurally clean variant instead.
        let _ = two_modules;
        let err = elaborate_modes(&parse("program p { module a { mode x period 5 { } } module b { mode y period 5 { } } }").unwrap())
            .unwrap_err();
        assert!(err.to_string().contains("exactly one module"));
        let err2 = elaborate_modes(&parse("program p { }").unwrap()).unwrap_err();
        assert!(err2.to_string().contains("exactly one module"));
    }

    #[test]
    fn first_mode_is_start_by_default() {
        let src = OK.replace("start mode normal", "mode normal");
        let sys = compile(&src).unwrap();
        assert!(sys.spec.find_task("reader").is_some());
        assert!(sys.spec.find_task("reader2").is_none());
    }
}
