//! A hand-written scanner.
//!
//! Supports `//` line comments, identifiers, keywords, unsigned integers,
//! signed floating-point literals (a number containing `.`, `e` or a
//! leading `-` lexes as a float) and the punctuation of the grammar.

use crate::error::LangError;
use crate::token::{Keyword, Span, SpannedToken, Token};

/// Scans `source` into a token stream terminated by [`Token::Eof`].
///
/// # Errors
///
/// Returns [`LangError::Lex`] for unexpected characters or malformed
/// numbers.
pub fn lex(source: &str) -> Result<Vec<SpannedToken>, LangError> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    let n = chars.len();
    while i < n {
        let c = chars[i];
        let span = Span { line, col };
        match c {
            '\n' => {
                line += 1;
                col = 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => {
                col += 1;
                i += 1;
            }
            '/' if i + 1 < n && chars[i + 1] == '/' => {
                while i < n && chars[i] != '\n' {
                    i += 1;
                }
            }
            '{' => {
                tokens.push(SpannedToken {
                    token: Token::LBrace,
                    span,
                });
                i += 1;
                col += 1;
            }
            '}' => {
                tokens.push(SpannedToken {
                    token: Token::RBrace,
                    span,
                });
                i += 1;
                col += 1;
            }
            '[' => {
                tokens.push(SpannedToken {
                    token: Token::LBracket,
                    span,
                });
                i += 1;
                col += 1;
            }
            ']' => {
                tokens.push(SpannedToken {
                    token: Token::RBracket,
                    span,
                });
                i += 1;
                col += 1;
            }
            ':' => {
                tokens.push(SpannedToken {
                    token: Token::Colon,
                    span,
                });
                i += 1;
                col += 1;
            }
            ';' => {
                tokens.push(SpannedToken {
                    token: Token::Semi,
                    span,
                });
                i += 1;
                col += 1;
            }
            ',' => {
                tokens.push(SpannedToken {
                    token: Token::Comma,
                    span,
                });
                i += 1;
                col += 1;
            }
            '-' => {
                if i + 1 < n && chars[i + 1] == '>' {
                    tokens.push(SpannedToken {
                        token: Token::Arrow,
                        span,
                    });
                    i += 2;
                    col += 2;
                } else if i + 1 < n && chars[i + 1].is_ascii_digit() {
                    let (token, len) = lex_number(&chars[i..], span)?;
                    tokens.push(SpannedToken { token, span });
                    i += len;
                    col += len as u32;
                } else {
                    return Err(LangError::Lex {
                        message: "expected `->` or a negative number after `-`".to_owned(),
                        span,
                    });
                }
            }
            c if c.is_ascii_digit() => {
                let (token, len) = lex_number(&chars[i..], span)?;
                tokens.push(SpannedToken { token, span });
                i += len;
                col += len as u32;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < n && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect();
                let len = (i - start) as u32;
                let token = match Keyword::lookup(&word) {
                    Some(kw) => Token::Keyword(kw),
                    None => Token::Ident(word),
                };
                tokens.push(SpannedToken { token, span });
                col += len;
            }
            other => {
                return Err(LangError::Lex {
                    message: format!("unexpected character `{other}`"),
                    span,
                });
            }
        }
    }
    tokens.push(SpannedToken {
        token: Token::Eof,
        span: Span { line, col },
    });
    Ok(tokens)
}

/// Lexes a number starting at `chars[0]` (which may be `-`). Returns the
/// token and the number of characters consumed.
fn lex_number(chars: &[char], span: Span) -> Result<(Token, usize), LangError> {
    let mut i = 0usize;
    if chars[0] == '-' {
        i = 1;
    }
    let mut is_float = false;
    while i < chars.len() {
        match chars[i] {
            c if c.is_ascii_digit() => i += 1,
            '.' | 'e' | 'E' => {
                is_float = true;
                i += 1;
                // allow an exponent sign
                if (chars[i - 1] == 'e' || chars[i - 1] == 'E')
                    && i < chars.len()
                    && (chars[i] == '+' || chars[i] == '-')
                {
                    i += 1;
                }
            }
            _ => break,
        }
    }
    let text: String = chars[..i].iter().collect();
    if is_float {
        text.parse::<f64>()
            .map(|v| (Token::Float(v), i))
            .map_err(|_| LangError::Lex {
                message: format!("malformed number `{text}`"),
                span,
            })
    } else {
        text.parse::<i64>()
            .map(|v| (Token::Int(v), i))
            .map_err(|_| LangError::Lex {
                message: format!("malformed number `{text}`"),
                span,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|t| t.token).collect()
    }

    #[test]
    fn punctuation_and_keywords() {
        assert_eq!(
            toks("mode m { } -> ; , : [ ]"),
            vec![
                Token::Keyword(Keyword::Mode),
                Token::Ident("m".into()),
                Token::LBrace,
                Token::RBrace,
                Token::Arrow,
                Token::Semi,
                Token::Comma,
                Token::Colon,
                Token::LBracket,
                Token::RBracket,
                Token::Eof,
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("42 0.99 -3.5 1e-3 -7"),
            vec![
                Token::Int(42),
                Token::Float(0.99),
                Token::Float(-3.5),
                Token::Float(1e-3),
                Token::Int(-7),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("a // comment with { } -> stuff\nb"),
            vec![
                Token::Ident("a".into()),
                Token::Ident("b".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn spans_track_lines_and_columns() {
        let ts = lex("ab\n  cd").unwrap();
        assert_eq!(ts[0].span, Span { line: 1, col: 1 });
        assert_eq!(ts[1].span, Span { line: 2, col: 3 });
    }

    #[test]
    fn unexpected_character_is_reported() {
        let err = lex("a $ b").unwrap_err();
        assert!(matches!(err, LangError::Lex { .. }));
        assert!(err.to_string().contains('$'));
    }

    #[test]
    fn lone_minus_is_an_error() {
        assert!(lex("- x").is_err());
    }

    #[test]
    fn underscored_identifiers() {
        assert_eq!(
            toks("_foo bar_2"),
            vec![
                Token::Ident("_foo".into()),
                Token::Ident("bar_2".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn keywords_are_not_identifiers() {
        assert_eq!(
            toks("sensor sensors"),
            vec![
                Token::Keyword(Keyword::Sensor),
                Token::Ident("sensors".into()),
                Token::Eof
            ]
        );
    }
}
