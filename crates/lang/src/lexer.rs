//! A hand-written scanner.
//!
//! Supports `//` line comments, identifiers, keywords, unsigned integers,
//! signed floating-point literals (a number containing `.`, `e` or a
//! leading `-` lexes as a float) and the punctuation of the grammar.

use crate::error::LangError;
use crate::token::{Keyword, Span, SpannedToken, Token};

/// Scans `source` into a token stream terminated by [`Token::Eof`].
///
/// # Errors
///
/// Returns [`LangError::Lex`] for unexpected characters or malformed
/// numbers.
pub fn lex(source: &str) -> Result<Vec<SpannedToken<'_>>, LangError> {
    // The grammar is pure ASCII, so the scanner runs over the raw bytes:
    // no up-front `Vec<char>` materialisation, and identifiers/numbers
    // slice the source directly instead of re-collecting characters.
    // Multi-byte UTF-8 can only appear inside `//` comments (skipped
    // wholesale) or as an unexpected-character error, where the full
    // character is decoded just for the message.
    let bytes = source.as_bytes();
    let n = bytes.len();
    let mut tokens = Vec::with_capacity(n / 4 + 1);
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    // Pushes a punctuation token at the current `span` (a macro, not a
    // closure: the borrowed-token lifetimes stay tied to `source`).
    macro_rules! punct {
        ($token:expr, $span:expr) => {
            tokens.push(SpannedToken { token: $token, span: $span })
        };
    }

    while i < n {
        let c = bytes[i];
        let span = Span { line, col };
        match c {
            b'\n' => {
                line += 1;
                col = 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => {
                col += 1;
                i += 1;
            }
            b'/' if i + 1 < n && bytes[i + 1] == b'/' => {
                while i < n && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'{' => {
                punct!(Token::LBrace, span);
                i += 1;
                col += 1;
            }
            b'}' => {
                punct!(Token::RBrace, span);
                i += 1;
                col += 1;
            }
            b'[' => {
                punct!(Token::LBracket, span);
                i += 1;
                col += 1;
            }
            b']' => {
                punct!(Token::RBracket, span);
                i += 1;
                col += 1;
            }
            b':' => {
                punct!(Token::Colon, span);
                i += 1;
                col += 1;
            }
            b';' => {
                punct!(Token::Semi, span);
                i += 1;
                col += 1;
            }
            b',' => {
                punct!(Token::Comma, span);
                i += 1;
                col += 1;
            }
            b'-' => {
                if i + 1 < n && bytes[i + 1] == b'>' {
                    punct!(Token::Arrow, span);
                    i += 2;
                    col += 2;
                } else if i + 1 < n && bytes[i + 1].is_ascii_digit() {
                    let (token, len) = lex_number(source, i, span)?;
                    tokens.push(SpannedToken { token, span });
                    i += len;
                    col += len as u32;
                } else {
                    return Err(LangError::Lex {
                        message: "expected `->` or a negative number after `-`".to_owned(),
                        span,
                    });
                }
            }
            c if c.is_ascii_digit() => {
                let (token, len) = lex_number(source, i, span)?;
                tokens.push(SpannedToken { token, span });
                i += len;
                col += len as u32;
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < n && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                let word = &source[start..i];
                let len = (i - start) as u32;
                let token = match Keyword::lookup(word) {
                    Some(kw) => Token::Keyword(kw),
                    None => Token::Ident(word),
                };
                tokens.push(SpannedToken { token, span });
                col += len;
            }
            _ => {
                let other = source[i..].chars().next().unwrap_or('\u{FFFD}');
                return Err(LangError::Lex {
                    message: format!("unexpected character `{other}`"),
                    span,
                });
            }
        }
    }
    tokens.push(SpannedToken {
        token: Token::Eof,
        span: Span { line, col },
    });
    Ok(tokens)
}

/// Lexes a number starting at byte `start` of `source` (which may be
/// `-`). Returns the token and the number of bytes consumed.
fn lex_number(source: &str, start: usize, span: Span) -> Result<(Token<'static>, usize), LangError> {
    let bytes = source.as_bytes();
    let mut i = start;
    if bytes[i] == b'-' {
        i += 1;
    }
    let mut is_float = false;
    while i < bytes.len() {
        match bytes[i] {
            c if c.is_ascii_digit() => i += 1,
            b'.' | b'e' | b'E' => {
                is_float = true;
                let marker = bytes[i];
                i += 1;
                // allow an exponent sign
                if (marker == b'e' || marker == b'E')
                    && i < bytes.len()
                    && (bytes[i] == b'+' || bytes[i] == b'-')
                {
                    i += 1;
                }
            }
            _ => break,
        }
    }
    let text = &source[start..i];
    let len = i - start;
    if is_float {
        text.parse::<f64>()
            .map(|v| (Token::Float(v), len))
            .map_err(|_| LangError::Lex {
                message: format!("malformed number `{text}`"),
                span,
            })
    } else {
        text.parse::<i64>()
            .map(|v| (Token::Int(v), len))
            .map_err(|_| LangError::Lex {
                message: format!("malformed number `{text}`"),
                span,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token<'_>> {
        lex(src).unwrap().into_iter().map(|t| t.token).collect()
    }

    #[test]
    fn punctuation_and_keywords() {
        assert_eq!(
            toks("mode m { } -> ; , : [ ]"),
            vec![
                Token::Keyword(Keyword::Mode),
                Token::Ident("m"),
                Token::LBrace,
                Token::RBrace,
                Token::Arrow,
                Token::Semi,
                Token::Comma,
                Token::Colon,
                Token::LBracket,
                Token::RBracket,
                Token::Eof,
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            toks("42 0.99 -3.5 1e-3 -7"),
            vec![
                Token::Int(42),
                Token::Float(0.99),
                Token::Float(-3.5),
                Token::Float(1e-3),
                Token::Int(-7),
                Token::Eof,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("a // comment with { } -> stuff\nb"),
            vec![
                Token::Ident("a"),
                Token::Ident("b"),
                Token::Eof
            ]
        );
    }

    #[test]
    fn spans_track_lines_and_columns() {
        let ts = lex("ab\n  cd").unwrap();
        assert_eq!(ts[0].span, Span { line: 1, col: 1 });
        assert_eq!(ts[1].span, Span { line: 2, col: 3 });
    }

    #[test]
    fn unexpected_character_is_reported() {
        let err = lex("a $ b").unwrap_err();
        assert!(matches!(err, LangError::Lex { .. }));
        assert!(err.to_string().contains('$'));
    }

    #[test]
    fn lone_minus_is_an_error() {
        assert!(lex("- x").is_err());
    }

    #[test]
    fn underscored_identifiers() {
        assert_eq!(
            toks("_foo bar_2"),
            vec![
                Token::Ident("_foo"),
                Token::Ident("bar_2"),
                Token::Eof
            ]
        );
    }

    #[test]
    fn keywords_are_not_identifiers() {
        assert_eq!(
            toks("sensor sensors"),
            vec![
                Token::Keyword(Keyword::Sensor),
                Token::Ident("sensors"),
                Token::Eof
            ]
        );
    }
}
