//! Content-hashed subspec units: the spec split into independently
//! hashable fragments for the incremental query layer.
//!
//! A program is decomposed into named **units** — per-module, per-task
//! metric rows, per-task host mappings, plus shared communicator /
//! architecture fragments. Each unit renders to a canonical, span-free
//! text (the same discipline as [`crate::printer`], whose output is
//! deterministic) and is hashed with FNV-1a 64 — the same hash family
//! `logrel-validate` uses for certificate digests. One extra `layout`
//! unit hashes the source *positions* of every item, so queries whose
//! results embed spans (diagnostics) are dirtied by edits that merely
//! move items. Queries key their dependency edges on these hashes: an
//! edit only dirties the units whose canonical text actually changed.
//!
//! Declaration order is **semantic** in HTL (instance numbering, mode
//! ordering, host precedence in `map` items), so unit texts preserve it;
//! units are never sorted before hashing.

use crate::ast::{ArchItem, Literal, MapItem, ModelName, Program, TypeName};
use crate::token::Span;
use std::fmt::Write;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Hashes `bytes` with FNV-1a 64 (the certificate-hash discipline from
/// `logrel-validate`).
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Streams formatted text straight into an FNV-1a 64 state: hashing a
/// canonical unit text without ever materialising the text. Writing the
/// same characters yields the same hash as [`fnv1a`] over the collected
/// string.
#[derive(Debug)]
pub struct FnvWriter {
    hash: u64,
    len: usize,
}

impl FnvWriter {
    /// A writer over the empty string.
    #[must_use]
    pub fn new() -> Self {
        Self { hash: FNV_OFFSET, len: 0 }
    }

    /// The hash of everything written so far.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.hash
    }

    /// `true` if nothing has been written (hashed text is empty).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Folds raw bytes into the state — for hashing binary material
    /// (other hashes, separators) without formatting it as text.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.len += bytes.len();
        let mut h = self.hash;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.hash = h;
    }
}

impl Default for FnvWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl Write for FnvWriter {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        self.len += s.len();
        let mut h = self.hash;
        for &b in s.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(FNV_PRIME);
        }
        self.hash = h;
        Ok(())
    }
}

/// One content-hashed fragment of a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubspecUnit {
    /// Stable unit name (`comms_core`, `module:<name>`, `metrics:<task>`,
    /// `map:<task>`, …).
    pub name: String,
    /// FNV-1a 64 hash of the canonical unit text.
    pub hash: u64,
}

impl SubspecUnit {
    /// Hashes the canonical text streamed by `write` under `name`.
    fn streamed(name: impl Into<String>, write: impl FnOnce(&mut FnvWriter)) -> Self {
        let mut w = FnvWriter::new();
        write(&mut w);
        Self { name: name.into(), hash: w.finish() }
    }
}

// The canonical unit texts below are *streamed* into the FNV state — the
// `write!` calls define the text without allocating it. Infallible
// writers make the results ignorable.

fn push_literal(out: &mut impl Write, lit: Literal) {
    let _ = match lit {
        Literal::Int(i) => write!(out, "{i}"),
        Literal::Float(x) => write!(out, "f{:016x}", x.to_bits()),
        Literal::Bool(b) => out.write_str(if b { "t" } else { "f" }),
    };
}

fn push_f64(out: &mut impl Write, x: f64) {
    // Bit-exact: two floats hash equal iff they are the same value.
    let _ = write!(out, "f{:016x}", x.to_bits());
}

/// Canonical text of the communicator *core*: everything except LRCs.
/// The SRG fixpoint never reads LRCs, so LRC edits must not dirty it.
fn comms_core_text(program: &Program, out: &mut impl Write) {
    for c in &program.communicators {
        let ty = match c.ty {
            TypeName::Float => "float",
            TypeName::Int => "int",
            TypeName::Bool => "bool",
        };
        let _ = write!(out, "comm {} {ty} {}", c.name, c.period);
        if let Some(init) = c.init {
            let _ = out.write_str(" init=");
            push_literal(out, init);
        }
        if c.sensor {
            let _ = out.write_str(" sensor");
        }
        let _ = out.write_str("\n");
    }
}

/// Canonical text of the declared LRCs (name → constraint).
fn comms_lrc_text(program: &Program, out: &mut impl Write) {
    for c in &program.communicators {
        if let Some(lrc) = c.lrc {
            let _ = write!(out, "lrc {} ", c.name);
            push_f64(out, lrc);
            let _ = out.write_str("\n");
        }
    }
}

/// Canonical text of one module (modes, invocations, switches).
fn module_text(program: &Program, name: &str, out: &mut impl Write) {
    for module in program.modules.iter().filter(|m| m.name == name) {
        for mode in &module.modes {
            let _ = writeln!(
                out,
                "mode {} start={} period {}",
                mode.name, mode.start, mode.period
            );
            for inv in &mode.invocations {
                let model = match inv.model {
                    ModelName::Series => "series",
                    ModelName::Parallel => "parallel",
                    ModelName::Independent => "independent",
                };
                let _ = write!(out, "  invoke {} {model} r", inv.task);
                for a in &inv.reads {
                    let _ = write!(out, " {}[{}]", a.comm, a.instance);
                }
                let _ = out.write_str(" w");
                for a in &inv.writes {
                    let _ = write!(out, " {}[{}]", a.comm, a.instance);
                }
                if !inv.defaults.is_empty() {
                    let _ = out.write_str(" d");
                    for &d in &inv.defaults {
                        let _ = out.write_str(" ");
                        push_literal(out, d);
                    }
                }
                let _ = out.write_str("\n");
            }
            for sw in &mode.switches {
                let _ = writeln!(out, "  switch {} -> {}", sw.event, sw.target);
            }
        }
    }
}

/// Canonical text of the architecture *topology*: host and sensor names
/// in declaration order (no reliabilities, no metrics).
fn arch_topo_text(program: &Program, out: &mut impl Write) {
    for item in &program.arch {
        match item {
            ArchItem::Host { name, .. } => {
                let _ = writeln!(out, "host {name}");
            }
            ArchItem::Sensor { name, .. } => {
                let _ = writeln!(out, "sensor {name}");
            }
            ArchItem::Broadcast { .. } | ArchItem::Wcet { .. } | ArchItem::Wctt { .. } => {}
        }
    }
}

/// Canonical text of the failure probabilities: host, sensor and
/// broadcast reliabilities.
fn arch_rel_text(program: &Program, out: &mut impl Write) {
    for item in &program.arch {
        match item {
            ArchItem::Host { name, reliability, .. } => {
                let _ = write!(out, "host {name} ");
                push_f64(out, *reliability);
                let _ = out.write_str("\n");
            }
            ArchItem::Sensor { name, reliability, .. } => {
                let _ = write!(out, "sensor {name} ");
                push_f64(out, *reliability);
                let _ = out.write_str("\n");
            }
            ArchItem::Broadcast { reliability, .. } => {
                let _ = out.write_str("broadcast ");
                push_f64(out, *reliability);
                let _ = out.write_str("\n");
            }
            ArchItem::Wcet { .. } | ArchItem::Wctt { .. } => {}
        }
    }
}

/// Canonical text of one task's WCET/WCTT rows, in declaration order.
fn metrics_text(program: &Program, task: &str, out: &mut impl Write) {
    for item in &program.arch {
        match item {
            ArchItem::Wcet { task: t, host, ticks, .. } if t == task => {
                let _ = writeln!(out, "wcet {host} {ticks}");
            }
            ArchItem::Wctt { task: t, host, ticks, .. } if t == task => {
                let _ = writeln!(out, "wctt {host} {ticks}");
            }
            _ => {}
        }
    }
}

/// Canonical text of one task's host assignments, in declaration order.
fn map_text(program: &Program, task: &str, out: &mut impl Write) {
    for item in &program.map {
        if let MapItem::Assign { task: t, hosts, .. } = item {
            if t == task {
                let _ = out.write_str("assign ");
                for (i, h) in hosts.iter().enumerate() {
                    if i > 0 {
                        let _ = out.write_str(" ");
                    }
                    let _ = out.write_str(h);
                }
                let _ = out.write_str("\n");
            }
        }
    }
}

/// Canonical text of the sensor bindings.
fn binds_text(program: &Program, out: &mut impl Write) {
    for item in &program.map {
        if let MapItem::Bind { comm, sensors, .. } = item {
            let _ = write!(out, "bind {comm} ");
            for (i, s) in sensors.iter().enumerate() {
                if i > 0 {
                    let _ = out.write_str(" ");
                }
                let _ = out.write_str(s);
            }
            let _ = out.write_str("\n");
        }
    }
}

/// Streams every AST source position, in declaration order.
///
/// Spans are hashed as their own `layout` unit because cached query
/// results may embed line/column positions (diagnostics do): an edit
/// that moves items without changing any canonical text — an inserted
/// blank line, say — must still dirty every span-carrying query, or a
/// replayed result would point at stale positions. Queries whose
/// payloads are span-free simply leave `layout` out of their
/// dependency set.
fn layout_text(program: &Program, w: &mut FnvWriter) {
    let mut span = |s: Span| {
        w.write_bytes(&s.line.to_le_bytes());
        w.write_bytes(&s.col.to_le_bytes());
    };
    for c in &program.communicators {
        span(c.span);
    }
    for module in &program.modules {
        span(module.span);
        for mode in &module.modes {
            span(mode.span);
            for inv in &mode.invocations {
                span(inv.span);
                for a in &inv.reads {
                    span(a.span);
                }
                for a in &inv.writes {
                    span(a.span);
                }
            }
            for sw in &mode.switches {
                span(sw.span);
            }
        }
    }
    for item in &program.arch {
        span(match item {
            ArchItem::Host { span, .. }
            | ArchItem::Sensor { span, .. }
            | ArchItem::Broadcast { span, .. }
            | ArchItem::Wcet { span, .. }
            | ArchItem::Wctt { span, .. } => *span,
        });
    }
    for item in &program.map {
        span(match item {
            MapItem::Assign { span, .. } | MapItem::Bind { span, .. } => *span,
        });
    }
}

/// Tasks of `program`, in order of first appearance: invocations first
/// (declaration order), then any extra tasks mentioned only in the
/// architecture or map blocks.
#[must_use]
pub fn task_names(program: &Program) -> Vec<String> {
    let mut tasks: Vec<String> = Vec::new();
    let mut push = |t: &str| {
        if !tasks.iter().any(|x| x == t) {
            tasks.push(t.to_string());
        }
    };
    for module in &program.modules {
        for mode in &module.modes {
            for inv in &mode.invocations {
                push(&inv.task);
            }
        }
    }
    for item in &program.arch {
        match item {
            ArchItem::Wcet { task, .. } | ArchItem::Wctt { task, .. } => push(task),
            _ => {}
        }
    }
    for item in &program.map {
        if let MapItem::Assign { task, .. } = item {
            push(task);
        }
    }
    tasks
}

/// Splits `program` into its content-hashed subspec units, in a stable
/// order: `name`, `comms_core`, `comms_lrc`, one `module:<m>` per module,
/// `arch_topo`, `arch_rel`, one `metrics:<t>` and one `map:<t>` per task
/// (skipping tasks with no such rows), `binds`, and `layout` (source
/// positions).
#[must_use]
pub fn split_units(program: &Program) -> Vec<SubspecUnit> {
    let mut units = Vec::new();
    units.push(SubspecUnit::streamed("name", |w| {
        let _ = w.write_str(&program.name);
    }));
    units.push(SubspecUnit::streamed("comms_core", |w| {
        comms_core_text(program, w);
    }));
    units.push(SubspecUnit::streamed("comms_lrc", |w| {
        comms_lrc_text(program, w);
    }));
    for module in &program.modules {
        units.push(SubspecUnit::streamed(format!("module:{}", module.name), |w| {
            module_text(program, &module.name, w);
        }));
    }
    units.push(SubspecUnit::streamed("arch_topo", |w| {
        arch_topo_text(program, w);
    }));
    units.push(SubspecUnit::streamed("arch_rel", |w| {
        arch_rel_text(program, w);
    }));
    for task in task_names(program) {
        let mut metrics = FnvWriter::new();
        metrics_text(program, &task, &mut metrics);
        if !metrics.is_empty() {
            units.push(SubspecUnit {
                name: format!("metrics:{task}"),
                hash: metrics.finish(),
            });
        }
        let mut map = FnvWriter::new();
        map_text(program, &task, &mut map);
        if !map.is_empty() {
            units.push(SubspecUnit {
                name: format!("map:{task}"),
                hash: map.finish(),
            });
        }
    }
    units.push(SubspecUnit::streamed("binds", |w| {
        binds_text(program, w);
    }));
    units.push(SubspecUnit::streamed("layout", |w| {
        layout_text(program, w);
    }));
    units
}

/// Hosts named in a task's `map` assignments, in declaration order —
/// derived from the raw AST so the query layer can key per-host work
/// without elaborating.
#[must_use]
pub fn assigned_hosts(program: &Program, task: &str) -> Vec<String> {
    let mut hosts: Vec<String> = Vec::new();
    for item in &program.map {
        if let MapItem::Assign { task: t, hosts: hs, .. } = item {
            if t == task {
                for h in hs {
                    if !hosts.iter().any(|x| x == h) {
                        hosts.push(h.clone());
                    }
                }
            }
        }
    }
    hosts
}

/// Combines per-unit hashes into one digest: FNV-1a 64 over each unit's
/// name, a NUL separator and the raw little-endian hash bytes, in unit
/// order.
///
/// The units jointly cover every canonical program field (communicators,
/// LRCs, modules, architecture, metrics, mappings, bindings) *and* every
/// source position (the `layout` unit), so two programs with equal unit
/// digests have identical canonical printed forms — and therefore
/// re-parse identically — and place every item at the same line and
/// column.
#[must_use]
pub fn units_digest(units: &[SubspecUnit]) -> u64 {
    let mut w = FnvWriter::new();
    for u in units {
        w.write_bytes(u.name.as_bytes());
        w.write_bytes(&[0]);
        w.write_bytes(&u.hash.to_le_bytes());
    }
    w.finish()
}

/// The whole-program digest: [`units_digest`] over [`split_units`].
/// Deterministic; equal digests imply the programs print — and
/// therefore re-parse — identically *and* agree on every item's source
/// position.
#[must_use]
pub fn program_digest(program: &Program) -> u64 {
    units_digest(&split_units(program))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    const SRC: &str = r#"
program demo {
    communicator s : float period 10 sensor;
    communicator u : float period 10 lrc 0.9;
    communicator v : float period 10 lrc 0.8;
    module m {
        start mode main period 10 {
            invoke ctrl reads s[0] writes u[1];
        }
    }
    module n {
        start mode main period 10 {
            invoke obs model parallel reads s[0] writes v[1];
        }
    }
    architecture {
        host h1 reliability 0.99;
        host h2 reliability 0.98;
        sensor sn reliability 0.999;
        wcet ctrl on h1 2;
        wctt ctrl on h1 1;
        wcet obs on h1 2;
        wctt obs on h1 1;
        wcet obs on h2 2;
        wctt obs on h2 1;
    }
    map {
        ctrl -> h1;
        obs -> h1, h2;
        bind s -> sn;
    }
}
"#;

    fn unit(units: &[SubspecUnit], name: &str) -> u64 {
        units
            .iter()
            .find(|u| u.name == name)
            .unwrap_or_else(|| panic!("missing unit {name}"))
            .hash
    }

    #[test]
    fn splitting_is_deterministic() {
        let p = parse(SRC).unwrap();
        assert_eq!(split_units(&p), split_units(&p));
    }

    #[test]
    fn expected_units_exist() {
        let p = parse(SRC).unwrap();
        let units = split_units(&p);
        for name in [
            "name",
            "comms_core",
            "comms_lrc",
            "module:m",
            "module:n",
            "arch_topo",
            "arch_rel",
            "metrics:ctrl",
            "metrics:obs",
            "map:ctrl",
            "map:obs",
            "binds",
            "layout",
        ] {
            assert!(units.iter().any(|u| u.name == name), "missing {name}");
        }
    }

    #[test]
    fn lrc_edit_only_dirties_lrc_unit() {
        let p1 = parse(SRC).unwrap();
        let p2 = parse(&SRC.replace("lrc 0.9;", "lrc 0.95;")).unwrap();
        let (u1, u2) = (split_units(&p1), split_units(&p2));
        assert_ne!(unit(&u1, "comms_lrc"), unit(&u2, "comms_lrc"));
        for name in ["comms_core", "module:m", "arch_topo", "arch_rel", "metrics:ctrl"] {
            assert_eq!(unit(&u1, name), unit(&u2, name), "{name} dirtied");
        }
    }

    #[test]
    fn wcet_edit_only_dirties_that_tasks_metrics() {
        let p1 = parse(SRC).unwrap();
        let p2 = parse(&SRC.replace("wcet ctrl on h1 2;", "wcet ctrl on h1 3;")).unwrap();
        let (u1, u2) = (split_units(&p1), split_units(&p2));
        assert_ne!(unit(&u1, "metrics:ctrl"), unit(&u2, "metrics:ctrl"));
        assert_eq!(unit(&u1, "metrics:obs"), unit(&u2, "metrics:obs"));
        assert_eq!(unit(&u1, "comms_core"), unit(&u2, "comms_core"));
        assert_eq!(unit(&u1, "module:m"), unit(&u2, "module:m"));
    }

    #[test]
    fn module_edit_only_dirties_that_module() {
        let p1 = parse(SRC).unwrap();
        let p2 =
            parse(&SRC.replace("invoke obs model parallel", "invoke obs model independent"))
                .unwrap();
        let (u1, u2) = (split_units(&p1), split_units(&p2));
        assert_ne!(unit(&u1, "module:n"), unit(&u2, "module:n"));
        assert_eq!(unit(&u1, "module:m"), unit(&u2, "module:m"));
    }

    #[test]
    fn reorder_of_map_hosts_changes_hash() {
        // Host order in an assignment is semantic (replica indexing).
        let p1 = parse(SRC).unwrap();
        let p2 = parse(&SRC.replace("obs -> h1, h2;", "obs -> h2, h1;")).unwrap();
        let (u1, u2) = (split_units(&p1), split_units(&p2));
        assert_ne!(unit(&u1, "map:obs"), unit(&u2, "map:obs"));
    }

    #[test]
    fn assigned_hosts_follow_declaration_order() {
        let p = parse(SRC).unwrap();
        assert_eq!(assigned_hosts(&p, "obs"), vec!["h1", "h2"]);
        assert_eq!(assigned_hosts(&p, "ctrl"), vec!["h1"]);
        assert!(assigned_hosts(&p, "nope").is_empty());
    }

    #[test]
    fn line_shift_dirties_only_layout() {
        // A blank line changes no canonical text but moves every item
        // below it: only the span unit may (and must) change.
        let p1 = parse(SRC).unwrap();
        let p2 = parse(&SRC.replacen("    module m {", "\n    module m {", 1)).unwrap();
        let (u1, u2) = (split_units(&p1), split_units(&p2));
        assert_ne!(unit(&u1, "layout"), unit(&u2, "layout"));
        for name in ["comms_core", "comms_lrc", "module:m", "arch_rel", "metrics:ctrl"] {
            assert_eq!(unit(&u1, name), unit(&u2, name), "{name} dirtied");
        }
    }

    #[test]
    fn width_preserving_value_edit_keeps_layout() {
        // `2` -> `3` moves nothing, so the span unit must stay green.
        let p1 = parse(SRC).unwrap();
        let p2 = parse(&SRC.replace("wcet ctrl on h1 2;", "wcet ctrl on h1 3;")).unwrap();
        assert_eq!(
            unit(&split_units(&p1), "layout"),
            unit(&split_units(&p2), "layout")
        );
    }

    #[test]
    fn program_digest_tracks_any_edit() {
        let p1 = parse(SRC).unwrap();
        let p2 = parse(&SRC.replace("period 10 sensor", "period 5 sensor")).unwrap();
        assert_ne!(program_digest(&p1), program_digest(&p2));
        assert_eq!(program_digest(&p1), program_digest(&parse(SRC).unwrap()));
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
