//! Emission: rendering a core-model system back to source text.
//!
//! The inverse of [`crate::elaborate()`]: turns a programmatically built
//! `(Specification, Architecture, Implementation)` into a [`Program`] (and
//! thus, via [`crate::printer`], into compilable text). Useful for
//! exporting systems built with the builder API, golden files, and
//! round-trip testing of the whole front-end.

use crate::ast::*;
use crate::token::Span;
use logrel_core::{
    Architecture, FailureModel, Implementation, Specification, Value, ValueType,
};

fn type_name(ty: ValueType) -> TypeName {
    match ty {
        ValueType::Float => TypeName::Float,
        ValueType::Int => TypeName::Int,
        ValueType::Bool => TypeName::Bool,
    }
}

fn literal(v: Value) -> Literal {
    match v {
        Value::Float(x) => Literal::Float(x),
        Value::Int(i) => Literal::Int(i),
        Value::Bool(b) => Literal::Bool(b),
        Value::Unreliable => unreachable!("validated initial/default values are reliable"),
    }
}

/// Builds a single-module, single-mode [`Program`] equivalent to the given
/// system. The module is named `m`, its only (start) mode `main` with the
/// specification's round period.
pub fn program_from_system(
    name: &str,
    spec: &Specification,
    arch: &Architecture,
    imp: &Implementation,
) -> Program {
    let z = Span::default();

    let communicators = spec
        .communicator_ids()
        .map(|c| {
            let d = spec.communicator(c);
            CommDecl {
                name: d.name().to_owned(),
                ty: type_name(d.value_type()),
                period: d.period().as_u64(),
                init: Some(literal(d.init())),
                lrc: d.lrc().map(|r| r.get()),
                sensor: d.is_sensor_input(),
                span: z,
            }
        })
        .collect();

    let invocations = spec
        .task_ids()
        .map(|t| {
            let d = spec.task(t);
            let access = |a: &logrel_core::CommAccess| Access {
                comm: spec.communicator(a.comm).name().to_owned(),
                instance: a.instance,
                span: z,
            };
            Invocation {
                task: d.name().to_owned(),
                model: match d.failure_model() {
                    FailureModel::Series => ModelName::Series,
                    FailureModel::Parallel => ModelName::Parallel,
                    FailureModel::Independent => ModelName::Independent,
                },
                reads: d.inputs().iter().map(access).collect(),
                writes: d.outputs().iter().map(access).collect(),
                defaults: d.default_values().iter().map(|&v| literal(v)).collect(),
                span: z,
            }
        })
        .collect();

    let modules = vec![Module {
        name: "m".to_owned(),
        modes: vec![Mode {
            name: "main".to_owned(),
            start: true,
            period: spec.round_period().as_u64(),
            invocations,
            switches: Vec::new(),
            span: z,
        }],
        span: z,
    }];

    let mut arch_items = Vec::new();
    for h in arch.host_ids() {
        arch_items.push(ArchItem::Host {
            name: arch.host(h).name().to_owned(),
            reliability: arch.host(h).reliability().get(),
            span: z,
        });
    }
    for s in arch.sensor_ids() {
        arch_items.push(ArchItem::Sensor {
            name: arch.sensor(s).name().to_owned(),
            reliability: arch.sensor(s).reliability().get(),
            span: z,
        });
    }
    if arch.broadcast_reliability().get() < 1.0 {
        arch_items.push(ArchItem::Broadcast {
            reliability: arch.broadcast_reliability().get(),
            span: z,
        });
    }
    for t in spec.task_ids() {
        for h in arch.host_ids() {
            if let Some(ticks) = arch.wcet(t, h) {
                arch_items.push(ArchItem::Wcet {
                    task: spec.task(t).name().to_owned(),
                    host: arch.host(h).name().to_owned(),
                    ticks,
                    span: z,
                });
            }
            if let Some(ticks) = arch.wctt(t, h) {
                arch_items.push(ArchItem::Wctt {
                    task: spec.task(t).name().to_owned(),
                    host: arch.host(h).name().to_owned(),
                    ticks,
                    span: z,
                });
            }
        }
    }

    let mut map_items = Vec::new();
    for t in spec.task_ids() {
        map_items.push(MapItem::Assign {
            task: spec.task(t).name().to_owned(),
            hosts: imp
                .hosts_of(t)
                .iter()
                .map(|&h| arch.host(h).name().to_owned())
                .collect(),
            span: z,
        });
    }
    for c in spec.communicator_ids() {
        let sensors = imp.sensors_of(c);
        if !sensors.is_empty() {
            map_items.push(MapItem::Bind {
                comm: spec.communicator(c).name().to_owned(),
                sensors: sensors
                    .iter()
                    .map(|&s| arch.sensor(s).name().to_owned())
                    .collect(),
                span: z,
            });
        }
    }

    Program {
        name: name.to_owned(),
        communicators,
        modules,
        arch: arch_items,
        map: map_items,
    }
}

/// Renders the system directly to compilable source text.
pub fn emit_source(
    name: &str,
    spec: &Specification,
    arch: &Architecture,
    imp: &Implementation,
) -> String {
    crate::printer::print_program(&program_from_system(name, spec, arch, imp))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use logrel_core::{
        CommunicatorDecl, HostDecl, Reliability, SensorDecl, TaskDecl,
    };

    fn r(v: f64) -> Reliability {
        Reliability::new(v).unwrap()
    }

    fn sample() -> (Specification, Architecture, Implementation) {
        let mut sb = Specification::builder();
        let s = sb
            .communicator(
                CommunicatorDecl::new("s", ValueType::Float, 10)
                    .unwrap()
                    .from_sensor(),
            )
            .unwrap();
        let u = sb
            .communicator(
                CommunicatorDecl::new("u", ValueType::Float, 10)
                    .unwrap()
                    .with_lrc(r(0.95))
                    .with_init(Value::Float(1.5))
                    .unwrap(),
            )
            .unwrap();
        let flag = sb
            .communicator(
                CommunicatorDecl::new("flag", ValueType::Bool, 10)
                    .unwrap()
                    .with_init(Value::Bool(true))
                    .unwrap(),
            )
            .unwrap();
        let t = sb
            .task(
                TaskDecl::new("ctrl")
                    .reads(s, 0)
                    .writes(u, 1)
                    .writes(flag, 1)
                    .model(FailureModel::Parallel)
                    .default_value(Value::Float(0.25)),
            )
            .unwrap();
        let spec = sb.build().unwrap();
        let mut ab = Architecture::builder();
        let h1 = ab.host(HostDecl::new("h1", r(0.99))).unwrap();
        let h2 = ab.host(HostDecl::new("h2", r(0.98))).unwrap();
        let sen = ab.sensor(SensorDecl::new("sn", r(0.999))).unwrap();
        ab.wcet(t, h1, 3).unwrap();
        ab.wctt(t, h1, 1).unwrap();
        ab.wcet(t, h2, 4).unwrap();
        ab.wctt(t, h2, 2).unwrap();
        ab.broadcast_reliability(r(0.9999));
        let arch = ab.build();
        let imp = Implementation::builder()
            .assign(t, [h1, h2])
            .bind_sensor(s, sen)
            .build(&spec, &arch)
            .unwrap();
        (spec, arch, imp)
    }

    #[test]
    fn emitted_source_recompiles_to_an_equivalent_system() {
        let (spec, arch, imp) = sample();
        let src = emit_source("sample", &spec, &arch, &imp);
        let sys = compile(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
        assert_eq!(sys.spec.communicator_count(), spec.communicator_count());
        assert_eq!(sys.spec.task_count(), spec.task_count());
        assert_eq!(sys.spec.round_period(), spec.round_period());
        assert_eq!(sys.arch.host_count(), arch.host_count());
        assert_eq!(
            sys.arch.broadcast_reliability(),
            arch.broadcast_reliability()
        );
        // Identical analysis results (names align, ids may not).
        let a = logrel_reliability_shim::srgs(&spec, &arch, &imp);
        let b = logrel_reliability_shim::srgs(&sys.spec, &sys.arch, &sys.imp);
        assert_eq!(a, b);
    }

    /// Tiny shim to avoid a dev-dependency cycle with logrel-reliability:
    /// a direct reimplementation of the series SRG for this one test
    /// would hide regressions, so compare structural quantities instead.
    mod logrel_reliability_shim {
        use super::*;
        pub fn srgs(
            spec: &Specification,
            arch: &Architecture,
            imp: &Implementation,
        ) -> Vec<(String, usize, usize, Option<u64>)> {
            spec.communicator_ids()
                .map(|c| {
                    let writer_replicas = spec
                        .writer(c)
                        .map_or(0, |t| imp.hosts_of(t).len());
                    let wcet_sum: Option<u64> = spec.writer(c).map(|t| {
                        imp.hosts_of(t)
                            .iter()
                            .filter_map(|&h| arch.wcet(t, h))
                            .sum()
                    });
                    (
                        spec.communicator(c).name().to_owned(),
                        writer_replicas,
                        imp.sensors_of(c).len(),
                        wcet_sum,
                    )
                })
                .collect()
        }
    }

    #[test]
    fn emitted_program_preserves_details() {
        let (spec, arch, imp) = sample();
        let program = program_from_system("sample", &spec, &arch, &imp);
        assert_eq!(program.communicators.len(), 3);
        let u = &program.communicators[1];
        assert_eq!(u.lrc, Some(0.95));
        assert_eq!(u.init, Some(Literal::Float(1.5)));
        assert!(!u.sensor);
        assert!(program.communicators[0].sensor);
        let inv = &program.modules[0].modes[0].invocations[0];
        assert_eq!(inv.model, ModelName::Parallel);
        assert_eq!(inv.defaults, vec![Literal::Float(0.25)]);
        assert!(program
            .arch
            .iter()
            .any(|i| matches!(i, ArchItem::Broadcast { .. })));
        assert!(program.map.iter().any(
            |i| matches!(i, MapItem::Assign { hosts, .. } if hosts.len() == 2)
        ));
    }
}
