//! Recursive-descent parser.
//!
//! Grammar (EBNF, `[]` optional, `{}` repetition):
//!
//! ```text
//! program   = "program" IDENT "{" { item } "}"
//! item      = commdecl | module | archblock | mapblock
//! commdecl  = "communicator" IDENT ":" type "period" INT
//!             [ "init" literal ] [ "lrc" number ] [ "sensor" ] ";"
//! module    = "module" IDENT "{" { mode } "}"
//! mode      = [ "start" ] "mode" IDENT "period" INT "{" { modeitem } "}"
//! modeitem  = invoke | switch
//! invoke    = "invoke" IDENT [ "model" model ]
//!             "reads" access { "," access }
//!             "writes" access { "," access }
//!             [ "defaults" literal { "," literal } ] ";"
//! access    = IDENT "[" INT "]"
//! switch    = "switch" IDENT "->" IDENT ";"
//! archblock = "architecture" "{" { architem } "}"
//! architem  = "host" IDENT "reliability" number ";"
//!           | "sensor" IDENT "reliability" number ";"
//!           | "broadcast" "reliability" number ";"
//!           | ("wcet" | "wctt") IDENT "on" IDENT INT ";"
//! mapblock  = "map" "{" { mapitem } "}"
//! mapitem   = "bind" IDENT "->" IDENT { "," IDENT } ";"
//!           | IDENT "->" IDENT { "," IDENT } ";"
//! ```

use crate::ast::*;
use crate::error::LangError;
use crate::lexer::lex;
use crate::token::{Keyword, Span, SpannedToken, Token};

/// Parses a complete program from source text.
///
/// # Errors
///
/// Returns the first lexical or syntactic error, with position.
pub fn parse(source: &str) -> Result<Program, LangError> {
    let tokens = lex(source)?;
    let mut p = Parser { tokens, pos: 0 };
    let program = p.program()?;
    p.expect(Token::Eof)?;
    Ok(program)
}

/// Parses a source file containing one or more programs and refinement
/// declarations (`concrete refines abstract { t' -> t; … }`).
///
/// # Errors
///
/// Returns the first lexical or syntactic error, with position.
pub fn parse_file(source: &str) -> Result<SourceFile, LangError> {
    let tokens = lex(source)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut file = SourceFile {
        programs: Vec::new(),
        refinements: Vec::new(),
    };
    loop {
        match p.peek().token {
            Token::Eof => return Ok(file),
            Token::Keyword(Keyword::Program) => file.programs.push(p.program()?),
            Token::Ident(_) => file.refinements.push(p.refinement_decl()?),
            _ => return Err(p.err("`program`, a refinement declaration or end of input")),
        }
    }
}

struct Parser<'a> {
    tokens: Vec<SpannedToken<'a>>,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> SpannedToken<'a> {
        self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> SpannedToken<'a> {
        let t = self.peek();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err(&self, expected: impl Into<String>) -> LangError {
        let t = self.peek();
        LangError::Parse {
            expected: expected.into(),
            found: t.token.to_string(),
            span: t.span,
        }
    }

    fn expect(&mut self, token: Token<'a>) -> Result<Span, LangError> {
        if self.peek().token == token {
            Ok(self.bump().span)
        } else {
            Err(self.err(token.to_string()))
        }
    }

    fn expect_kw(&mut self, kw: Keyword) -> Result<Span, LangError> {
        self.expect(Token::Keyword(kw))
    }

    fn eat_kw(&mut self, kw: Keyword) -> bool {
        if self.peek().token == Token::Keyword(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<(String, Span), LangError> {
        if let Token::Ident(s) = self.peek().token {
            let span = self.bump().span;
            Ok((s.to_owned(), span))
        } else {
            Err(self.err("an identifier"))
        }
    }

    fn int(&mut self) -> Result<u64, LangError> {
        match self.peek().token {
            Token::Int(v) if v >= 0 => {
                self.bump();
                Ok(v as u64)
            }
            _ => Err(self.err("a non-negative integer")),
        }
    }

    /// A number usable as a reliability: integer or float.
    fn number(&mut self) -> Result<f64, LangError> {
        match self.peek().token {
            Token::Int(v) => {
                self.bump();
                Ok(v as f64)
            }
            Token::Float(v) => {
                self.bump();
                Ok(v)
            }
            _ => Err(self.err("a number")),
        }
    }

    fn literal(&mut self) -> Result<Literal, LangError> {
        match self.peek().token {
            Token::Int(v) => {
                self.bump();
                Ok(Literal::Int(v))
            }
            Token::Float(v) => {
                self.bump();
                Ok(Literal::Float(v))
            }
            Token::Keyword(Keyword::True) => {
                self.bump();
                Ok(Literal::Bool(true))
            }
            Token::Keyword(Keyword::False) => {
                self.bump();
                Ok(Literal::Bool(false))
            }
            _ => Err(self.err("a literal")),
        }
    }

    fn program(&mut self) -> Result<Program, LangError> {
        self.expect_kw(Keyword::Program)?;
        let (name, _) = self.ident()?;
        self.expect(Token::LBrace)?;
        let mut program = Program {
            name,
            communicators: Vec::new(),
            modules: Vec::new(),
            arch: Vec::new(),
            map: Vec::new(),
        };
        loop {
            match self.peek().token {
                Token::RBrace => {
                    self.bump();
                    break;
                }
                Token::Keyword(Keyword::Communicator) => {
                    program.communicators.push(self.commdecl()?);
                }
                Token::Keyword(Keyword::Module) => program.modules.push(self.module()?),
                Token::Keyword(Keyword::Architecture) => self.archblock(&mut program.arch)?,
                Token::Keyword(Keyword::Map) => self.mapblock(&mut program.map)?,
                _ => {
                    return Err(self.err(
                        "`communicator`, `module`, `architecture`, `map` or `}`",
                    ))
                }
            }
        }
        Ok(program)
    }

    fn refinement_decl(&mut self) -> Result<RefinementDecl, LangError> {
        let (refining, span) = self.ident()?;
        self.expect_kw(Keyword::Refines)?;
        let (refined, _) = self.ident()?;
        self.expect(Token::LBrace)?;
        let mut map = Vec::new();
        while self.peek().token != Token::RBrace {
            let (from, _) = self.ident()?;
            self.expect(Token::Arrow)?;
            let (to, _) = self.ident()?;
            self.expect(Token::Semi)?;
            map.push((from, to));
        }
        self.expect(Token::RBrace)?;
        Ok(RefinementDecl {
            refining,
            refined,
            map,
            span,
        })
    }

    fn commdecl(&mut self) -> Result<CommDecl, LangError> {
        let span = self.expect_kw(Keyword::Communicator)?;
        let (name, _) = self.ident()?;
        self.expect(Token::Colon)?;
        let ty = match self.peek().token {
            Token::Keyword(Keyword::Float) => TypeName::Float,
            Token::Keyword(Keyword::Int) => TypeName::Int,
            Token::Keyword(Keyword::Bool) => TypeName::Bool,
            _ => return Err(self.err("a type (`float`, `int`, `bool`)")),
        };
        self.bump();
        self.expect_kw(Keyword::Period)?;
        let period = self.int()?;
        let mut decl = CommDecl {
            name,
            ty,
            period,
            init: None,
            lrc: None,
            sensor: false,
            span,
        };
        if self.eat_kw(Keyword::Init) {
            decl.init = Some(self.literal()?);
        }
        if self.eat_kw(Keyword::Lrc) {
            decl.lrc = Some(self.number()?);
        }
        if self.eat_kw(Keyword::Sensor) {
            decl.sensor = true;
        }
        self.expect(Token::Semi)?;
        Ok(decl)
    }

    fn module(&mut self) -> Result<Module, LangError> {
        let span = self.expect_kw(Keyword::Module)?;
        let (name, _) = self.ident()?;
        self.expect(Token::LBrace)?;
        let mut modes = Vec::new();
        while self.peek().token != Token::RBrace {
            modes.push(self.mode()?);
        }
        self.expect(Token::RBrace)?;
        Ok(Module { name, modes, span })
    }

    fn mode(&mut self) -> Result<Mode, LangError> {
        let start = self.eat_kw(Keyword::Start);
        let span = self.expect_kw(Keyword::Mode)?;
        let (name, _) = self.ident()?;
        self.expect_kw(Keyword::Period)?;
        let period = self.int()?;
        self.expect(Token::LBrace)?;
        let mut invocations = Vec::new();
        let mut switches = Vec::new();
        loop {
            match self.peek().token {
                Token::RBrace => {
                    self.bump();
                    break;
                }
                Token::Keyword(Keyword::Invoke) => invocations.push(self.invocation()?),
                Token::Keyword(Keyword::Switch) => switches.push(self.switch()?),
                _ => return Err(self.err("`invoke`, `switch` or `}`")),
            }
        }
        Ok(Mode {
            name,
            start,
            period,
            invocations,
            switches,
            span,
        })
    }

    fn invocation(&mut self) -> Result<Invocation, LangError> {
        let span = self.expect_kw(Keyword::Invoke)?;
        let (task, _) = self.ident()?;
        let model = if self.eat_kw(Keyword::Model) {
            match self.peek().token {
                Token::Keyword(Keyword::Series) => {
                    self.bump();
                    ModelName::Series
                }
                Token::Keyword(Keyword::Parallel) => {
                    self.bump();
                    ModelName::Parallel
                }
                Token::Keyword(Keyword::Independent) => {
                    self.bump();
                    ModelName::Independent
                }
                _ => return Err(self.err("`series`, `parallel` or `independent`")),
            }
        } else {
            ModelName::Series
        };
        self.expect_kw(Keyword::Reads)?;
        let reads = self.access_list()?;
        self.expect_kw(Keyword::Writes)?;
        let writes = self.access_list()?;
        let mut defaults = Vec::new();
        if self.eat_kw(Keyword::Defaults) {
            defaults.push(self.literal()?);
            while self.peek().token == Token::Comma {
                self.bump();
                defaults.push(self.literal()?);
            }
        }
        self.expect(Token::Semi)?;
        Ok(Invocation {
            task,
            model,
            reads,
            writes,
            defaults,
            span,
        })
    }

    fn access_list(&mut self) -> Result<Vec<Access>, LangError> {
        let mut out = vec![self.access()?];
        while self.peek().token == Token::Comma {
            self.bump();
            out.push(self.access()?);
        }
        Ok(out)
    }

    fn access(&mut self) -> Result<Access, LangError> {
        let (comm, span) = self.ident()?;
        self.expect(Token::LBracket)?;
        let instance = self.int()?;
        self.expect(Token::RBracket)?;
        Ok(Access {
            comm,
            instance,
            span,
        })
    }

    fn switch(&mut self) -> Result<SwitchDecl, LangError> {
        let span = self.expect_kw(Keyword::Switch)?;
        let (event, _) = self.ident()?;
        self.expect(Token::Arrow)?;
        let (target, _) = self.ident()?;
        self.expect(Token::Semi)?;
        Ok(SwitchDecl {
            event,
            target,
            span,
        })
    }

    fn archblock(&mut self, items: &mut Vec<ArchItem>) -> Result<(), LangError> {
        self.expect_kw(Keyword::Architecture)?;
        self.expect(Token::LBrace)?;
        loop {
            match self.peek().token {
                Token::RBrace => {
                    self.bump();
                    return Ok(());
                }
                Token::Keyword(Keyword::Host) => {
                    let span = self.bump().span;
                    let (name, _) = self.ident()?;
                    self.expect_kw(Keyword::Reliability)?;
                    let reliability = self.number()?;
                    self.expect(Token::Semi)?;
                    items.push(ArchItem::Host {
                        name,
                        reliability,
                        span,
                    });
                }
                Token::Keyword(Keyword::Sensor) => {
                    let span = self.bump().span;
                    let (name, _) = self.ident()?;
                    self.expect_kw(Keyword::Reliability)?;
                    let reliability = self.number()?;
                    self.expect(Token::Semi)?;
                    items.push(ArchItem::Sensor {
                        name,
                        reliability,
                        span,
                    });
                }
                Token::Keyword(Keyword::Broadcast) => {
                    let span = self.bump().span;
                    self.expect_kw(Keyword::Reliability)?;
                    let reliability = self.number()?;
                    self.expect(Token::Semi)?;
                    items.push(ArchItem::Broadcast { reliability, span });
                }
                Token::Keyword(Keyword::Wcet) | Token::Keyword(Keyword::Wctt) => {
                    let is_wcet = self.peek().token == Token::Keyword(Keyword::Wcet);
                    let span = self.bump().span;
                    let (task, _) = self.ident()?;
                    self.expect_kw(Keyword::On)?;
                    let (host, _) = self.ident()?;
                    let ticks = self.int()?;
                    self.expect(Token::Semi)?;
                    items.push(if is_wcet {
                        ArchItem::Wcet {
                            task,
                            host,
                            ticks,
                            span,
                        }
                    } else {
                        ArchItem::Wctt {
                            task,
                            host,
                            ticks,
                            span,
                        }
                    });
                }
                _ => {
                    return Err(self.err(
                        "`host`, `sensor`, `broadcast`, `wcet`, `wctt` or `}`",
                    ))
                }
            }
        }
    }

    fn mapblock(&mut self, items: &mut Vec<MapItem>) -> Result<(), LangError> {
        self.expect_kw(Keyword::Map)?;
        self.expect(Token::LBrace)?;
        loop {
            match self.peek().token {
                Token::RBrace => {
                    self.bump();
                    return Ok(());
                }
                Token::Keyword(Keyword::Bind) => {
                    let span = self.bump().span;
                    let (comm, _) = self.ident()?;
                    self.expect(Token::Arrow)?;
                    let mut sensors = vec![self.ident()?.0];
                    while self.peek().token == Token::Comma {
                        self.bump();
                        sensors.push(self.ident()?.0);
                    }
                    self.expect(Token::Semi)?;
                    items.push(MapItem::Bind {
                        comm,
                        sensors,
                        span,
                    });
                }
                Token::Ident(_) => {
                    let (task, span) = self.ident()?;
                    self.expect(Token::Arrow)?;
                    let mut hosts = vec![self.ident()?.0];
                    while self.peek().token == Token::Comma {
                        self.bump();
                        hosts.push(self.ident()?.0);
                    }
                    self.expect(Token::Semi)?;
                    items.push(MapItem::Assign { task, hosts, span });
                }
                _ => return Err(self.err("a task name, `bind` or `}`")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEMO: &str = r#"
// demo program
program demo {
    communicator s : float period 500 init 0.0 lrc 0.99 sensor;
    communicator l : float period 100;
    communicator u : float period 100 lrc 0.998;
    module control {
        start mode normal period 500 {
            invoke reader model parallel reads s[0] writes l[1] defaults 0.0;
            invoke ctrl reads l[1] writes u[3];
            switch overload -> degraded;
        }
        mode degraded period 500 {
            invoke reader model parallel reads s[0] writes l[1] defaults 0.0;
            invoke ctrl_simple reads l[1] writes u[3];
        }
    }
    architecture {
        host h1 reliability 0.999;
        host h2 reliability 0.999;
        sensor sn reliability 0.999;
        broadcast reliability 1.0;
        wcet reader on h1 5;
        wcet reader on h2 5;
        wcet ctrl on h1 10;
        wctt reader on h1 2;
        wctt reader on h2 2;
        wctt ctrl on h1 2;
    }
    map {
        reader -> h1, h2;
        ctrl -> h1;
        bind s -> sn;
    }
}
"#;

    #[test]
    fn parses_the_demo_program() {
        let p = parse(DEMO).unwrap();
        assert_eq!(p.name, "demo");
        assert_eq!(p.communicators.len(), 3);
        assert_eq!(p.modules.len(), 1);
        assert_eq!(p.modules[0].modes.len(), 2);
        assert!(p.modules[0].modes[0].start);
        assert!(!p.modules[0].modes[1].start);
        assert_eq!(p.modules[0].modes[0].invocations.len(), 2);
        assert_eq!(p.modules[0].modes[0].switches.len(), 1);
        assert_eq!(p.arch.len(), 10);
        assert_eq!(p.map.len(), 3);
    }

    #[test]
    fn communicator_options_parse() {
        let p = parse(DEMO).unwrap();
        let s = &p.communicators[0];
        assert_eq!(s.lrc, Some(0.99));
        assert!(s.sensor);
        assert_eq!(s.init, Some(Literal::Float(0.0)));
        let l = &p.communicators[1];
        assert_eq!(l.lrc, None);
        assert!(!l.sensor);
    }

    #[test]
    fn invocation_details() {
        let p = parse(DEMO).unwrap();
        let inv = &p.modules[0].modes[0].invocations[0];
        assert_eq!(inv.task, "reader");
        assert_eq!(inv.model, ModelName::Parallel);
        assert_eq!(inv.reads[0].comm, "s");
        assert_eq!(inv.reads[0].instance, 0);
        assert_eq!(inv.writes[0].instance, 1);
        assert_eq!(inv.defaults, vec![Literal::Float(0.0)]);
        let inv2 = &p.modules[0].modes[0].invocations[1];
        assert_eq!(inv2.model, ModelName::Series);
    }

    #[test]
    fn map_items() {
        let p = parse(DEMO).unwrap();
        assert!(matches!(&p.map[0], MapItem::Assign { task, hosts, .. }
            if task == "reader" && hosts.len() == 2));
        assert!(matches!(&p.map[2], MapItem::Bind { comm, sensors, .. }
            if comm == "s" && sensors == &vec![String::from("sn")]));
    }

    #[test]
    fn missing_semicolon_is_reported_with_position() {
        let src = "program p { communicator c : float period 5 }";
        let err = parse(src).unwrap_err();
        let LangError::Parse { expected, span, .. } = err else {
            panic!("expected parse error");
        };
        assert!(expected.contains(';'));
        assert_eq!(span.line, 1);
    }

    #[test]
    fn unexpected_item_is_reported() {
        let err = parse("program p { mode m period 5 { } }").unwrap_err();
        assert!(err.to_string().contains("communicator"));
    }

    #[test]
    fn bad_model_name() {
        let src = "program p { module m { mode x period 5 { invoke t model serial reads c[0] writes d[1]; } } }";
        let err = parse(src).unwrap_err();
        assert!(err.to_string().contains("series"));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let err = parse("program p { } extra").unwrap_err();
        assert!(matches!(err, LangError::Parse { .. }));
    }

    #[test]
    fn integer_reliability_is_accepted() {
        let src = "program p { architecture { broadcast reliability 1; } }";
        let prog = parse(src).unwrap();
        assert!(matches!(
            prog.arch[0],
            ArchItem::Broadcast { reliability, .. } if reliability == 1.0
        ));
    }
}
