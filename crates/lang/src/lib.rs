//! An HTL-style coordination-language front-end.
//!
//! The paper extends the Hierarchical Timing Language (HTL) "to capture the
//! timing and reliability requirements of a set of software tasks"; its
//! compiler performs the joint schedulability/reliability analysis and
//! generates distributed code. This crate provides the textual front-end of
//! that pipeline:
//!
//! * [`lexer`] — a hand-written scanner producing spanned tokens;
//! * [`ast`] — the abstract syntax tree: programs, communicators, modules,
//!   modes, task invocations, mode switches, architecture and mapping
//!   blocks;
//! * [`parser`] — recursive descent with precise diagnostics;
//! * [`elaborate`](mod@crate::elaborate) — name resolution and flattening of the hierarchical
//!   program into a core [`Specification`], [`Architecture`] and
//!   [`Implementation`], including the paper's §4 mode-switch condition
//!   (all modes of a module must write communicators with identical
//!   reliability constraints, so the analysis of one mode applies to all);
//! * [`printer`] — a pretty-printer whose output re-parses to the same
//!   program (round-trip tested).
//!
//! # Example
//!
//! ```
//! use logrel_lang::compile;
//!
//! let source = r#"
//! program demo {
//!     communicator s : float period 10 sensor;
//!     communicator u : float period 10 lrc 0.9;
//!     module m {
//!         start mode main period 10 {
//!             invoke ctrl reads s[0] writes u[1];
//!         }
//!     }
//!     architecture {
//!         host h1 reliability 0.99;
//!         sensor sn reliability 0.999;
//!         wcet ctrl on h1 2;
//!         wctt ctrl on h1 1;
//!     }
//!     map {
//!         ctrl -> h1;
//!         bind s -> sn;
//!     }
//! }
//! "#;
//! let system = compile(source).expect("compiles");
//! assert_eq!(system.spec.task_count(), 1);
//! ```
//!
//! [`Specification`]: logrel_core::Specification
//! [`Architecture`]: logrel_core::Architecture
//! [`Implementation`]: logrel_core::Implementation

pub mod ast;
pub mod elaborate;
pub mod emit;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod subspec;
pub mod token;

#[cfg(test)]
mod proptests;

pub use elaborate::{
    elaborate, elaborate_file, elaborate_modes, ElaboratedFile, ElaboratedMode, ElaboratedModes,
    ElaboratedSystem, ResolvedRefinement,
};
pub use emit::{emit_source, program_from_system};
pub use error::LangError;
pub use parser::{parse, parse_file};
pub use printer::print_program;
pub use subspec::{program_digest, split_units, units_digest, FnvWriter, SubspecUnit};

/// Parses and elaborates `source` in one step.
///
/// # Errors
///
/// Returns the first lexical, syntactic or semantic error with its source
/// position.
pub fn compile(source: &str) -> Result<ElaboratedSystem, LangError> {
    elaborate(&parse(source)?)
}
