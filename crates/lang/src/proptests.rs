//! Property-based round-trip tests: randomly generated programs survive
//! `print → parse` structurally intact, and generated *well-formed*
//! programs elaborate successfully.

#![cfg(test)]

use crate::ast::*;
use crate::parser::parse;
use crate::printer::print_program;
use crate::token::Span;
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9_]{0,6}".prop_filter("not a keyword", |s| {
        crate::token::Keyword::lookup(s).is_none()
    })
}

fn literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        (-1000i64..1000).prop_map(Literal::Int),
        (-100.0f64..100.0).prop_map(|x| Literal::Float((x * 8.0).round() / 8.0)),
        any::<bool>().prop_map(Literal::Bool),
    ]
}

fn type_name() -> impl Strategy<Value = TypeName> {
    prop_oneof![
        Just(TypeName::Float),
        Just(TypeName::Int),
        Just(TypeName::Bool)
    ]
}

/// A structurally arbitrary (not necessarily well-formed) program.
fn program() -> impl Strategy<Value = Program> {
    let z = Span::default();
    let comm = (ident(), type_name(), 1u64..100, proptest::option::of(literal()))
        .prop_map(move |(name, ty, period, init)| CommDecl {
            name,
            ty,
            period,
            init,
            lrc: None,
            sensor: false,
            span: z,
        });
    fn access() -> impl Strategy<Value = Access> {
        (ident(), 0u64..5).prop_map(|(comm, instance)| Access {
            comm,
            instance,
            span: Span::default(),
        })
    }
    let invocation = (
        ident(),
        prop_oneof![
            Just(ModelName::Series),
            Just(ModelName::Parallel),
            Just(ModelName::Independent)
        ],
        proptest::collection::vec(access(), 1..3),
        proptest::collection::vec(access(), 1..3),
        proptest::collection::vec(literal(), 0..3),
    )
        .prop_map(move |(task, model, reads, writes, defaults)| Invocation {
            task,
            model,
            reads,
            writes,
            defaults,
            span: z,
        });
    let mode = (
        ident(),
        any::<bool>(),
        1u64..1000,
        proptest::collection::vec(invocation, 0..3),
    )
        .prop_map(move |(name, start, period, invocations)| Mode {
            name,
            start,
            period,
            invocations,
            switches: Vec::new(),
            span: z,
        });
    let module = (ident(), proptest::collection::vec(mode, 1..3)).prop_map(
        move |(name, modes)| Module {
            name,
            modes,
            span: z,
        },
    );
    let arch_item = prop_oneof![
        (ident(), 0.01f64..1.0).prop_map(move |(name, rel)| ArchItem::Host {
            name,
            reliability: (rel * 1024.0).round() / 1024.0,
            span: z
        }),
        (ident(), 0.01f64..1.0).prop_map(move |(name, rel)| ArchItem::Sensor {
            name,
            reliability: (rel * 1024.0).round() / 1024.0,
            span: z
        }),
        (ident(), ident(), 1u64..50).prop_map(move |(task, host, ticks)| ArchItem::Wcet {
            task,
            host,
            ticks,
            span: z
        }),
        (ident(), ident(), 0u64..50).prop_map(move |(task, host, ticks)| ArchItem::Wctt {
            task,
            host,
            ticks,
            span: z
        }),
    ];
    let map_item = prop_oneof![
        (ident(), proptest::collection::vec(ident(), 1..3)).prop_map(
            move |(task, hosts)| MapItem::Assign {
                task,
                hosts,
                span: z
            }
        ),
        (ident(), proptest::collection::vec(ident(), 1..3)).prop_map(
            move |(comm, sensors)| MapItem::Bind {
                comm,
                sensors,
                span: z
            }
        ),
    ];
    (
        ident(),
        proptest::collection::vec(comm, 0..4),
        proptest::collection::vec(module, 0..2),
        proptest::collection::vec(arch_item, 0..4),
        proptest::collection::vec(map_item, 0..3),
    )
        .prop_map(|(name, communicators, modules, arch, map)| Program {
            name,
            communicators,
            modules,
            arch,
            map,
        })
}

/// Strips spans for structural comparison.
fn normalize(mut p: Program) -> Program {
    let z = Span::default();
    for c in &mut p.communicators {
        c.span = z;
    }
    for m in &mut p.modules {
        m.span = z;
        for mode in &mut m.modes {
            mode.span = z;
            for inv in &mut mode.invocations {
                inv.span = z;
                for a in inv.reads.iter_mut().chain(&mut inv.writes) {
                    a.span = z;
                }
            }
            for sw in &mut mode.switches {
                sw.span = z;
            }
        }
    }
    for item in &mut p.arch {
        match item {
            ArchItem::Host { span, .. }
            | ArchItem::Sensor { span, .. }
            | ArchItem::Broadcast { span, .. }
            | ArchItem::Wcet { span, .. }
            | ArchItem::Wctt { span, .. } => *span = z,
        }
    }
    for item in &mut p.map {
        match item {
            MapItem::Assign { span, .. } | MapItem::Bind { span, .. } => *span = z,
        }
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]
    #[test]
    fn print_parse_round_trip(p in program()) {
        let text = print_program(&p);
        let reparsed = parse(&text)
            .unwrap_or_else(|e| panic!("printer emitted unparseable text: {e}\n{text}"));
        prop_assert_eq!(normalize(p), normalize(reparsed));
    }
}
