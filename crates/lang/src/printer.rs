//! Pretty-printer: renders an AST back to parseable source.

use crate::ast::*;

fn literal(out: &mut String, lit: Literal) {
    match lit {
        Literal::Int(i) => out.push_str(&i.to_string()),
        Literal::Float(x) => {
            let s = format!("{x}");
            out.push_str(&s);
            // ensure it re-lexes as a float
            if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                out.push_str(".0");
            }
        }
        Literal::Bool(b) => out.push_str(if b { "true" } else { "false" }),
    }
}

fn number(out: &mut String, x: f64) {
    let s = format!("{x}");
    out.push_str(&s);
    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
        out.push_str(".0");
    }
}

fn access_list(out: &mut String, accesses: &[Access]) {
    for (i, a) in accesses.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("{}[{}]", a.comm, a.instance));
    }
}

/// Renders `program` as source text that re-parses to an equal AST
/// (modulo spans).
pub fn print_program(program: &Program) -> String {
    let mut out = String::new();
    out.push_str(&format!("program {} {{\n", program.name));

    for c in &program.communicators {
        let ty = match c.ty {
            TypeName::Float => "float",
            TypeName::Int => "int",
            TypeName::Bool => "bool",
        };
        out.push_str(&format!(
            "    communicator {} : {ty} period {}",
            c.name, c.period
        ));
        if let Some(init) = c.init {
            out.push_str(" init ");
            literal(&mut out, init);
        }
        if let Some(lrc) = c.lrc {
            out.push_str(" lrc ");
            number(&mut out, lrc);
        }
        if c.sensor {
            out.push_str(" sensor");
        }
        out.push_str(";\n");
    }

    for module in &program.modules {
        out.push_str(&format!("    module {} {{\n", module.name));
        for mode in &module.modes {
            out.push_str("        ");
            if mode.start {
                out.push_str("start ");
            }
            out.push_str(&format!("mode {} period {} {{\n", mode.name, mode.period));
            for inv in &mode.invocations {
                out.push_str(&format!("            invoke {}", inv.task));
                match inv.model {
                    ModelName::Series => {}
                    ModelName::Parallel => out.push_str(" model parallel"),
                    ModelName::Independent => out.push_str(" model independent"),
                }
                out.push_str(" reads ");
                access_list(&mut out, &inv.reads);
                out.push_str(" writes ");
                access_list(&mut out, &inv.writes);
                if !inv.defaults.is_empty() {
                    out.push_str(" defaults ");
                    for (i, &d) in inv.defaults.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        literal(&mut out, d);
                    }
                }
                out.push_str(";\n");
            }
            for sw in &mode.switches {
                out.push_str(&format!(
                    "            switch {} -> {};\n",
                    sw.event, sw.target
                ));
            }
            out.push_str("        }\n");
        }
        out.push_str("    }\n");
    }

    if !program.arch.is_empty() {
        out.push_str("    architecture {\n");
        for item in &program.arch {
            match item {
                ArchItem::Host {
                    name, reliability, ..
                } => {
                    out.push_str(&format!("        host {name} reliability "));
                    number(&mut out, *reliability);
                    out.push_str(";\n");
                }
                ArchItem::Sensor {
                    name, reliability, ..
                } => {
                    out.push_str(&format!("        sensor {name} reliability "));
                    number(&mut out, *reliability);
                    out.push_str(";\n");
                }
                ArchItem::Broadcast { reliability, .. } => {
                    out.push_str("        broadcast reliability ");
                    number(&mut out, *reliability);
                    out.push_str(";\n");
                }
                ArchItem::Wcet {
                    task, host, ticks, ..
                } => out.push_str(&format!("        wcet {task} on {host} {ticks};\n")),
                ArchItem::Wctt {
                    task, host, ticks, ..
                } => out.push_str(&format!("        wctt {task} on {host} {ticks};\n")),
            }
        }
        out.push_str("    }\n");
    }

    if !program.map.is_empty() {
        out.push_str("    map {\n");
        for item in &program.map {
            match item {
                MapItem::Assign { task, hosts, .. } => {
                    out.push_str(&format!("        {task} -> {};\n", hosts.join(", ")));
                }
                MapItem::Bind { comm, sensors, .. } => {
                    out.push_str(&format!(
                        "        bind {comm} -> {};\n",
                        sensors.join(", ")
                    ));
                }
            }
        }
        out.push_str("    }\n");
    }

    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// Strips spans so ASTs can be compared structurally.
    fn normalize(mut p: Program) -> Program {
        use crate::token::Span;
        let z = Span::default();
        for c in &mut p.communicators {
            c.span = z;
        }
        for m in &mut p.modules {
            m.span = z;
            for mode in &mut m.modes {
                mode.span = z;
                for inv in &mut mode.invocations {
                    inv.span = z;
                    for a in inv.reads.iter_mut().chain(&mut inv.writes) {
                        a.span = z;
                    }
                }
                for sw in &mut mode.switches {
                    sw.span = z;
                }
            }
        }
        for item in &mut p.arch {
            match item {
                ArchItem::Host { span, .. }
                | ArchItem::Sensor { span, .. }
                | ArchItem::Broadcast { span, .. }
                | ArchItem::Wcet { span, .. }
                | ArchItem::Wctt { span, .. } => *span = z,
            }
        }
        for item in &mut p.map {
            match item {
                MapItem::Assign { span, .. } | MapItem::Bind { span, .. } => *span = z,
            }
        }
        p
    }

    const SRC: &str = r#"
program demo {
    communicator s : float period 500 init -2.5 lrc 0.99 sensor;
    communicator u : int period 100 init 3;
    communicator b : bool period 100 init true;
    module control {
        start mode normal period 500 {
            invoke reader model parallel reads s[0] writes u[1], b[2] defaults 0.0;
            switch overload -> degraded;
        }
        mode degraded period 500 {
            invoke reader3 model independent reads s[0] writes u[1], b[2] defaults 1.0;
        }
    }
    architecture {
        host h1 reliability 0.999;
        sensor sn reliability 1;
        broadcast reliability 0.9999;
        wcet reader on h1 5;
        wctt reader on h1 2;
    }
    map {
        reader -> h1;
        bind s -> sn;
    }
}
"#;

    #[test]
    fn round_trip_parse_print_parse() {
        let p1 = parse(SRC).unwrap();
        let printed = print_program(&p1);
        let p2 = parse(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        assert_eq!(normalize(p1), normalize(p2));
    }

    #[test]
    fn printer_emits_floats_that_relex_as_floats() {
        let mut out = String::new();
        number(&mut out, 1.0);
        assert_eq!(out, "1.0");
        let mut out2 = String::new();
        literal(&mut out2, Literal::Float(-3.0));
        assert_eq!(out2, "-3.0");
    }

    #[test]
    fn printed_program_contains_all_names() {
        let p = parse(SRC).unwrap();
        let text = print_program(&p);
        for name in ["demo", "reader", "reader3", "degraded", "overload", "h1", "sn"] {
            assert!(text.contains(name), "missing {name}");
        }
    }
}
