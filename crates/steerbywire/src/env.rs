//! The closed-loop environment: driver scenario and vehicle.

use crate::plant::{SingleTrackPlant, VehicleParams};
use crate::system::SteerIds;
use logrel_core::{CommunicatorId, Tick, Value};
use logrel_sim::Environment;

/// A double lane change: the hand wheel follows one sine period between
/// `start` and `start + duration`, zero elsewhere.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaneChange {
    /// Manoeuvre start (s).
    pub start: f64,
    /// Manoeuvre duration (s).
    pub duration: f64,
    /// Hand-wheel amplitude (rad).
    pub amplitude: f64,
}

impl LaneChange {
    fn hand_wheel(&self, t: f64) -> f64 {
        if t < self.start || t > self.start + self.duration {
            0.0
        } else {
            let phase = (t - self.start) / self.duration;
            self.amplitude * (2.0 * std::f64::consts::PI * phase).sin()
        }
    }
}

/// Wires the vehicle to the program: `angle`, `speed` and `yaw` sample the
/// driver input and vehicle state; actuations of `cmd` set the road-wheel
/// command. One logical tick is `dt` seconds.
#[derive(Debug, Clone)]
pub struct SteerEnvironment {
    plant: SingleTrackPlant,
    ids: SteerIds,
    dt: f64,
    last: Tick,
    scenario: LaneChange,
    /// Log of (instant, |yaw-rate error|): actual vs the geared reference.
    error_log: Vec<(Tick, f64)>,
    steering_ratio: f64,
}

impl SteerEnvironment {
    /// Creates the environment at `speed` m/s with a lane-change scenario.
    pub fn new(
        params: VehicleParams,
        ids: SteerIds,
        dt: f64,
        speed: f64,
        scenario: LaneChange,
        steering_ratio: f64,
    ) -> Self {
        SteerEnvironment {
            plant: SingleTrackPlant::new(params, speed),
            ids,
            dt,
            last: Tick::ZERO,
            scenario,
            error_log: Vec::new(),
            steering_ratio,
        }
    }

    /// The vehicle, for inspection.
    pub fn plant(&self) -> &SingleTrackPlant {
        &self.plant
    }

    /// The raw (instant, |yaw-rate error|) log.
    pub fn error_log(&self) -> &[(Tick, f64)] {
        &self.error_log
    }

    /// Mean |yaw-rate error| over instants at or after `from`.
    pub fn mean_yaw_error_since(&self, from: Tick) -> f64 {
        let e: Vec<f64> = self
            .error_log
            .iter()
            .filter(|(t, _)| *t >= from)
            .map(|&(_, e)| e)
            .collect();
        if e.is_empty() {
            0.0
        } else {
            e.iter().sum::<f64>() / e.len() as f64
        }
    }
}

impl Environment for SteerEnvironment {
    fn advance(&mut self, now: Tick) {
        let steps = now - self.last;
        for _ in 0..steps {
            self.plant.step(self.dt);
        }
        self.last = now;
        // Reference yaw rate: the geared hand wheel through the
        // steady-state gain; error = tracking deviation.
        let t = now.as_u64() as f64 * self.dt;
        let reference = self.plant.steady_state_yaw_gain() * self.scenario.hand_wheel(t)
            / self.steering_ratio;
        self.error_log
            .push((now, (self.plant.state().yaw_rate - reference).abs()));
    }

    fn sense(&mut self, comm: CommunicatorId, now: Tick) -> Value {
        let t = now.as_u64() as f64 * self.dt;
        if comm == self.ids.angle {
            Value::Float(self.scenario.hand_wheel(t))
        } else if comm == self.ids.speed {
            Value::Float(self.plant.speed())
        } else if comm == self.ids.yaw {
            Value::Float(self.plant.state().yaw_rate)
        } else {
            Value::Unreliable
        }
    }

    fn actuate(&mut self, comm: CommunicatorId, value: Value, _now: Tick) {
        if comm == self.ids.cmd {
            if let Some(v) = value.as_float() {
                // ⊥ keeps the previous command (a real rack holds).
                self.plant.set_command(v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{SteerScenario, SteerSystem};

    fn env() -> SteerEnvironment {
        let sys = SteerSystem::new(SteerScenario::SingleEcu, None).unwrap();
        SteerEnvironment::new(
            VehicleParams::default(),
            sys.ids,
            0.001,
            25.0,
            LaneChange {
                start: 1.0,
                duration: 2.0,
                amplitude: 1.0,
            },
            sys.gains.steering_ratio,
        )
    }

    #[test]
    fn scenario_shapes_the_hand_wheel() {
        let lc = LaneChange {
            start: 1.0,
            duration: 2.0,
            amplitude: 1.0,
        };
        assert_eq!(lc.hand_wheel(0.5), 0.0);
        assert!(lc.hand_wheel(1.5) > 0.9); // quarter period: peak
        assert!(lc.hand_wheel(2.5) < -0.9); // three quarters: trough
        assert_eq!(lc.hand_wheel(4.0), 0.0);
    }

    #[test]
    fn sensing_reports_driver_and_vehicle() {
        let mut e = env();
        let ids = e.ids;
        assert_eq!(e.sense(ids.speed, Tick::ZERO), Value::Float(25.0));
        assert_eq!(e.sense(ids.yaw, Tick::ZERO), Value::Float(0.0));
        let mid = Tick::new(1500);
        assert!(e.sense(ids.angle, mid).as_float().unwrap() > 0.9);
        assert_eq!(e.sense(ids.filtered, Tick::ZERO), Value::Unreliable);
    }

    #[test]
    fn actuation_turns_the_car() {
        let mut e = env();
        let ids = e.ids;
        e.actuate(ids.cmd, Value::Float(0.05), Tick::ZERO);
        e.advance(Tick::new(2000));
        assert!(e.plant().state().yaw_rate > 0.05);
        // ⊥ holds the last command.
        e.actuate(ids.cmd, Value::Unreliable, Tick::new(2000));
        assert!((e.plant().command() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn error_log_accumulates() {
        let mut e = env();
        e.advance(Tick::new(10));
        e.advance(Tick::new(20));
        assert_eq!(e.error_log.len(), 2);
        assert_eq!(e.mean_yaw_error_since(Tick::new(1000)), 0.0);
    }
}
