//! Steer-by-wire case study — the paper's other motivating domain
//! ("automotive stability controllers").
//!
//! A hand-wheel angle sensor and a vehicle-speed sensor feed a steering
//! command for the road-wheel actuator; a yaw-damping term stabilises the
//! vehicle at speed. The control path is replicated on two ECUs, matching
//! the deployment pattern of the paper's §4 scenario 1.
//!
//! * [`plant`] — a linear single-track (bicycle) lateral-dynamics model
//!   with a first-order steering actuator, integrated with RK4;
//! * [`control`] — the stateless control laws;
//! * [`system`] — the specification (10 ms steering loop inside a 50 ms
//!   round), the two-ECU + gateway architecture and the deployments;
//! * [`env`](mod@crate::env) — the closed-loop environment: a driver lane-change scenario
//!   driving the sensors, the command actuating the rack;
//! * [`behaviors`] — task behaviours for the runtime simulator.

pub mod behaviors;
pub mod control;
pub mod env;
pub mod plant;
pub mod system;

pub use env::SteerEnvironment;
pub use plant::{VehicleParams, VehicleState, SingleTrackPlant};
pub use system::{SteerIds, SteerScenario, SteerSystem};
