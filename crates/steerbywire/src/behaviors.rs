//! Task behaviours for the runtime simulator.

use crate::control::{filter_hand_wheel, plausibility, steering_command, SteerGains};
use crate::plant::VehicleParams;
use crate::system::SteerSystem;
use logrel_core::Value;
use logrel_sim::BehaviorMap;

/// Builds the behaviour registry for the three steering tasks.
pub fn build_behaviors(sys: &SteerSystem, params: &VehicleParams) -> BehaviorMap {
    let gains: SteerGains = sys.gains;
    let max_road_wheel = params.max_road_wheel;
    let mut map = BehaviorMap::new();
    map.register(sys.ids.filter, move |inputs: &[Value]| {
        vec![Value::Float(filter_hand_wheel(
            inputs[0].as_float().unwrap_or(0.0),
            gains.max_hand_wheel,
        ))]
    });
    map.register(sys.ids.steer, move |inputs: &[Value]| {
        let hand_wheel = inputs[0].as_float().unwrap_or(0.0);
        let speed = inputs[1].as_float().unwrap_or(1.0);
        let yaw = inputs[2].as_float().unwrap_or(0.0);
        vec![Value::Float(steering_command(
            hand_wheel, yaw, speed, &gains,
        ))]
    });
    map.register(sys.ids.monitor, move |inputs: &[Value]| {
        let cmd = inputs[0].as_float().unwrap_or(0.0);
        vec![Value::Bool(plausibility(cmd, max_road_wheel))]
    });
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::SteerScenario;

    #[test]
    fn all_tasks_registered_and_sane() {
        let sys = SteerSystem::new(SteerScenario::SingleEcu, None).unwrap();
        let mut map = build_behaviors(&sys, &VehicleParams::default());
        for t in [sys.ids.filter, sys.ids.steer, sys.ids.monitor] {
            assert!(map.contains(t));
        }
        let out = map.invoke(
            &sys.spec,
            sys.ids.steer,
            &[Value::Float(1.6), Value::Float(25.0), Value::Float(0.0)],
        );
        assert!((out[0].as_float().unwrap() - 0.1).abs() < 1e-12);
        let diag = map.invoke(&sys.spec, sys.ids.monitor, &[Value::Float(0.1)]);
        assert_eq!(diag[0], Value::Bool(true));
    }
}
