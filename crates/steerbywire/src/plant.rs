//! The linear single-track ("bicycle") lateral vehicle model.
//!
//! States: lateral velocity `v_y` (m/s), yaw rate `r` (rad/s) and the
//! road-wheel angle `δ` (rad), where the steering actuator follows its
//! command with a first-order lag. Longitudinal speed `v_x` is a slowly
//! varying parameter set by the scenario. Standard linear tyre model:
//!
//! ```text
//! v̇_y = (−(C_f + C_r)/(m·v_x))·v_y + ((C_r·l_r − C_f·l_f)/(m·v_x) − v_x)·r + (C_f/m)·δ
//! ṙ   = ((C_r·l_r − C_f·l_f)/(I_z·v_x))·v_y − ((C_f·l_f² + C_r·l_r²)/(I_z·v_x))·r + (C_f·l_f/I_z)·δ
//! δ̇   = (δ_cmd − δ)/τ
//! ```

/// Vehicle and actuator parameters (a mid-size passenger car).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VehicleParams {
    /// Vehicle mass (kg).
    pub mass: f64,
    /// Yaw moment of inertia (kg·m²).
    pub inertia: f64,
    /// Distance CoG → front axle (m).
    pub lf: f64,
    /// Distance CoG → rear axle (m).
    pub lr: f64,
    /// Front cornering stiffness (N/rad).
    pub cf: f64,
    /// Rear cornering stiffness (N/rad).
    pub cr: f64,
    /// Steering-actuator time constant (s).
    pub actuator_tau: f64,
    /// Road-wheel angle saturation (rad).
    pub max_road_wheel: f64,
}

impl Default for VehicleParams {
    fn default() -> Self {
        VehicleParams {
            mass: 1500.0,
            inertia: 2500.0,
            lf: 1.2,
            lr: 1.5,
            cf: 80_000.0,
            cr: 90_000.0,
            actuator_tau: 0.05,
            max_road_wheel: 0.6,
        }
    }
}

/// The lateral-dynamics state.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct VehicleState {
    /// Lateral velocity (m/s).
    pub vy: f64,
    /// Yaw rate (rad/s).
    pub yaw_rate: f64,
    /// Road-wheel angle (rad).
    pub road_wheel: f64,
    /// Accumulated lateral position (m), for lane-change metrics.
    pub lateral_position: f64,
    /// Accumulated heading (rad).
    pub heading: f64,
}

/// The simulated vehicle.
///
/// # Example
///
/// ```
/// use logrel_steerbywire::{SingleTrackPlant, VehicleParams};
///
/// let mut car = SingleTrackPlant::new(VehicleParams::default(), 25.0);
/// car.set_command(0.02); // ~1.1° road-wheel step
/// for _ in 0..3000 {
///     car.step(0.001); // 3 s
/// }
/// assert!(car.state().yaw_rate > 0.05);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SingleTrackPlant {
    params: VehicleParams,
    state: VehicleState,
    speed: f64,
    command: f64,
}

impl SingleTrackPlant {
    /// A vehicle travelling straight at `speed` m/s.
    ///
    /// # Panics
    ///
    /// Panics if `speed` is not strictly positive (the linear model
    /// degenerates at standstill).
    pub fn new(params: VehicleParams, speed: f64) -> Self {
        assert!(speed > 0.0, "the single-track model needs v_x > 0");
        SingleTrackPlant {
            params,
            state: VehicleState::default(),
            speed,
            command: 0.0,
        }
    }

    /// The current state.
    pub fn state(&self) -> VehicleState {
        self.state
    }

    /// The longitudinal speed (m/s).
    pub fn speed(&self) -> f64 {
        self.speed
    }

    /// Sets the longitudinal speed (clamped to ≥ 1 m/s).
    pub fn set_speed(&mut self, speed: f64) {
        self.speed = speed.max(1.0);
    }

    /// Sets the road-wheel angle command (saturated).
    pub fn set_command(&mut self, command: f64) {
        self.command = command.clamp(-self.params.max_road_wheel, self.params.max_road_wheel);
    }

    /// The current (saturated) command.
    pub fn command(&self) -> f64 {
        self.command
    }

    /// The steady-state yaw-rate gain `r/δ` of the model at the current
    /// speed — used to validate the simulation against the closed form
    /// `v_x / (L + K_us·v_x²)` with understeer gradient
    /// `K_us = m·(C_r·l_r − C_f·l_f)/(C_f·C_r·L)`.
    pub fn steady_state_yaw_gain(&self) -> f64 {
        let p = &self.params;
        let wheelbase = p.lf + p.lr;
        let kus = p.mass * (p.cr * p.lr - p.cf * p.lf) / (p.cf * p.cr * wheelbase);
        self.speed / (wheelbase + kus * self.speed * self.speed)
    }

    fn derivatives(&self, s: VehicleState) -> [f64; 5] {
        let p = &self.params;
        let vx = self.speed;
        let dvy = (-(p.cf + p.cr) / (p.mass * vx)) * s.vy
            + ((p.cr * p.lr - p.cf * p.lf) / (p.mass * vx) - vx) * s.yaw_rate
            + (p.cf / p.mass) * s.road_wheel;
        let dr = ((p.cr * p.lr - p.cf * p.lf) / (p.inertia * vx)) * s.vy
            - ((p.cf * p.lf * p.lf + p.cr * p.lr * p.lr) / (p.inertia * vx)) * s.yaw_rate
            + (p.cf * p.lf / p.inertia) * s.road_wheel;
        let ddelta = (self.command - s.road_wheel) / p.actuator_tau;
        let dy = s.vy + vx * s.heading; // small-angle lateral drift
        let dpsi = s.yaw_rate;
        [dvy, dr, ddelta, dy, dpsi]
    }

    /// Advances the vehicle by `dt` seconds (one RK4 step).
    pub fn step(&mut self, dt: f64) {
        let s = self.state;
        let add = |s: VehicleState, k: [f64; 5], f: f64| VehicleState {
            vy: s.vy + f * k[0],
            yaw_rate: s.yaw_rate + f * k[1],
            road_wheel: s.road_wheel + f * k[2],
            lateral_position: s.lateral_position + f * k[3],
            heading: s.heading + f * k[4],
        };
        let k1 = self.derivatives(s);
        let k2 = self.derivatives(add(s, k1, dt / 2.0));
        let k3 = self.derivatives(add(s, k2, dt / 2.0));
        let k4 = self.derivatives(add(s, k3, dt));
        self.state = VehicleState {
            vy: s.vy + dt / 6.0 * (k1[0] + 2.0 * k2[0] + 2.0 * k3[0] + k4[0]),
            yaw_rate: s.yaw_rate + dt / 6.0 * (k1[1] + 2.0 * k2[1] + 2.0 * k3[1] + k4[1]),
            road_wheel: s.road_wheel + dt / 6.0 * (k1[2] + 2.0 * k2[2] + 2.0 * k3[2] + k4[2]),
            lateral_position: s.lateral_position
                + dt / 6.0 * (k1[3] + 2.0 * k2[3] + 2.0 * k3[3] + k4[3]),
            heading: s.heading + dt / 6.0 * (k1[4] + 2.0 * k2[4] + 2.0 * k3[4] + k4[4]),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(car: &mut SingleTrackPlant, seconds: f64) {
        for _ in 0..(seconds / 0.001) as usize {
            car.step(0.001);
        }
    }

    #[test]
    fn straight_driving_stays_straight() {
        let mut car = SingleTrackPlant::new(VehicleParams::default(), 30.0);
        run(&mut car, 5.0);
        let s = car.state();
        assert!(s.yaw_rate.abs() < 1e-9);
        assert!(s.lateral_position.abs() < 1e-9);
    }

    #[test]
    fn step_steer_matches_the_steady_state_gain() {
        let mut car = SingleTrackPlant::new(VehicleParams::default(), 25.0);
        let delta = 0.02;
        car.set_command(delta);
        run(&mut car, 5.0);
        let expected = car.steady_state_yaw_gain() * delta;
        let got = car.state().yaw_rate;
        assert!(
            (got - expected).abs() < 0.02 * expected.abs().max(1e-6),
            "yaw rate {got} vs closed form {expected}"
        );
    }

    #[test]
    fn actuator_lags_and_saturates() {
        let mut car = SingleTrackPlant::new(VehicleParams::default(), 20.0);
        car.set_command(10.0); // far beyond saturation
        assert!((car.command() - 0.6).abs() < 1e-12);
        car.step(0.001);
        assert!(car.state().road_wheel < 0.1, "first-order lag, not a jump");
        run(&mut car, 1.0);
        assert!((car.state().road_wheel - 0.6).abs() < 1e-3);
    }

    #[test]
    fn left_steer_moves_left() {
        let mut car = SingleTrackPlant::new(VehicleParams::default(), 20.0);
        car.set_command(0.05);
        run(&mut car, 2.0);
        assert!(car.state().lateral_position > 0.5);
        assert!(car.state().heading > 0.0);
    }

    #[test]
    fn speed_is_clamped_positive() {
        let mut car = SingleTrackPlant::new(VehicleParams::default(), 10.0);
        car.set_speed(-5.0);
        assert_eq!(car.speed(), 1.0);
    }

    #[test]
    #[should_panic(expected = "v_x > 0")]
    fn zero_speed_is_rejected() {
        SingleTrackPlant::new(VehicleParams::default(), 0.0);
    }

    #[test]
    fn dynamics_are_stable_at_highway_speed() {
        let mut car = SingleTrackPlant::new(VehicleParams::default(), 35.0);
        car.set_command(0.03);
        run(&mut car, 1.0);
        car.set_command(0.0);
        run(&mut car, 5.0);
        let s = car.state();
        assert!(s.yaw_rate.abs() < 1e-3, "yaw rate must decay: {}", s.yaw_rate);
        assert!(s.vy.abs() < 1e-2);
    }
}
