//! The steer-by-wire specification, architecture and deployments.
//!
//! Timing (one round π_S = 50 ticks, 1 tick = 1 ms):
//!
//! | task      | reads                               | writes     | LET      | model    |
//! |-----------|-------------------------------------|------------|----------|----------|
//! | `filter`  | `angle[0]` @0                       | `filtered[1]` | [0, 10] | series |
//! | `steer`   | `filtered[1]`, `speed[0]`, `yaw[1]` | `cmd[3]`   | [10, 30] | series   |
//! | `monitor` | `cmd[3]` @30                        | `diag[1]`  | [30, 50] | parallel |

use crate::control::SteerGains;
use logrel_core::{
    Architecture, CommunicatorDecl, CommunicatorId, CoreError, FailureModel, HostId,
    Implementation, Reliability, SensorId, Specification, TaskDecl, TaskId, Value, ValueType,
};

/// Ids of the steer-by-wire entities.
#[derive(Debug, Clone, Copy)]
#[allow(missing_docs)]
pub struct SteerIds {
    pub angle: CommunicatorId,
    pub speed: CommunicatorId,
    pub yaw: CommunicatorId,
    pub filtered: CommunicatorId,
    pub cmd: CommunicatorId,
    pub diag: CommunicatorId,
    pub filter: TaskId,
    pub steer: TaskId,
    pub monitor: TaskId,
    pub ecu_a: HostId,
    pub ecu_b: HostId,
    pub gateway: HostId,
    pub hand_wheel: SensorId,
    pub speed_sensor: SensorId,
    pub gyro: SensorId,
}

/// Deployment scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SteerScenario {
    /// The whole control path on one ECU (monitor on the gateway).
    SingleEcu,
    /// `filter` and `steer` replicated on both ECUs.
    ReplicatedEcus,
}

/// A complete, validated steer-by-wire system.
#[derive(Debug, Clone)]
pub struct SteerSystem {
    /// The specification.
    pub spec: Specification,
    /// The architecture.
    pub arch: Architecture,
    /// The deployment.
    pub imp: Implementation,
    /// All ids.
    pub ids: SteerIds,
    /// The scenario.
    pub scenario: SteerScenario,
    /// Controller gains used by the behaviours.
    pub gains: SteerGains,
}

impl SteerSystem {
    /// Builds a scenario with the default reliabilities (ECUs 0.997,
    /// gateway 0.9995) and an optional LRC on the steering command.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] if `lrc_cmd` is outside `(0, 1]`.
    pub fn new(scenario: SteerScenario, lrc_cmd: Option<f64>) -> Result<Self, CoreError> {
        let lrc = lrc_cmd.map(Reliability::new).transpose()?;

        let mut sb = Specification::builder();
        let fcomm = |n: &str, p: u64| CommunicatorDecl::new(n, ValueType::Float, p);
        let angle = sb.communicator(fcomm("angle", 10)?.from_sensor())?;
        let speed = sb.communicator(fcomm("speed", 50)?.from_sensor())?;
        let yaw = sb.communicator(fcomm("yaw", 10)?.from_sensor())?;
        let filtered = sb.communicator(fcomm("filtered", 10)?)?;
        let mut cmd_decl = fcomm("cmd", 10)?;
        if let Some(m) = lrc {
            cmd_decl = cmd_decl.with_lrc(m);
        }
        let cmd = sb.communicator(cmd_decl)?;
        let diag = sb.communicator(
            CommunicatorDecl::new("diag", ValueType::Bool, 50)?
                .with_init(Value::Bool(true))?,
        )?;

        let filter = sb.task(TaskDecl::new("filter").reads(angle, 0).writes(filtered, 1))?;
        let steer = sb.task(
            TaskDecl::new("steer")
                .reads(filtered, 1)
                .reads(speed, 0)
                .reads(yaw, 1)
                .writes(cmd, 3),
        )?;
        let monitor = sb.task(
            TaskDecl::new("monitor")
                .reads(cmd, 3)
                .writes(diag, 1)
                .model(FailureModel::Parallel)
                .default_value(Value::Float(0.0)),
        )?;
        let spec = sb.build()?;

        let mut ab = Architecture::builder();
        let ecu = Reliability::new(0.997)?;
        let ecu_a = ab.host(logrel_core::HostDecl::new("ecu_a", ecu))?;
        let ecu_b = ab.host(logrel_core::HostDecl::new("ecu_b", ecu))?;
        let gateway = ab.host(logrel_core::HostDecl::new("gateway", Reliability::new(0.9995)?))?;
        let hand_wheel =
            ab.sensor(logrel_core::SensorDecl::new("hand_wheel", Reliability::new(0.9999)?))?;
        let speed_sensor = ab.sensor(logrel_core::SensorDecl::new(
            "speed_sensor",
            Reliability::new(0.99999)?,
        ))?;
        let gyro = ab.sensor(logrel_core::SensorDecl::new("gyro", Reliability::new(0.9995)?))?;
        ab.wcet_all(filter, 2)?;
        ab.wctt_all(filter, 1)?;
        ab.wcet_all(steer, 5)?;
        ab.wctt_all(steer, 1)?;
        ab.wcet_all(monitor, 5)?;
        ab.wctt_all(monitor, 1)?;
        let arch = ab.build();

        let control_hosts: Vec<HostId> = match scenario {
            SteerScenario::SingleEcu => vec![ecu_a],
            SteerScenario::ReplicatedEcus => vec![ecu_a, ecu_b],
        };
        let imp = Implementation::builder()
            .assign(filter, control_hosts.clone())
            .assign(steer, control_hosts)
            .assign(monitor, [gateway])
            .bind_sensor(angle, hand_wheel)
            .bind_sensor(speed, speed_sensor)
            .bind_sensor(yaw, gyro)
            .build(&spec, &arch)?;

        Ok(SteerSystem {
            spec,
            arch,
            imp,
            ids: SteerIds {
                angle,
                speed,
                yaw,
                filtered,
                cmd,
                diag,
                filter,
                steer,
                monitor,
                ecu_a,
                ecu_b,
                gateway,
                hand_wheel,
                speed_sensor,
                gyro,
            },
            scenario,
            gains: SteerGains::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_is_50ms_and_lets_match() {
        let sys = SteerSystem::new(SteerScenario::SingleEcu, None).unwrap();
        assert_eq!(sys.spec.round_period().as_u64(), 50);
        assert_eq!(sys.spec.read_time(sys.ids.filter).as_u64(), 0);
        assert_eq!(sys.spec.write_time(sys.ids.filter).as_u64(), 10);
        assert_eq!(sys.spec.read_time(sys.ids.steer).as_u64(), 10);
        assert_eq!(sys.spec.write_time(sys.ids.steer).as_u64(), 30);
        assert_eq!(sys.spec.read_time(sys.ids.monitor).as_u64(), 30);
        assert_eq!(sys.spec.write_time(sys.ids.monitor).as_u64(), 50);
    }

    #[test]
    fn replication_scenario_doubles_the_control_path() {
        let single = SteerSystem::new(SteerScenario::SingleEcu, None).unwrap();
        let duo = SteerSystem::new(SteerScenario::ReplicatedEcus, None).unwrap();
        assert_eq!(single.imp.hosts_of(single.ids.steer).len(), 1);
        assert_eq!(duo.imp.hosts_of(duo.ids.steer).len(), 2);
        assert_eq!(duo.imp.hosts_of(duo.ids.monitor).len(), 1);
    }

    #[test]
    fn replication_meets_a_strict_command_lrc() {
        // λ(cmd) single: 0.997² · sensors ≈ 0.9925 < 0.998;
        // replicated: (1-0.003²)² · sensors ≈ 0.9984 ≥ 0.998.
        let single = SteerSystem::new(SteerScenario::SingleEcu, Some(0.998)).unwrap();
        let duo = SteerSystem::new(SteerScenario::ReplicatedEcus, Some(0.998)).unwrap();
        let v1 = logrel_reliability::check(&single.spec, &single.arch, &single.imp).unwrap();
        let v2 = logrel_reliability::check(&duo.spec, &duo.arch, &duo.imp).unwrap();
        assert!(!v1.is_reliable());
        assert!(v2.is_reliable(), "λ(cmd) = {}", v2.long_run_srg(duo.ids.cmd));
    }

    #[test]
    fn both_scenarios_are_schedulable_with_30ms_actuation_age() {
        for scenario in [SteerScenario::SingleEcu, SteerScenario::ReplicatedEcus] {
            let sys = SteerSystem::new(scenario, None).unwrap();
            logrel_sched::analyze(&sys.spec, &sys.arch, &sys.imp).unwrap();
            let ages = logrel_sched::data_ages(&sys.spec);
            assert_eq!(ages.age(sys.ids.cmd), Some(30));
        }
    }
}
