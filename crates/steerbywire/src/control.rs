//! The stateless steering control laws.

/// Filters the raw hand-wheel sample (tasks are stateless, so this is a
/// clamping pass-through; a real column would low-pass via an extra
/// communicator).
pub fn filter_hand_wheel(raw: f64, max: f64) -> f64 {
    raw.clamp(-max, max)
}

/// The steering command law (task `torque`): geared hand-wheel angle plus
/// speed-scheduled yaw damping,
/// `δ_cmd = θ / ratio − k_yaw(v) · r`, with `k_yaw(v) = k·v / (1 + (v/v₀)²)`.
pub fn steering_command(
    hand_wheel: f64,
    yaw_rate: f64,
    speed: f64,
    gains: &SteerGains,
) -> f64 {
    let k_yaw = gains.yaw_damping * speed / (1.0 + (speed / gains.damping_corner).powi(2));
    hand_wheel / gains.steering_ratio - k_yaw * yaw_rate
}

/// Diagnostic plausibility check (task `monitor`): flags commands that
/// exceed the physically plausible road-wheel range.
pub fn plausibility(command: f64, max_road_wheel: f64) -> bool {
    command.abs() <= max_road_wheel * 1.05
}

/// Gains of the steer-by-wire controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SteerGains {
    /// Hand-wheel to road-wheel ratio.
    pub steering_ratio: f64,
    /// Yaw-damping gain (s·rad⁻¹ scale factor).
    pub yaw_damping: f64,
    /// Speed at which damping rolls off (m/s).
    pub damping_corner: f64,
    /// Hand-wheel saturation (rad).
    pub max_hand_wheel: f64,
}

impl Default for SteerGains {
    fn default() -> Self {
        SteerGains {
            steering_ratio: 16.0,
            yaw_damping: 0.004,
            damping_corner: 20.0,
            max_hand_wheel: 8.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_clamps() {
        assert_eq!(filter_hand_wheel(0.5, 8.0), 0.5);
        assert_eq!(filter_hand_wheel(100.0, 8.0), 8.0);
        assert_eq!(filter_hand_wheel(-100.0, 8.0), -8.0);
    }

    #[test]
    fn command_follows_the_gear_ratio() {
        let g = SteerGains::default();
        let cmd = steering_command(1.6, 0.0, 25.0, &g);
        assert!((cmd - 0.1).abs() < 1e-12);
    }

    #[test]
    fn yaw_damping_opposes_rotation() {
        let g = SteerGains::default();
        let neutral = steering_command(0.0, 0.0, 25.0, &g);
        let yawing = steering_command(0.0, 0.5, 25.0, &g);
        assert_eq!(neutral, 0.0);
        assert!(yawing < 0.0, "damping must counter-steer");
    }

    #[test]
    fn damping_rolls_off_at_high_speed() {
        let g = SteerGains::default();
        let k = |v: f64| -steering_command(0.0, 1.0, v, &g);
        assert!(k(20.0) > k(60.0) * 0.9, "k(20)={}, k(60)={}", k(20.0), k(60.0));
        assert!(k(5.0) < k(20.0));
    }

    #[test]
    fn plausibility_flags_outliers() {
        assert!(plausibility(0.3, 0.6));
        assert!(!plausibility(0.7, 0.6));
        assert!(plausibility(-0.6, 0.6));
    }
}
