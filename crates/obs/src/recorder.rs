//! The flight recorder: a bounded ring buffer of recent structured
//! events, snapshotted ("dumped") when something goes wrong.
//!
//! The recorder is deliberately small and allocation-free in steady
//! state: pushing an event into a full ring evicts the oldest one. When
//! an LRC alarm is raised the recorder automatically snapshots the ring
//! into a [`Dump`], so the events *leading up to* the violation are
//! preserved even if the run continues for millions of rounds
//! afterwards. Drivers can also snapshot on demand ([`FlightRecorder::dump_now`])
//! or when a panic unwinds through them.
//!
//! Events carry raw index-space identifiers (task, host and communicator
//! indices from the compiled round program) rather than names — the
//! recorder must not borrow from the specification. Pretty-printers
//! resolve names at render time.

use std::collections::VecDeque;

/// How a vote over delivering replicas resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum VoteOutcome {
    /// Every delivering replica agreed on every output position.
    Unanimous,
    /// At least one disagreement, but every output position had a strict
    /// majority value.
    Majority,
    /// Some output position had no strict majority (the vote falls back
    /// to defaults / previous values for that position).
    Tie,
    /// No replica delivered at all.
    Silent,
}

impl VoteOutcome {
    /// Stable lowercase label used by exporters and pretty-printers.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            VoteOutcome::Unanimous => "unanimous",
            VoteOutcome::Majority => "majority",
            VoteOutcome::Tie => "tie",
            VoteOutcome::Silent => "silent",
        }
    }
}

/// Why a replica invocation did not deliver into its vote.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DropReason {
    /// The logical task did not execute this instant (failed inputs).
    NotExecuted,
    /// The replica's host failed its availability draw.
    HostDown,
    /// The host was up but the result broadcast was lost.
    Broadcast,
    /// A stateful replica was still warming up after its host rejoined.
    Warmup,
    /// A supervisor (degrader) excluded the replica.
    Excluded,
}

impl DropReason {
    /// Stable lowercase label used by exporters and pretty-printers.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            DropReason::NotExecuted => "not-executed",
            DropReason::HostDown => "host-down",
            DropReason::Broadcast => "broadcast",
            DropReason::Warmup => "warmup",
            DropReason::Excluded => "excluded",
        }
    }
}

/// One structured event in the flight-recorder ring.
///
/// `at` is the logical instant (micro-round clock) at which the event
/// was observed; indices are positions in the compiled round program.
#[derive(Debug, Clone, PartialEq)]
pub enum ObsEvent {
    /// A vote over a task's replicas resolved.
    Vote {
        /// Logical instant of the read.
        at: u64,
        /// Task index in the round program.
        task: usize,
        /// How the vote resolved.
        outcome: VoteOutcome,
        /// Number of replicas that delivered into the vote.
        delivered: usize,
        /// Number of replicas configured for the task.
        replicas: usize,
    },
    /// A replica invocation was dropped from its vote.
    ReplicaDrop {
        /// Logical instant of the read.
        at: u64,
        /// Task index in the round program.
        task: usize,
        /// Host index the replica was placed on.
        host: usize,
        /// Why the replica did not deliver.
        reason: DropReason,
    },
    /// A host was observed transitioning up → down.
    HostDown {
        /// Logical instant of the observation.
        at: u64,
        /// Host index.
        host: usize,
    },
    /// A host was observed transitioning down → up.
    HostUp {
        /// Logical instant of the observation.
        at: u64,
        /// Host index.
        host: usize,
    },
    /// The LRC monitor raised an alarm on a communicator.
    AlarmRaised {
        /// Logical instant at which the window completed.
        at: u64,
        /// Communicator index the alarm concerns.
        comm: usize,
        /// Observed empirical reliability over the window.
        mean: f64,
        /// Hoeffding half-width of the monitor's confidence band.
        epsilon: f64,
        /// The long-run constraint being monitored.
        lrc: f64,
    },
    /// The LRC monitor cleared a previously raised alarm.
    AlarmCleared {
        /// Logical instant at which the window completed.
        at: u64,
        /// Communicator index the alarm concerned.
        comm: usize,
        /// Observed empirical reliability over the window.
        mean: f64,
    },
    /// A degradation rule latched.
    DegraderEngaged {
        /// Logical instant of engagement.
        at: u64,
        /// Index of the rule that engaged.
        rule: usize,
    },
    /// The degrader emitted an E-machine mode-switch event.
    ModeSwitch {
        /// Logical instant of the switch.
        at: u64,
        /// Symbolic mode-event name.
        event: String,
    },
}

impl ObsEvent {
    /// The logical instant the event was observed at.
    #[must_use]
    pub fn at(&self) -> u64 {
        match self {
            ObsEvent::Vote { at, .. }
            | ObsEvent::ReplicaDrop { at, .. }
            | ObsEvent::HostDown { at, .. }
            | ObsEvent::HostUp { at, .. }
            | ObsEvent::AlarmRaised { at, .. }
            | ObsEvent::AlarmCleared { at, .. }
            | ObsEvent::DegraderEngaged { at, .. }
            | ObsEvent::ModeSwitch { at, .. } => *at,
        }
    }

    /// Stable kebab-case tag naming the event variant.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            ObsEvent::Vote { .. } => "vote",
            ObsEvent::ReplicaDrop { .. } => "replica-drop",
            ObsEvent::HostDown { .. } => "host-down",
            ObsEvent::HostUp { .. } => "host-up",
            ObsEvent::AlarmRaised { .. } => "alarm-raised",
            ObsEvent::AlarmCleared { .. } => "alarm-cleared",
            ObsEvent::DegraderEngaged { .. } => "degrader-engaged",
            ObsEvent::ModeSwitch { .. } => "mode-switch",
        }
    }
}

/// What caused a [`Dump`] to be taken.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DumpTrigger {
    /// The LRC monitor raised an alarm on the given communicator index.
    AlarmRaised {
        /// Communicator index the alarm concerned.
        comm: usize,
    },
    /// A driver requested the dump explicitly.
    Manual,
    /// A panic unwound through the driver.
    Panic,
}

impl DumpTrigger {
    /// Stable kebab-case label for exporters.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            DumpTrigger::AlarmRaised { .. } => "alarm-raised",
            DumpTrigger::Manual => "manual",
            DumpTrigger::Panic => "panic",
        }
    }
}

/// A snapshot of the flight-recorder ring at a moment of interest.
#[derive(Debug, Clone, PartialEq)]
pub struct Dump {
    /// Logical instant at which the dump was taken.
    pub at: u64,
    /// What triggered the dump.
    pub trigger: DumpTrigger,
    /// The ring contents at the trigger, oldest first.
    pub events: Vec<ObsEvent>,
}

/// Bounded ring buffer of recent [`ObsEvent`]s with automatic dumps.
///
/// Holds at most `capacity` live events; pushing into a full ring evicts
/// the oldest. At most [`FlightRecorder::MAX_DUMPS`] dumps are retained
/// (oldest kept — the first violations are the interesting ones).
#[derive(Debug, Clone, PartialEq)]
pub struct FlightRecorder {
    capacity: usize,
    ring: VecDeque<ObsEvent>,
    dumps: Vec<Dump>,
    dropped: u64,
}

impl FlightRecorder {
    /// Maximum number of retained dumps; later triggers are counted but
    /// their snapshots discarded.
    pub const MAX_DUMPS: usize = 8;

    /// Creates a recorder retaining at most `capacity` live events
    /// (clamped to at least 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            capacity,
            ring: VecDeque::with_capacity(capacity),
            dumps: Vec::new(),
            dropped: 0,
        }
    }

    /// The configured ring capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of events evicted from the ring so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The live ring contents, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &ObsEvent> {
        self.ring.iter()
    }

    /// Dumps taken so far, oldest first.
    #[must_use]
    pub fn dumps(&self) -> &[Dump] {
        &self.dumps
    }

    /// Records an event, evicting the oldest if the ring is full. An
    /// [`ObsEvent::AlarmRaised`] additionally snapshots the ring
    /// (including the alarm event itself) as an automatic dump.
    pub fn push(&mut self, event: ObsEvent) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        let auto = match &event {
            ObsEvent::AlarmRaised { at, comm, .. } => Some((*at, *comm)),
            _ => None,
        };
        self.ring.push_back(event);
        if let Some((at, comm)) = auto {
            self.snapshot(at, DumpTrigger::AlarmRaised { comm });
        }
    }

    /// Takes a manual dump of the current ring contents.
    pub fn dump_now(&mut self, at: u64) {
        self.snapshot(at, DumpTrigger::Manual);
    }

    /// Takes a dump attributed to a panic unwinding through the driver.
    pub fn dump_on_panic(&mut self, at: u64) {
        self.snapshot(at, DumpTrigger::Panic);
    }

    fn snapshot(&mut self, at: u64, trigger: DumpTrigger) {
        if self.dumps.len() >= Self::MAX_DUMPS {
            return;
        }
        self.dumps.push(Dump {
            at,
            trigger,
            events: self.ring.iter().cloned().collect(),
        });
    }

    /// Merges another recorder's dumps into this one (used when
    /// Monte-Carlo batches merge per-replication registries). The other
    /// recorder's live ring is discarded — only dumps survive a merge —
    /// and the retained-dump cap still applies.
    pub fn merge(&mut self, other: FlightRecorder) {
        for dump in other.dumps {
            if self.dumps.len() >= Self::MAX_DUMPS {
                break;
            }
            self.dumps.push(dump);
        }
        self.dropped += other.dropped;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn host_down(at: u64) -> ObsEvent {
        ObsEvent::HostDown { at, host: 0 }
    }

    #[test]
    fn ring_is_bounded_and_evicts_oldest() {
        let mut rec = FlightRecorder::new(3);
        for at in 0..5 {
            rec.push(host_down(at));
        }
        let ats: Vec<u64> = rec.events().map(ObsEvent::at).collect();
        assert_eq!(ats, vec![2, 3, 4]);
        assert_eq!(rec.dropped(), 2);
    }

    #[test]
    fn alarm_raised_auto_dumps_including_itself() {
        let mut rec = FlightRecorder::new(8);
        rec.push(host_down(10));
        rec.push(ObsEvent::AlarmRaised {
            at: 20,
            comm: 3,
            mean: 0.5,
            epsilon: 0.1,
            lrc: 0.9,
        });
        assert_eq!(rec.dumps().len(), 1);
        let dump = &rec.dumps()[0];
        assert_eq!(dump.at, 20);
        assert_eq!(dump.trigger, DumpTrigger::AlarmRaised { comm: 3 });
        assert_eq!(dump.events.len(), 2);
        assert_eq!(dump.events[1].kind(), "alarm-raised");
    }

    #[test]
    fn dumps_are_capped_at_max() {
        let mut rec = FlightRecorder::new(2);
        for at in 0..20 {
            rec.dump_now(at);
        }
        assert_eq!(rec.dumps().len(), FlightRecorder::MAX_DUMPS);
        assert_eq!(rec.dumps()[0].at, 0);
    }

    #[test]
    fn merge_carries_dumps_not_ring() {
        let mut a = FlightRecorder::new(4);
        a.push(host_down(1));
        let mut b = FlightRecorder::new(4);
        b.push(host_down(2));
        b.dump_now(3);
        a.merge(b);
        assert_eq!(a.dumps().len(), 1);
        assert_eq!(a.events().count(), 1);
    }
}
