//! The [`MetricsSink`] trait and its two implementations: the free
//! [`NoopSink`] and the concrete [`Registry`].
//!
//! Instrumented code is generic over `M: MetricsSink` and brackets any
//! non-trivial work in `if sink.enabled() { ... }`. With [`NoopSink`]
//! the condition is a constant `false` after monomorphization, so the
//! instrumented path compiles to the uninstrumented one. The trait is
//! nevertheless dyn-safe, so components that cannot be generic (e.g. a
//! supervisor behind `&mut dyn`) can still take `&mut dyn MetricsSink`.

use std::collections::BTreeMap;
use std::time::Instant;

use crate::catalog::{self, MetricKind};
use crate::recorder::{FlightRecorder, ObsEvent};

/// A place instrumentation writes to.
///
/// All methods have defaults that do nothing, so a sink only overrides
/// what it stores. Metric names must be `&'static str` — use the
/// constants in [`crate::catalog::names`].
pub trait MetricsSink {
    /// Whether this sink records anything. Instrumented code gates
    /// non-trivial observation work on this; for [`NoopSink`] it is a
    /// constant `false` that lets the optimizer delete the whole branch.
    fn enabled(&self) -> bool {
        false
    }

    /// Adds `v` to the counter `name`.
    fn add(&mut self, name: &'static str, v: u64) {
        let _ = (name, v);
    }

    /// Increments the counter `name` by one.
    fn inc(&mut self, name: &'static str) {
        self.add(name, 1);
    }

    /// Sets the gauge `name` to `v` (last write wins).
    fn set_gauge(&mut self, name: &'static str, v: f64) {
        let _ = (name, v);
    }

    /// Records an observation `v` into the histogram `name`.
    fn observe(&mut self, name: &'static str, v: f64) {
        let _ = (name, v);
    }

    /// Records `n` identical observations of `v` into the histogram
    /// `name` — the batched form of [`MetricsSink::observe`] used by hot
    /// loops that tally observations and flush once.
    fn observe_n(&mut self, name: &'static str, v: f64, n: u64) {
        for _ in 0..n {
            self.observe(name, v);
        }
    }

    /// Records a structured event (flight recorder).
    fn event(&mut self, event: &ObsEvent) {
        let _ = event;
    }
}

/// The do-nothing sink: every method is an empty inline body and
/// [`MetricsSink::enabled`] is `false`, so generic instrumented code
/// monomorphizes to the uninstrumented code.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl MetricsSink for NoopSink {}

/// A fixed-layout histogram: cumulative-style buckets, sum and count.
///
/// Buckets come from the [`crate::catalog`] entry for the metric (or a
/// single `+Inf`-only layout for uncatalogued names). Counts are stored
/// per-bucket (non-cumulative); exporters accumulate for the Prometheus
/// `le` convention.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Upper bounds, strictly increasing; the implicit `+Inf` bucket is
    /// not stored here.
    bounds: Vec<f64>,
    /// Observation count per bound, plus a final `+Inf` slot.
    counts: Vec<u64>,
    sum: f64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram with the given upper bounds (strictly
    /// increasing; `+Inf` implicit).
    #[must_use]
    pub fn with_bounds(bounds: &[f64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            sum: 0.0,
            count: 0,
        }
    }

    fn for_metric(name: &str) -> Self {
        let bounds = catalog::lookup(name)
            .filter(|d| d.kind == MetricKind::Histogram)
            .map_or(&[][..], |d| d.buckets);
        Histogram::with_bounds(bounds)
    }

    /// Records one observation.
    pub fn observe(&mut self, v: f64) {
        self.observe_n(v, 1);
    }

    /// Records `n` identical observations of `v`. Equivalent to calling
    /// [`Histogram::observe`] `n` times: for the integer-valued samples
    /// the simulator records, `v * n` is exact in `f64` (as is the
    /// repeated-addition sum), so the two forms produce bit-identical
    /// histograms.
    pub fn observe_n(&mut self, v: f64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += n;
        self.sum += v * n as f64;
        self.count += n;
    }

    /// Upper bounds (excluding the implicit `+Inf`).
    #[must_use]
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Cumulative counts per bound, ending with the `+Inf` total.
    #[must_use]
    pub fn cumulative(&self) -> Vec<u64> {
        let mut acc = 0;
        self.counts
            .iter()
            .map(|&c| {
                acc += c;
                acc
            })
            .collect()
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Adds another histogram's observations into this one. Layouts must
    /// match (they do, because layouts come from the shared catalog).
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "histogram merge across different bucket layouts"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.sum += other.sum;
        self.count += other.count;
    }
}

/// A concrete metrics store: counters, gauges and histograms keyed by
/// static names, plus an optional flight recorder.
///
/// All stores are `BTreeMap`s so iteration — and therefore every export
/// — is deterministic. A registry filled by a simulation contains only
/// values that are a deterministic function of the run; wall-clock span
/// gauges are written by top-level drivers only (see the crate docs).
#[derive(Debug, Default, Clone, PartialEq)]
pub struct Registry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
    recorder: Option<FlightRecorder>,
}

impl Registry {
    /// Creates an empty registry with no flight recorder.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    /// Creates an empty registry carrying a flight recorder with the
    /// given ring capacity.
    #[must_use]
    pub fn with_recorder(capacity: usize) -> Self {
        Registry {
            recorder: Some(FlightRecorder::new(capacity)),
            ..Registry::default()
        }
    }

    /// Current value of a counter (0 if never written).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge, if ever written.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// A histogram, if any observation was recorded.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// All gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&'static str, f64)> + '_ {
        self.gauges.iter().map(|(&k, &v)| (k, v))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&'static str, &Histogram)> + '_ {
        self.histograms.iter().map(|(&k, v)| (k, v))
    }

    /// The flight recorder, if this registry carries one.
    #[must_use]
    pub fn recorder(&self) -> Option<&FlightRecorder> {
        self.recorder.as_ref()
    }

    /// Mutable access to the flight recorder, if present (for manual /
    /// panic dumps from drivers).
    pub fn recorder_mut(&mut self) -> Option<&mut FlightRecorder> {
        self.recorder.as_mut()
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Merges `other` into `self`: counters add, gauges last-write-wins
    /// (i.e. `other` overwrites), histogram buckets add, recorder dumps
    /// append (capped). Merging per-replication registries in
    /// replication order yields a bit-identical aggregate at any thread
    /// count, because each input is itself deterministic.
    pub fn merge(&mut self, other: Registry) {
        for (name, v) in other.counters {
            *self.counters.entry(name).or_insert(0) += v;
        }
        for (name, v) in other.gauges {
            self.gauges.insert(name, v);
        }
        for (name, h) in other.histograms {
            match self.histograms.entry(name) {
                std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().merge(&h),
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(h);
                }
            }
        }
        if let Some(rec) = other.recorder {
            match &mut self.recorder {
                Some(mine) => mine.merge(rec),
                None => self.recorder = Some(rec),
            }
        }
    }
}

impl MetricsSink for Registry {
    fn enabled(&self) -> bool {
        true
    }

    fn add(&mut self, name: &'static str, v: u64) {
        *self.counters.entry(name).or_insert(0) += v;
    }

    fn set_gauge(&mut self, name: &'static str, v: f64) {
        self.gauges.insert(name, v);
    }

    fn observe(&mut self, name: &'static str, v: f64) {
        self.histograms
            .entry(name)
            .or_insert_with(|| Histogram::for_metric(name))
            .observe(v);
    }

    fn observe_n(&mut self, name: &'static str, v: f64, n: u64) {
        if n == 0 {
            return;
        }
        self.histograms
            .entry(name)
            .or_insert_with(|| Histogram::for_metric(name))
            .observe_n(v, n);
    }

    fn event(&mut self, event: &ObsEvent) {
        if let Some(rec) = &mut self.recorder {
            rec.push(event.clone());
        }
    }
}

/// A wall-clock span timer for top-level driver phases
/// (compile/certify/run). **Never** record a span inside the replicated
/// region of a Monte-Carlo run — wall-clock values are not deterministic
/// and would break bit-identical registry merges.
#[derive(Debug)]
pub struct Span {
    start: Instant,
}

impl Span {
    /// Starts timing now.
    #[must_use]
    pub fn start() -> Self {
        Span {
            start: Instant::now(),
        }
    }

    /// Stops the span and records its duration in seconds as the gauge
    /// `name` on `sink`.
    pub fn finish(self, sink: &mut dyn MetricsSink, name: &'static str) {
        sink.set_gauge(name, self.start.elapsed().as_secs_f64());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::names;

    #[test]
    fn noop_sink_is_disabled_and_inert() {
        let mut s = NoopSink;
        assert!(!s.enabled());
        s.inc(names::ROUNDS);
        s.set_gauge(names::HOSTS_UP, 3.0);
        s.observe(names::REPLICAS_PER_VOTE, 2.0);
    }

    #[test]
    fn registry_stores_and_reads_back() {
        let mut r = Registry::new();
        assert!(r.enabled());
        r.inc(names::ROUNDS);
        r.add(names::ROUNDS, 2);
        r.set_gauge(names::HOSTS_UP, 3.0);
        r.observe(names::REPLICAS_PER_VOTE, 2.0);
        r.observe(names::REPLICAS_PER_VOTE, 9.0);
        assert_eq!(r.counter(names::ROUNDS), 3);
        assert_eq!(r.gauge(names::HOSTS_UP), Some(3.0));
        let h = r.histogram(names::REPLICAS_PER_VOTE).unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 11.0);
        // 2.0 lands in the `le=2` bucket, 9.0 overflows to +Inf.
        assert_eq!(h.cumulative().last(), Some(&2));
    }

    #[test]
    fn merge_adds_counters_and_histograms() {
        let mut a = Registry::new();
        a.add(names::ROUNDS, 5);
        a.observe(names::REPLICAS_PER_VOTE, 1.0);
        let mut b = Registry::new();
        b.add(names::ROUNDS, 7);
        b.add(names::UPDATES, 1);
        b.set_gauge(names::HOSTS_UP, 2.0);
        b.observe(names::REPLICAS_PER_VOTE, 3.0);
        a.merge(b);
        assert_eq!(a.counter(names::ROUNDS), 12);
        assert_eq!(a.counter(names::UPDATES), 1);
        assert_eq!(a.gauge(names::HOSTS_UP), Some(2.0));
        assert_eq!(a.histogram(names::REPLICAS_PER_VOTE).unwrap().count(), 2);
    }

    #[test]
    fn merge_order_is_deterministic_for_counters() {
        // Counters commute; merging [a, b] vs [b, a] yields identical
        // stores, which is what makes chunked parallel merges safe.
        let mk = |n: u64| {
            let mut r = Registry::new();
            r.add(names::ROUNDS, n);
            r
        };
        let mut left = Registry::new();
        left.merge(mk(1));
        left.merge(mk(2));
        let mut right = Registry::new();
        right.merge(mk(2));
        right.merge(mk(1));
        assert_eq!(left, right);
    }

    #[test]
    fn registry_event_feeds_recorder() {
        let mut r = Registry::with_recorder(4);
        r.event(&ObsEvent::HostDown { at: 7, host: 1 });
        assert_eq!(r.recorder().unwrap().events().count(), 1);
        let mut plain = Registry::new();
        plain.event(&ObsEvent::HostDown { at: 7, host: 1 });
        assert!(plain.recorder().is_none());
    }

    #[test]
    fn span_records_a_nonnegative_gauge() {
        let mut r = Registry::new();
        let span = Span::start();
        span.finish(&mut r, names::RUN_SECONDS);
        assert!(r.gauge(names::RUN_SECONDS).unwrap() >= 0.0);
    }
}
