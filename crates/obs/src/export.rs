//! Exporters: Prometheus text exposition and a self-describing JSON
//! document (`logrel-metrics-v1`).
//!
//! Both renderers are hand-rolled (the workspace is offline — no serde)
//! and fully deterministic: the registry's `BTreeMap` stores fix the
//! iteration order, and numbers render through a single formatting
//! routine.

use crate::catalog;
use crate::metrics::{Histogram, Registry};
use crate::recorder::{Dump, ObsEvent};

/// Formats a float the way both exporters expect: integral values
/// without a trailing `.0` mantissa in Prometheus would be fine, but we
/// keep Rust's shortest-roundtrip `{}` formatting for both so the two
/// documents agree with each other and with test expectations.
fn fmt_f64(v: f64) -> String {
    if v.is_infinite() {
        if v > 0.0 { "+Inf".into() } else { "-Inf".into() }
    } else if v.is_nan() {
        "NaN".into()
    } else {
        format!("{v}")
    }
}

fn help_and_type(out: &mut String, name: &str, kind: &str) {
    if let Some(def) = catalog::lookup(name) {
        out.push_str("# HELP ");
        out.push_str(name);
        out.push(' ');
        out.push_str(def.help);
        out.push('\n');
    }
    out.push_str("# TYPE ");
    out.push_str(name);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
}

fn histogram_text(out: &mut String, name: &str, h: &Histogram) {
    let cumulative = h.cumulative();
    for (bound, cum) in h.bounds().iter().zip(&cumulative) {
        out.push_str(name);
        out.push_str("_bucket{le=\"");
        out.push_str(&fmt_f64(*bound));
        out.push_str("\"} ");
        out.push_str(&cum.to_string());
        out.push('\n');
    }
    out.push_str(name);
    out.push_str("_bucket{le=\"+Inf\"} ");
    out.push_str(&h.count().to_string());
    out.push('\n');
    out.push_str(name);
    out.push_str("_sum ");
    out.push_str(&fmt_f64(h.sum()));
    out.push('\n');
    out.push_str(name);
    out.push_str("_count ");
    out.push_str(&h.count().to_string());
    out.push('\n');
}

/// Renders the registry as Prometheus text exposition (version 0.0.4).
///
/// Catalogued metrics get `# HELP` lines; all get `# TYPE`. Histograms
/// follow the cumulative-`le` bucket convention with an explicit `+Inf`
/// bucket, `_sum` and `_count`.
#[must_use]
pub fn to_prometheus(reg: &Registry) -> String {
    let mut out = String::new();
    for (name, v) in reg.counters() {
        help_and_type(&mut out, name, "counter");
        out.push_str(name);
        out.push(' ');
        out.push_str(&v.to_string());
        out.push('\n');
    }
    for (name, v) in reg.gauges() {
        help_and_type(&mut out, name, "gauge");
        out.push_str(name);
        out.push(' ');
        out.push_str(&fmt_f64(v));
        out.push('\n');
    }
    for (name, h) in reg.histograms() {
        help_and_type(&mut out, name, "histogram");
        histogram_text(&mut out, name, h);
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// JSON number rendering: JSON has no `Inf`/`NaN`, so those become
/// strings.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        fmt_f64(v)
    } else {
        format!("\"{}\"", fmt_f64(v))
    }
}

fn push_kv_str(out: &mut String, key: &str, value: &str) {
    out.push('"');
    out.push_str(&json_escape(key));
    out.push_str("\": \"");
    out.push_str(&json_escape(value));
    out.push('"');
}

fn event_json(event: &ObsEvent) -> String {
    let mut s = String::from("{");
    push_kv_str(&mut s, "kind", event.kind());
    s.push_str(&format!(", \"at\": {}", event.at()));
    match event {
        ObsEvent::Vote {
            task,
            outcome,
            delivered,
            replicas,
            ..
        } => {
            s.push_str(&format!(
                ", \"task\": {task}, \"outcome\": \"{}\", \"delivered\": {delivered}, \"replicas\": {replicas}",
                outcome.label()
            ));
        }
        ObsEvent::ReplicaDrop {
            task, host, reason, ..
        } => {
            s.push_str(&format!(
                ", \"task\": {task}, \"host\": {host}, \"reason\": \"{}\"",
                reason.label()
            ));
        }
        ObsEvent::HostDown { host, .. } | ObsEvent::HostUp { host, .. } => {
            s.push_str(&format!(", \"host\": {host}"));
        }
        ObsEvent::AlarmRaised {
            comm,
            mean,
            epsilon,
            lrc,
            ..
        } => {
            s.push_str(&format!(
                ", \"comm\": {comm}, \"mean\": {}, \"epsilon\": {}, \"lrc\": {}",
                json_f64(*mean),
                json_f64(*epsilon),
                json_f64(*lrc)
            ));
        }
        ObsEvent::AlarmCleared { comm, mean, .. } => {
            s.push_str(&format!(", \"comm\": {comm}, \"mean\": {}", json_f64(*mean)));
        }
        ObsEvent::DegraderEngaged { rule, .. } => {
            s.push_str(&format!(", \"rule\": {rule}"));
        }
        ObsEvent::ModeSwitch { event, .. } => {
            s.push_str(", ");
            push_kv_str(&mut s, "event", event);
        }
    }
    s.push('}');
    s
}

fn dump_json(dump: &Dump) -> String {
    let mut s = String::from("{");
    push_kv_str(&mut s, "trigger", dump.trigger.label());
    if let crate::recorder::DumpTrigger::AlarmRaised { comm } = &dump.trigger {
        s.push_str(&format!(", \"comm\": {comm}"));
    }
    s.push_str(&format!(", \"at\": {}", dump.at));
    s.push_str(", \"events\": [");
    for (i, e) in dump.events.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        s.push_str(&event_json(e));
    }
    s.push_str("]}");
    s
}

/// Renders the registry as a self-describing JSON document.
///
/// Layout:
///
/// ```json
/// {
///   "schema": "logrel-metrics-v1",
///   "counters": { "name": 1, ... },
///   "gauges": { "name": 0.5, ... },
///   "histograms": { "name": { "buckets": [[le, cum], ...],
///                              "sum": 1.0, "count": 3 }, ... },
///   "dumps": [ { "trigger": "...", "at": 0, "events": [...] }, ... ]
/// }
/// ```
///
/// `dumps` is present only when the registry carries a flight recorder.
#[must_use]
pub fn to_json(reg: &Registry) -> String {
    let mut out = String::from("{\n  \"schema\": \"logrel-metrics-v1\",\n  \"counters\": {");
    for (i, (name, v)) in reg.counters().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    \"{name}\": {v}"));
    }
    out.push_str("\n  },\n  \"gauges\": {");
    for (i, (name, v)) in reg.gauges().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    \"{name}\": {}", json_f64(v)));
    }
    out.push_str("\n  },\n  \"histograms\": {");
    for (i, (name, h)) in reg.histograms().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    \"{name}\": {{\"buckets\": ["));
        let cumulative = h.cumulative();
        for (j, (bound, cum)) in h.bounds().iter().zip(&cumulative).enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("[{}, {cum}]", json_f64(*bound)));
        }
        if !h.bounds().is_empty() {
            out.push_str(", ");
        }
        out.push_str(&format!("[\"+Inf\", {}]", h.count()));
        out.push_str(&format!(
            "], \"sum\": {}, \"count\": {}}}",
            json_f64(h.sum()),
            h.count()
        ));
    }
    out.push_str("\n  }");
    if let Some(rec) = reg.recorder() {
        out.push_str(",\n  \"dumps\": [");
        for (i, dump) in rec.dumps().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            out.push_str(&dump_json(dump));
        }
        out.push_str("\n  ]");
    }
    out.push_str("\n}\n");
    out
}

/// Renders the registry as a single compact `logrel-metrics-v1` JSON
/// line (no interior newlines, no trailing newline) — the wire format of
/// the line-delimited job service, where one response is one line.
///
/// Same schema and key order as [`to_json`], minus the pretty-printing;
/// a whitespace-insensitive JSON parse of either document yields the
/// same value.
#[must_use]
pub fn to_json_line(reg: &Registry) -> String {
    let mut out = String::from("{\"schema\":\"logrel-metrics-v1\",\"counters\":{");
    for (i, (name, v)) in reg.counters().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{name}\":{v}"));
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, v)) in reg.gauges().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{name}\":{}", json_f64(v)));
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, h)) in reg.histograms().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{name}\":{{\"buckets\":["));
        let cumulative = h.cumulative();
        for (j, (bound, cum)) in h.bounds().iter().zip(&cumulative).enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{},{cum}]", json_f64(*bound)));
        }
        if !h.bounds().is_empty() {
            out.push(',');
        }
        out.push_str(&format!("[\"+Inf\",{}]", h.count()));
        out.push_str(&format!(
            "],\"sum\":{},\"count\":{}}}",
            json_f64(h.sum()),
            h.count()
        ));
    }
    out.push('}');
    if let Some(rec) = reg.recorder() {
        out.push_str(",\"dumps\":[");
        for (i, dump) in rec.dumps().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&dump_json(dump));
        }
        out.push(']');
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::names;
    use crate::metrics::MetricsSink;
    use crate::recorder::VoteOutcome;

    fn sample() -> Registry {
        let mut r = Registry::with_recorder(8);
        r.add(names::ROUNDS, 3);
        r.add(names::VOTE_UNANIMOUS, 18);
        r.set_gauge(names::HOSTS_UP, 3.0);
        r.observe(names::REPLICAS_PER_VOTE, 1.0);
        r.event(&ObsEvent::Vote {
            at: 500,
            task: 0,
            outcome: VoteOutcome::Unanimous,
            delivered: 1,
            replicas: 1,
        });
        r.recorder_mut().unwrap().dump_now(500);
        r
    }

    #[test]
    fn prometheus_text_has_help_type_and_samples() {
        let text = to_prometheus(&sample());
        assert!(text.contains("# HELP logrel_rounds_total Simulated rounds completed\n"));
        assert!(text.contains("# TYPE logrel_rounds_total counter\n"));
        assert!(text.contains("logrel_rounds_total 3\n"));
        assert!(text.contains("logrel_hosts_up 3\n"));
        assert!(text.contains("logrel_replicas_per_vote_bucket{le=\"+Inf\"} 1\n"));
        assert!(text.contains("logrel_replicas_per_vote_sum 1\n"));
        assert!(text.contains("logrel_replicas_per_vote_count 1\n"));
        // Cumulative le buckets are monotone: le="1" already holds the obs.
        assert!(text.contains("logrel_replicas_per_vote_bucket{le=\"1\"} 1\n"));
    }

    #[test]
    fn json_is_schema_tagged_and_carries_dumps() {
        let json = to_json(&sample());
        assert!(json.contains("\"schema\": \"logrel-metrics-v1\""));
        assert!(json.contains("\"logrel_rounds_total\": 3"));
        assert!(json.contains("\"dumps\": ["));
        assert!(json.contains("\"trigger\": \"manual\""));
        assert!(json.contains("\"outcome\": \"unanimous\""));
    }

    #[test]
    fn exports_are_deterministic() {
        assert_eq!(to_prometheus(&sample()), to_prometheus(&sample()));
        assert_eq!(to_json(&sample()), to_json(&sample()));
        assert_eq!(to_json_line(&sample()), to_json_line(&sample()));
    }

    #[test]
    fn json_line_is_single_line_and_whitespace_equivalent_to_pretty() {
        let line = to_json_line(&sample());
        assert!(!line.contains('\n'), "line format must be newline-free");
        assert!(line.starts_with("{\"schema\":\"logrel-metrics-v1\""));
        // Stripping all whitespace outside strings from the pretty form
        // must yield the compact form (same keys, order and values). The
        // sample has no whitespace inside string values, so a blanket
        // strip is faithful — except the spaces dump_json itself emits,
        // which appear identically in both documents.
        let pretty = to_json(&sample());
        let strip = |s: &str| {
            s.chars()
                .filter(|c| !c.is_ascii_whitespace())
                .collect::<String>()
        };
        assert_eq!(strip(&pretty), strip(&line));
    }

    #[test]
    fn json_handles_nonfinite_gauges_as_strings() {
        let mut r = Registry::new();
        r.set_gauge(names::HOSTS_UP, f64::INFINITY);
        let json = to_json(&r);
        assert!(json.contains("\"logrel_hosts_up\": \"+Inf\""));
    }
}
