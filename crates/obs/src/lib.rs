//! Observability for the logrel runtime: metrics, flight recorder,
//! exporters.
//!
//! The simulator's kernel, monitor and degrader are instrumented against
//! the [`MetricsSink`] trait. The two implementations bracket the cost
//! spectrum:
//!
//! * [`NoopSink`] — every method is an empty inline body and
//!   [`MetricsSink::enabled`] is `false`, so instrumented code paths
//!   compile down to the uninstrumented ones (the kernel is generic over
//!   the sink, not dynamic). The `bench_snapshot` binary measures the
//!   residual overhead; the budget is "no measurable regression".
//! * [`Registry`] — a concrete store of counters, gauges and histograms
//!   keyed by `&'static str` metric names (catalogued in [`catalog`]),
//!   optionally carrying a bounded [`FlightRecorder`] ring buffer of
//!   recent structured [`ObsEvent`]s which is dumped automatically when
//!   an LRC alarm is raised, on a panic unwinding through the driver, or
//!   on demand.
//!
//! Everything a simulation writes into a [`Registry`] is a deterministic
//! function of the run (no wall-clock, no addresses): Monte-Carlo
//! batches merge per-replication registries in replication order, so the
//! aggregate is bit-identical at any thread count. Wall-clock span
//! timings ([`Span`]) exist too, but are only ever recorded by top-level
//! drivers *outside* the replicated region — see `DESIGN.md` §9.
//!
//! [`export`] renders a registry as Prometheus text exposition or as a
//! self-describing JSON document (`logrel-metrics-v1`).

pub mod catalog;
pub mod export;
pub mod metrics;
pub mod recorder;

pub use catalog::{names, MetricDef, MetricKind, CATALOG};
pub use metrics::{Histogram, MetricsSink, NoopSink, Registry, Span};
pub use recorder::{Dump, DumpTrigger, DropReason, FlightRecorder, ObsEvent, VoteOutcome};
