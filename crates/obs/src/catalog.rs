//! The metric catalog: every metric the runtime emits, with its kind,
//! help text and (for histograms) bucket boundaries.
//!
//! Names are `&'static str` constants so sink call sites cannot typo a
//! metric into existence; the exporters use the catalog for Prometheus
//! `# HELP` / `# TYPE` lines and bucket layouts. Metrics not in the
//! catalog still export (kind inferred from the store they live in), so
//! the catalog is documentation and layout, not a gate.

/// Metric kinds, mirroring the Prometheus exposition types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone event count (`u64`).
    Counter,
    /// Last-written value (`f64`).
    Gauge,
    /// Bucketed distribution with sum and count.
    Histogram,
}

/// One catalogued metric.
#[derive(Debug, Clone, Copy)]
pub struct MetricDef {
    /// The metric name (Prometheus-compatible).
    pub name: &'static str,
    /// The exposition kind.
    pub kind: MetricKind,
    /// One-line help text.
    pub help: &'static str,
    /// Upper bucket bounds for histograms (`+Inf` is implicit); empty
    /// for counters and gauges.
    pub buckets: &'static [f64],
}

/// Metric name constants used by the instrumented runtime.
pub mod names {
    /// Simulated rounds completed.
    pub const ROUNDS: &str = "logrel_rounds_total";
    /// Communicator updates recorded to the trace.
    pub const UPDATES: &str = "logrel_updates_total";
    /// Communicator updates recorded as unreliable (⊥).
    pub const UPDATES_UNRELIABLE: &str = "logrel_updates_unreliable_total";
    /// Logical task invocations (one per task read instant).
    pub const TASK_INVOCATIONS: &str = "logrel_task_invocations_total";
    /// Invocations in which at least one replica delivered.
    pub const TASK_DELIVERED: &str = "logrel_task_delivered_total";
    /// Votes in which every delivering replica agreed on every output.
    pub const VOTE_UNANIMOUS: &str = "logrel_vote_unanimous_total";
    /// Votes decided by a strict majority against disagreeing replicas.
    pub const VOTE_MAJORITY: &str = "logrel_vote_majority_total";
    /// Votes in which some output position had no strict majority.
    pub const VOTE_TIE: &str = "logrel_vote_tie_total";
    /// Votes with no delivering replica at all.
    pub const VOTE_SILENT: &str = "logrel_vote_silent_total";
    /// Replica invocations that delivered into the vote.
    pub const REPLICA_OK: &str = "logrel_replica_ok_total";
    /// Replica invocations dropped from the vote (any reason).
    pub const REPLICA_DROP: &str = "logrel_replica_drop_total";
    /// Replica drops: the host failed its availability draw.
    pub const REPLICA_DROP_HOST: &str = "logrel_replica_drop_host_total";
    /// Replica drops: host up, but the broadcast was lost.
    pub const REPLICA_DROP_BROADCAST: &str = "logrel_replica_drop_broadcast_total";
    /// Replica drops: stateful replica still warming up after a rejoin.
    pub const REPLICA_DROP_WARMUP: &str = "logrel_replica_drop_warmup_total";
    /// Replica drops: excluded by a supervisor (degrader).
    pub const REPLICA_DROP_EXCLUDED: &str = "logrel_replica_drop_excluded_total";
    /// Replica drops: the logical task did not execute (failed inputs).
    pub const REPLICA_DROP_SILENT: &str = "logrel_replica_drop_silent_total";
    /// Broadcast losses observed (host up, broadcast draw failed).
    pub const BROADCAST_FAIL: &str = "logrel_broadcast_fail_total";
    /// Host up→down transitions observed through availability draws.
    pub const HOST_DOWN_TRANSITIONS: &str = "logrel_host_down_transitions_total";
    /// Host down→up transitions observed through availability draws.
    pub const HOST_UP_TRANSITIONS: &str = "logrel_host_up_transitions_total";
    /// Hosts currently observed up (gauge).
    pub const HOSTS_UP: &str = "logrel_hosts_up";
    /// LRC monitor alarms raised.
    pub const ALARM_RAISED: &str = "logrel_alarm_raised_total";
    /// LRC monitor alarms cleared.
    pub const ALARM_CLEARED: &str = "logrel_alarm_cleared_total";
    /// Degradation rules engaged (latched).
    pub const DEGRADER_ENGAGED: &str = "logrel_degrader_engaged_total";
    /// E-machine mode-switch events emitted by the degrader.
    pub const MODE_SWITCH: &str = "logrel_mode_switch_total";
    /// Delivering replicas per vote (histogram).
    pub const REPLICAS_PER_VOTE: &str = "logrel_replicas_per_vote";
    /// Wall-clock seconds compiling the round program (span gauge).
    pub const COMPILE_SECONDS: &str = "logrel_compile_seconds";
    /// Wall-clock seconds self-certifying the round program (span gauge).
    pub const CERTIFY_SECONDS: &str = "logrel_certify_seconds";
    /// Wall-clock seconds of the simulation/campaign run (span gauge).
    pub const RUN_SECONDS: &str = "logrel_run_seconds";
    /// Bit-sliced lane width the campaign ran with (gauge; 1 = scalar).
    pub const BITSLICE_LANES: &str = "logrel_bitslice_lanes";
    /// Analysis queries evaluated by the incremental engine.
    pub const QUERY_QUERIES: &str = "logrel_query_queries_total";
    /// Queries answered from the cache (dependency digest unchanged).
    pub const QUERY_HITS: &str = "logrel_query_hits_total";
    /// Queries recomputed because their dependency cone was dirtied.
    pub const QUERY_RECOMPUTES: &str = "logrel_query_recomputes_total";
    /// Dirty queries answered by refinement reuse (Proposition 2).
    pub const QUERY_REFINE_REUSE: &str = "logrel_query_refine_reuse_total";
    /// Cache loads rejected (corrupt/truncated/version mismatch).
    pub const QUERY_CACHE_FALLBACK: &str = "logrel_query_cache_fallback_total";
    /// RNG seed the campaign ran with (gauge; echoed for replayability).
    pub const CAMPAIGN_SEED: &str = "logrel_campaign_seed";
    /// Specs put through static reliability certification.
    pub const CERTIFY_SPECS: &str = "logrel_certify_specs_total";
    /// LRC constraints certified (interval lower bound clears µ).
    pub const CERTIFY_LRC_CERTIFIED: &str = "logrel_certify_lrc_certified_total";
    /// LRC constraints refuted (interval upper bound below µ).
    pub const CERTIFY_LRC_REFUTED: &str = "logrel_certify_lrc_refuted_total";
    /// LRC constraints left indeterminate (enclosure straddles µ).
    pub const CERTIFY_LRC_INDETERMINATE: &str = "logrel_certify_lrc_indeterminate_total";
    /// Smallest certification slack `lo − µ` over all LRCs (gauge).
    pub const CERTIFY_MIN_SLACK: &str = "logrel_certify_min_slack";
    /// Fuzzer candidate scenarios executed (including invalid mutants).
    pub const FUZZ_ITERS: &str = "logrel_fuzz_iters_total";
    /// Fuzzer candidates with a novel coverage signature (kept in corpus).
    pub const FUZZ_NOVEL: &str = "logrel_fuzz_novel_total";
    /// Fuzzer monitor misses found (µ-violation with no prior alarm).
    pub const FUZZ_MONITOR_MISS: &str = "logrel_fuzz_monitor_miss_total";
    /// Shrinking passes applied to monitor-miss reproducers.
    pub const FUZZ_SHRINK_STEPS: &str = "logrel_fuzz_shrink_steps_total";
    /// Distinct coverage signatures seen by the fuzzer (gauge).
    pub const FUZZ_SIGNATURES: &str = "logrel_fuzz_signatures";
    /// Jobs accepted by the campaign service.
    pub const SERVE_JOBS_ACCEPTED: &str = "logrel_serve_jobs_accepted_total";
    /// Jobs completed by the campaign service.
    pub const SERVE_JOBS_COMPLETED: &str = "logrel_serve_jobs_completed_total";
    /// Jobs rejected by the campaign service (malformed, queue full,
    /// compile failure, shutdown).
    pub const SERVE_JOBS_REJECTED: &str = "logrel_serve_jobs_rejected_total";
    /// Jobs whose spec was already compiled (served from the cache).
    pub const SERVE_CACHE_HITS: &str = "logrel_serve_cache_hits_total";
    /// Jobs whose spec had to be compiled (elaborate/lint/verify/program).
    pub const SERVE_CACHE_MISSES: &str = "logrel_serve_cache_misses_total";
    /// Jobs currently queued or running in the service (gauge).
    pub const SERVE_QUEUE_DEPTH: &str = "logrel_serve_queue_depth";
}

/// Buckets for the delivering-replicas-per-vote histogram.
const REPLICA_BUCKETS: &[f64] = &[0.0, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0];

macro_rules! counter {
    ($name:expr, $help:expr) => {
        MetricDef {
            name: $name,
            kind: MetricKind::Counter,
            help: $help,
            buckets: &[],
        }
    };
}

macro_rules! gauge {
    ($name:expr, $help:expr) => {
        MetricDef {
            name: $name,
            kind: MetricKind::Gauge,
            help: $help,
            buckets: &[],
        }
    };
}

/// Every metric the instrumented runtime emits.
pub const CATALOG: &[MetricDef] = &[
    counter!(names::ROUNDS, "Simulated rounds completed"),
    counter!(names::UPDATES, "Communicator updates recorded"),
    counter!(
        names::UPDATES_UNRELIABLE,
        "Communicator updates recorded as unreliable"
    ),
    counter!(names::TASK_INVOCATIONS, "Logical task invocations"),
    counter!(
        names::TASK_DELIVERED,
        "Invocations with at least one delivering replica"
    ),
    counter!(
        names::VOTE_UNANIMOUS,
        "Votes with all delivering replicas in agreement"
    ),
    counter!(
        names::VOTE_MAJORITY,
        "Votes decided by a strict majority over disagreement"
    ),
    counter!(
        names::VOTE_TIE,
        "Votes with an output position lacking a strict majority"
    ),
    counter!(names::VOTE_SILENT, "Votes with no delivering replica"),
    counter!(names::REPLICA_OK, "Replica invocations that delivered"),
    counter!(names::REPLICA_DROP, "Replica invocations dropped (any reason)"),
    counter!(names::REPLICA_DROP_HOST, "Replica drops: host down"),
    counter!(names::REPLICA_DROP_BROADCAST, "Replica drops: broadcast lost"),
    counter!(names::REPLICA_DROP_WARMUP, "Replica drops: rejoin warm-up"),
    counter!(
        names::REPLICA_DROP_EXCLUDED,
        "Replica drops: supervisor exclusion"
    ),
    counter!(
        names::REPLICA_DROP_SILENT,
        "Replica drops: logical task did not execute"
    ),
    counter!(
        names::BROADCAST_FAIL,
        "Broadcast losses observed on up hosts"
    ),
    counter!(
        names::HOST_DOWN_TRANSITIONS,
        "Observed host up-to-down transitions"
    ),
    counter!(
        names::HOST_UP_TRANSITIONS,
        "Observed host down-to-up transitions"
    ),
    gauge!(names::HOSTS_UP, "Hosts currently observed up"),
    counter!(names::ALARM_RAISED, "LRC monitor alarms raised"),
    counter!(names::ALARM_CLEARED, "LRC monitor alarms cleared"),
    counter!(names::DEGRADER_ENGAGED, "Degradation rules engaged"),
    counter!(names::MODE_SWITCH, "Degrader mode-switch events emitted"),
    MetricDef {
        name: names::REPLICAS_PER_VOTE,
        kind: MetricKind::Histogram,
        help: "Delivering replicas per vote",
        buckets: REPLICA_BUCKETS,
    },
    gauge!(
        names::COMPILE_SECONDS,
        "Wall-clock seconds compiling the round program"
    ),
    gauge!(
        names::CERTIFY_SECONDS,
        "Wall-clock seconds self-certifying the round program"
    ),
    gauge!(
        names::RUN_SECONDS,
        "Wall-clock seconds of the simulation or campaign run"
    ),
    gauge!(
        names::BITSLICE_LANES,
        "Bit-sliced lane width of the campaign run (1 = scalar)"
    ),
    counter!(
        names::QUERY_QUERIES,
        "Analysis queries evaluated by the incremental engine"
    ),
    counter!(names::QUERY_HITS, "Queries answered from the cache"),
    counter!(
        names::QUERY_RECOMPUTES,
        "Queries recomputed after their dependency cone was dirtied"
    ),
    counter!(
        names::QUERY_REFINE_REUSE,
        "Dirty queries answered by refinement reuse"
    ),
    counter!(
        names::QUERY_CACHE_FALLBACK,
        "Cache loads rejected as corrupt or version-mismatched"
    ),
    gauge!(
        names::CAMPAIGN_SEED,
        "RNG seed the campaign ran with (echoed for replayability)"
    ),
    counter!(
        names::CERTIFY_SPECS,
        "Specs put through static reliability certification"
    ),
    counter!(
        names::CERTIFY_LRC_CERTIFIED,
        "LRC constraints certified by the interval analysis"
    ),
    counter!(
        names::CERTIFY_LRC_REFUTED,
        "LRC constraints refuted by the interval analysis"
    ),
    counter!(
        names::CERTIFY_LRC_INDETERMINATE,
        "LRC constraints left indeterminate by the interval analysis"
    ),
    gauge!(
        names::CERTIFY_MIN_SLACK,
        "Smallest certification slack (lower bound minus LRC) observed"
    ),
    counter!(
        names::FUZZ_ITERS,
        "Fuzzer candidate scenarios executed (including invalid mutants)"
    ),
    counter!(
        names::FUZZ_NOVEL,
        "Fuzzer candidates kept for a novel coverage signature"
    ),
    counter!(
        names::FUZZ_MONITOR_MISS,
        "Monitor misses found (LRC violation with no prior alarm)"
    ),
    counter!(
        names::FUZZ_SHRINK_STEPS,
        "Shrinking passes applied to monitor-miss reproducers"
    ),
    gauge!(
        names::FUZZ_SIGNATURES,
        "Distinct coverage signatures seen by the fuzzer"
    ),
    counter!(
        names::SERVE_JOBS_ACCEPTED,
        "Jobs accepted by the campaign service"
    ),
    counter!(
        names::SERVE_JOBS_COMPLETED,
        "Jobs completed by the campaign service"
    ),
    counter!(
        names::SERVE_JOBS_REJECTED,
        "Jobs rejected by the campaign service"
    ),
    counter!(
        names::SERVE_CACHE_HITS,
        "Jobs served from the spec compilation cache"
    ),
    counter!(
        names::SERVE_CACHE_MISSES,
        "Jobs that compiled their spec from scratch"
    ),
    gauge!(
        names::SERVE_QUEUE_DEPTH,
        "Jobs currently queued or running in the service"
    ),
];

/// Looks a metric up in the catalog.
#[must_use]
pub fn lookup(name: &str) -> Option<&'static MetricDef> {
    CATALOG.iter().find(|d| d.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_are_unique_and_prometheus_safe() {
        let mut seen = std::collections::BTreeSet::new();
        for d in CATALOG {
            assert!(seen.insert(d.name), "duplicate metric `{}`", d.name);
            assert!(
                d.name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "unsafe metric name `{}`",
                d.name
            );
            assert!(!d.help.is_empty());
            if d.kind == MetricKind::Histogram {
                assert!(d.buckets.windows(2).all(|w| w[0] < w[1]));
            } else {
                assert!(d.buckets.is_empty());
            }
            // Counters follow the Prometheus `_total` convention.
            if d.kind == MetricKind::Counter {
                assert!(d.name.ends_with("_total"), "{}", d.name);
            }
        }
    }

    #[test]
    fn lookup_finds_catalogued_metrics() {
        assert_eq!(lookup(names::ROUNDS).unwrap().kind, MetricKind::Counter);
        assert_eq!(
            lookup(names::REPLICAS_PER_VOTE).unwrap().kind,
            MetricKind::Histogram
        );
        assert!(lookup("nope").is_none());
    }
}
