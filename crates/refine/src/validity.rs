//! Joint validity (Proposition 2) and incremental analysis.
//!
//! An implementation is *valid* for a specification on an architecture if
//! it is both schedulable and reliable. Proposition 2: if
//! `(S', A', I') ⊑_κ (S, A, I)` and `I` is valid for `S` on `A`, then `I'`
//! is valid for `S'` on `A'` — so a design flow can analyse the abstract
//! system once and carry the certificate down a chain of refinements,
//! paying only the (cheap, local) refinement checks.

use crate::error::RefineError;
use crate::kappa::Kappa;
use crate::relation::{check_refinement, SystemRef};
use logrel_reliability::{ReliabilityError, ReliabilityVerdict};
use logrel_sched::{SchedError, Schedule};
use std::error::Error;
use std::fmt;

/// A witness that a system is valid: its static schedule and its
/// reliability verdict.
#[derive(Debug, Clone)]
pub struct ValidityCertificate {
    /// The schedulability witness.
    pub schedule: Schedule,
    /// The reliability verdict (guaranteed reliable).
    pub verdict: ReliabilityVerdict,
}

/// Errors of the joint validity analysis.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum ValidityError {
    /// The implementation is not schedulable.
    Sched(SchedError),
    /// The reliability analysis failed to run (cycle, unbound input).
    Reliability(ReliabilityError),
    /// The implementation is schedulable but violates LRCs.
    NotReliable {
        /// The failing verdict with its violation list.
        verdict: ReliabilityVerdict,
    },
    /// The refinement pre-condition of the incremental analysis failed.
    Refinement(RefineError),
}

impl fmt::Display for ValidityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidityError::Sched(e) => write!(f, "{e}"),
            ValidityError::Reliability(e) => write!(f, "{e}"),
            ValidityError::NotReliable { verdict } => write!(f, "{verdict}"),
            ValidityError::Refinement(e) => write!(f, "{e}"),
        }
    }
}

impl Error for ValidityError {}

impl From<SchedError> for ValidityError {
    fn from(e: SchedError) -> Self {
        ValidityError::Sched(e)
    }
}

impl From<ReliabilityError> for ValidityError {
    fn from(e: ReliabilityError) -> Self {
        ValidityError::Reliability(e)
    }
}

impl From<RefineError> for ValidityError {
    fn from(e: RefineError) -> Self {
        ValidityError::Refinement(e)
    }
}

/// Runs the full joint schedulability/reliability analysis.
///
/// # Errors
///
/// * [`ValidityError::Sched`] if not schedulable;
/// * [`ValidityError::Reliability`] if the SRG induction fails;
/// * [`ValidityError::NotReliable`] if an LRC is violated.
pub fn validate(system: SystemRef<'_>) -> Result<ValidityCertificate, ValidityError> {
    let schedule = logrel_sched::analyze(system.spec, system.arch, system.imp)?;
    let verdict = logrel_reliability::check(system.spec, system.arch, system.imp)?;
    if !verdict.is_reliable() {
        return Err(ValidityError::NotReliable { verdict });
    }
    Ok(ValidityCertificate { schedule, verdict })
}

/// A validity witness for a periodic time-dependent implementation: one
/// schedule per phase plus the long-run reliability verdict.
#[derive(Debug, Clone)]
pub struct TimeDependentCertificate {
    /// Per-phase schedulability witnesses.
    pub schedules: Vec<Schedule>,
    /// The long-run reliability verdict (guaranteed reliable).
    pub verdict: ReliabilityVerdict,
}

/// Joint validity of a periodic time-dependent implementation: every phase
/// must be schedulable, and the *long-run average* SRGs must meet the LRCs
/// (§3's "general implementation" notion).
///
/// # Errors
///
/// Same classes as [`validate`].
pub fn validate_time_dependent(
    spec: &logrel_core::Specification,
    arch: &logrel_core::Architecture,
    imp: &logrel_core::TimeDependentImplementation,
) -> Result<TimeDependentCertificate, ValidityError> {
    let schedules = logrel_sched::analyze_time_dependent(spec, arch, imp)?;
    let verdict = logrel_reliability::check_time_dependent(spec, arch, imp)?;
    if !verdict.is_reliable() {
        return Err(ValidityError::NotReliable { verdict });
    }
    Ok(TimeDependentCertificate { schedules, verdict })
}

/// Proposition 2: validity transfer along a refinement.
///
/// Checks only the refinement constraints between `refining` and
/// `refined`; given `refined_certificate` (obtained once from
/// [`validate`]), the refining system is valid without re-running the
/// joint analysis. The refined certificate is returned by reference as the
/// inherited witness.
///
/// # Errors
///
/// [`ValidityError::Refinement`] if the systems are not in the refinement
/// relation.
pub fn incremental_validate<'c>(
    refining: SystemRef<'_>,
    refined: SystemRef<'_>,
    kappa: &Kappa,
    refined_certificate: &'c ValidityCertificate,
) -> Result<&'c ValidityCertificate, ValidityError> {
    check_refinement(refining, refined, kappa)?;
    Ok(refined_certificate)
}

#[cfg(test)]
mod tests {
    use super::*;
    use logrel_core::{
        Architecture, CommunicatorDecl, HostDecl, Implementation, Reliability, SensorDecl,
        SensorId, Specification, TaskDecl, ValueType,
    };

    fn r(v: f64) -> Reliability {
        Reliability::new(v).unwrap()
    }

    struct Sys {
        spec: Specification,
        arch: Architecture,
        imp: Implementation,
    }

    impl Sys {
        fn as_ref(&self) -> SystemRef<'_> {
            SystemRef::new(&self.spec, &self.arch, &self.imp)
        }
    }

    fn make(read_i: u64, write_i: u64, wcet: u64, lrc: f64, host_rel: f64) -> Sys {
        let mut sb = Specification::builder();
        let s = sb
            .communicator(
                CommunicatorDecl::new("s", ValueType::Float, 10)
                    .unwrap()
                    .from_sensor(),
            )
            .unwrap();
        let u = sb
            .communicator(
                CommunicatorDecl::new("u", ValueType::Float, 10)
                    .unwrap()
                    .with_lrc(r(lrc)),
            )
            .unwrap();
        let t = sb
            .task(TaskDecl::new("t").reads(s, read_i).writes(u, write_i))
            .unwrap();
        let spec = sb.build().unwrap();
        let mut ab = Architecture::builder();
        let h1 = ab.host(HostDecl::new("h1", r(host_rel))).unwrap();
        ab.sensor(SensorDecl::new("sen", Reliability::ONE)).unwrap();
        ab.wcet_all(t, wcet).unwrap();
        ab.wctt_all(t, 1).unwrap();
        let arch = ab.build();
        let imp = Implementation::builder()
            .assign(t, [h1])
            .bind_sensor(s, SensorId::new(0))
            .build(&spec, &arch)
            .unwrap();
        Sys { spec, arch, imp }
    }

    #[test]
    fn validate_accepts_good_system() {
        let sys = make(0, 3, 5, 0.9, 0.99);
        let cert = validate(sys.as_ref()).unwrap();
        assert!(cert.verdict.is_reliable());
        assert_eq!(cert.schedule.round().as_u64(), 30);
    }

    #[test]
    fn validate_rejects_unschedulable() {
        // LET window is [0, 10 - 1]; wcet 50 misses.
        let sys = make(0, 1, 50, 0.9, 0.99);
        assert!(matches!(
            validate(sys.as_ref()).unwrap_err(),
            ValidityError::Sched(_)
        ));
    }

    #[test]
    fn validate_rejects_unreliable() {
        let sys = make(0, 3, 5, 0.999, 0.9);
        let err = validate(sys.as_ref()).unwrap_err();
        assert!(matches!(err, ValidityError::NotReliable { .. }));
        assert!(err.to_string().contains("NOT reliable"));
    }

    #[test]
    fn incremental_validation_transfers_certificate() {
        let refined = make(0, 3, 5, 0.9, 0.99);
        let refining = make(1, 2, 3, 0.8, 0.99);
        let cert = validate(refined.as_ref()).unwrap();
        let kappa = Kappa::by_name(&refining.spec, &refined.spec);
        let inherited =
            incremental_validate(refining.as_ref(), refined.as_ref(), &kappa, &cert).unwrap();
        assert!(inherited.verdict.is_reliable());
        // Proposition 2 cross-check: a direct analysis agrees.
        assert!(validate(refining.as_ref()).is_ok());
    }

    #[test]
    fn incremental_validation_rejects_non_refinements() {
        let refined = make(0, 3, 5, 0.9, 0.99);
        let not_refining = make(0, 3, 5, 0.99, 0.99); // stronger LRC
        let cert = validate(refined.as_ref()).unwrap();
        let kappa = Kappa::by_name(&not_refining.spec, &refined.spec);
        let err =
            incremental_validate(not_refining.as_ref(), refined.as_ref(), &kappa, &cert)
                .unwrap_err();
        assert!(matches!(err, ValidityError::Refinement(_)));
    }

    #[test]
    fn time_dependent_validation() {
        use logrel_core::TimeDependentImplementation;
        // The §3 alternating example: hosts 0.95/0.85, LRC 0.9.
        let build_host = |rel1: f64, rel2: f64| {
            let mut sb = Specification::builder();
            let s = sb
                .communicator(
                    CommunicatorDecl::new("s", ValueType::Float, 10)
                        .unwrap()
                        .from_sensor(),
                )
                .unwrap();
            let u = sb
                .communicator(
                    CommunicatorDecl::new("u", ValueType::Float, 10)
                        .unwrap()
                        .with_lrc(r(0.9)),
                )
                .unwrap();
            let t = sb.task(TaskDecl::new("t").reads(s, 0).writes(u, 1)).unwrap();
            let spec = sb.build().unwrap();
            let mut ab = Architecture::builder();
            let h1 = ab.host(logrel_core::HostDecl::new("h1", r(rel1))).unwrap();
            let h2 = ab.host(logrel_core::HostDecl::new("h2", r(rel2))).unwrap();
            ab.sensor(SensorDecl::new("sen", Reliability::ONE)).unwrap();
            ab.wcet_all(t, 2).unwrap();
            ab.wctt_all(t, 1).unwrap();
            let arch = ab.build();
            let p0 = Implementation::builder()
                .assign(t, [h1])
                .bind_sensor(s, SensorId::new(0))
                .build(&spec, &arch)
                .unwrap();
            let p1 = p0.with_assignment(t, [h2]);
            (spec, arch, p0, p1)
        };
        let (spec, arch, p0, p1) = build_host(0.95, 0.85);
        // Phase p1 alone is invalid (0.85 < 0.9)...
        assert!(matches!(
            validate(SystemRef::new(&spec, &arch, &p1)),
            Err(ValidityError::NotReliable { .. })
        ));
        // ...but the alternation is valid, with one schedule per phase.
        let td = TimeDependentImplementation::new(vec![p0, p1]).unwrap();
        let cert = validate_time_dependent(&spec, &arch, &td).unwrap();
        assert_eq!(cert.schedules.len(), 2);
        assert!(cert.verdict.is_reliable());
    }

    #[test]
    fn error_conversions() {
        let s: ValidityError = SchedError::NotSchedulable { misses: vec![] }.into();
        assert!(matches!(s, ValidityError::Sched(_)));
        let rel: ValidityError =
            ReliabilityError::Structure { detail: "x".into() }.into();
        assert!(matches!(rel, ValidityError::Reliability(_)));
        let rf: ValidityError = RefineError::NotARefinement { violations: vec![] }.into();
        assert!(matches!(rf, ValidityError::Refinement(_)));
        for e in [s, rel, rf] {
            assert!(!e.to_string().is_empty());
        }
    }
}
