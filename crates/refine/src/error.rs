//! Refinement violations and errors.

use std::error::Error;
use std::fmt;

/// A single violated refinement constraint, with names for diagnostics.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Violation {
    /// κ does not map some refining task.
    KappaNotTotal {
        /// The unmapped refining task.
        task: String,
    },
    /// κ maps two refining tasks to the same refined task.
    KappaNotInjective {
        /// The shared refined task.
        refined: String,
        /// First refining task.
        first: String,
        /// Second refining task.
        second: String,
    },
    /// Constraint (a): the host sets differ.
    HostSetMismatch {
        /// Human-readable difference.
        detail: String,
    },
    /// Constraint (b1): the replication mappings differ.
    MappingMismatch {
        /// The refining task.
        task: String,
    },
    /// Constraint (b2): an execution metric grew.
    MetricIncreased {
        /// "WCET" or "WCTT".
        metric: &'static str,
        /// The refining task.
        task: String,
        /// The host on which the metric grew.
        host: String,
        /// The refining value.
        refining: u64,
        /// The refined value.
        refined: u64,
    },
    /// Constraint (b3): the refining LET is not contained in the refined
    /// one.
    LetNotContained {
        /// The refining task.
        task: String,
        /// `true` if the read time moved earlier, `false` if the write
        /// time moved later.
        read_side: bool,
    },
    /// Constraint (b4): an output LRC of the refining task exceeds the
    /// largest output LRC of the refined task.
    LrcExceeded {
        /// The refining task.
        task: String,
        /// The offending output communicator.
        comm: String,
        /// Its LRC.
        lrc: f64,
        /// The admissible maximum (`None` if the refined task's outputs
        /// declare no LRC at all).
        max: Option<f64>,
    },
    /// Constraint (b5): the input failure model changed.
    ModelChanged {
        /// The refining task.
        task: String,
    },
    /// Constraint (b6): the input communicator sets do not shrink (series)
    /// / grow (parallel) as required.
    InputSetMismatch {
        /// The refining task.
        task: String,
        /// `true` for the series model (subset required), `false` for the
        /// parallel model (superset required).
        subset_required: bool,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::KappaNotTotal { task } => write!(f, "κ does not map task `{task}`"),
            Violation::KappaNotInjective {
                refined,
                first,
                second,
            } => write!(
                f,
                "κ maps both `{first}` and `{second}` to `{refined}`"
            ),
            Violation::HostSetMismatch { detail } => write!(f, "host sets differ: {detail}"),
            Violation::MappingMismatch { task } => {
                write!(f, "task `{task}` is mapped to different hosts than its image")
            }
            Violation::MetricIncreased {
                metric,
                task,
                host,
                refining,
                refined,
            } => write!(
                f,
                "{metric} of `{task}` on `{host}` grew from {refined} to {refining}"
            ),
            Violation::LetNotContained { task, read_side } => {
                let side = if *read_side { "reads earlier" } else { "writes later" };
                write!(f, "task `{task}` {side} than its image")
            }
            Violation::LrcExceeded {
                task,
                comm,
                lrc,
                max,
            } => match max {
                Some(m) => write!(
                    f,
                    "output `{comm}` of `{task}` requires LRC {lrc} > admissible {m}"
                ),
                None => write!(
                    f,
                    "output `{comm}` of `{task}` requires LRC {lrc} but the image's \
                     outputs declare none"
                ),
            },
            Violation::ModelChanged { task } => {
                write!(f, "task `{task}` changed its input failure model")
            }
            Violation::InputSetMismatch {
                task,
                subset_required,
            } => {
                let req = if *subset_required {
                    "a subset"
                } else {
                    "a superset"
                };
                write!(f, "inputs of `{task}` are not {req} of its image's inputs")
            }
        }
    }
}

/// Errors of the refinement checker.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum RefineError {
    /// The candidate refinement violates one or more constraints.
    NotARefinement {
        /// All violations found.
        violations: Vec<Violation>,
    },
    /// κ references an unknown task id.
    UnknownTask {
        /// Debug rendering of the id.
        id: String,
    },
}

impl fmt::Display for RefineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RefineError::NotARefinement { violations } => {
                write!(f, "not a refinement: ")?;
                for (i, v) in violations.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{v}")?;
                }
                Ok(())
            }
            RefineError::UnknownTask { id } => write!(f, "κ references unknown task {id}"),
        }
    }
}

impl Error for RefineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_nonempty() {
        let vs = vec![
            Violation::KappaNotTotal { task: "t".into() },
            Violation::KappaNotInjective {
                refined: "a".into(),
                first: "x".into(),
                second: "y".into(),
            },
            Violation::HostSetMismatch {
                detail: "h3 missing".into(),
            },
            Violation::MappingMismatch { task: "t".into() },
            Violation::MetricIncreased {
                metric: "WCET",
                task: "t".into(),
                host: "h".into(),
                refining: 5,
                refined: 3,
            },
            Violation::LetNotContained {
                task: "t".into(),
                read_side: true,
            },
            Violation::LetNotContained {
                task: "t".into(),
                read_side: false,
            },
            Violation::LrcExceeded {
                task: "t".into(),
                comm: "c".into(),
                lrc: 0.99,
                max: Some(0.9),
            },
            Violation::LrcExceeded {
                task: "t".into(),
                comm: "c".into(),
                lrc: 0.99,
                max: None,
            },
            Violation::ModelChanged { task: "t".into() },
            Violation::InputSetMismatch {
                task: "t".into(),
                subset_required: true,
            },
        ];
        for v in &vs {
            assert!(!v.to_string().is_empty());
        }
        let e = RefineError::NotARefinement { violations: vs };
        assert!(e.to_string().contains("not a refinement"));
        assert!(!RefineError::UnknownTask { id: "t9".into() }
            .to_string()
            .is_empty());
    }
}
