//! The refinement relation checker (§3's six local constraints).

use crate::error::{RefineError, Violation};
use crate::kappa::Kappa;
use logrel_core::{Architecture, FailureModel, Implementation, Specification};

/// A borrowed view of a system `(S, A, I)`.
#[derive(Debug, Clone, Copy)]
pub struct SystemRef<'a> {
    /// The specification.
    pub spec: &'a Specification,
    /// The architecture.
    pub arch: &'a Architecture,
    /// The implementation.
    pub imp: &'a Implementation,
}

impl<'a> SystemRef<'a> {
    /// Bundles the three components.
    pub fn new(
        spec: &'a Specification,
        arch: &'a Architecture,
        imp: &'a Implementation,
    ) -> Self {
        SystemRef { spec, arch, imp }
    }
}

/// Checks whether `refining ⊑_κ refined` — i.e. whether the refining
/// system refines the refined one under κ.
///
/// All violations are collected before returning, so a failed check
/// explains every broken constraint at once.
///
/// # Errors
///
/// * [`RefineError::UnknownTask`] if κ points outside the refined spec;
/// * [`RefineError::NotARefinement`] with the violation list otherwise.
pub fn check_refinement(
    refining: SystemRef<'_>,
    refined: SystemRef<'_>,
    kappa: &Kappa,
) -> Result<(), RefineError> {
    let mut violations = Vec::new();

    // κ totality/injectivity.
    match kappa.validate(refining.spec, refined.spec) {
        Ok(()) => {}
        Err(RefineError::NotARefinement { violations: v }) => violations.extend(v),
        Err(e) => return Err(e),
    }

    // Constraint (a): hset' = hset (names and reliabilities).
    if refining.arch.host_count() != refined.arch.host_count() {
        violations.push(Violation::HostSetMismatch {
            detail: format!(
                "{} hosts vs {}",
                refining.arch.host_count(),
                refined.arch.host_count()
            ),
        });
    } else {
        for h in refining.arch.host_ids() {
            let a = refining.arch.host(h);
            let b = refined.arch.host(h);
            if a.name() != b.name() || a.reliability() != b.reliability() {
                violations.push(Violation::HostSetMismatch {
                    detail: format!("host {} differs ({} vs {})", h, a.name(), b.name()),
                });
            }
        }
    }

    for t in refining.spec.task_ids() {
        let Some(img) = kappa.image(t) else {
            continue; // already reported as KappaNotTotal
        };
        if img.index() >= refined.spec.task_count() {
            continue; // already reported by kappa.validate
        }
        let name = refining.spec.task(t).name().to_owned();
        let td = refining.spec.task(t);
        let id = refined.spec.task(img);

        // (b1) identical replication mapping.
        if refining.imp.hosts_of(t) != refined.imp.hosts_of(img) {
            violations.push(Violation::MappingMismatch { task: name.clone() });
        }

        // (b2) metrics must not grow, on every host of the mapping.
        for &h in refining.imp.hosts_of(t) {
            for (metric, get_new, get_old) in [
                (
                    "WCET",
                    refining.arch.wcet(t, h),
                    refined.arch.wcet(img, h),
                ),
                (
                    "WCTT",
                    refining.arch.wctt(t, h),
                    refined.arch.wctt(img, h),
                ),
            ] {
                if let (Some(new), Some(old)) = (get_new, get_old) {
                    if new > old {
                        violations.push(Violation::MetricIncreased {
                            metric,
                            task: name.clone(),
                            host: refining.arch.host(h).name().to_owned(),
                            refining: new,
                            refined: old,
                        });
                    }
                }
            }
        }

        // (b3) contained LET.
        if refining.spec.read_time(t) < refined.spec.read_time(img) {
            violations.push(Violation::LetNotContained {
                task: name.clone(),
                read_side: true,
            });
        }
        if refining.spec.write_time(t) > refined.spec.write_time(img) {
            violations.push(Violation::LetNotContained {
                task: name.clone(),
                read_side: false,
            });
        }

        // (b4) output LRCs bounded by the image's largest output LRC.
        let max_lrc = id
            .output_comm_set()
            .into_iter()
            .filter_map(|c| refined.spec.communicator(c).lrc())
            .map(|r| r.get())
            .fold(None::<f64>, |acc, x| Some(acc.map_or(x, |a| a.max(x))));
        for c in td.output_comm_set() {
            if let Some(lrc) = refining.spec.communicator(c).lrc() {
                let ok = max_lrc.is_some_and(|m| lrc.get() <= m + 1e-12);
                if !ok {
                    violations.push(Violation::LrcExceeded {
                        task: name.clone(),
                        comm: refining.spec.communicator(c).name().to_owned(),
                        lrc: lrc.get(),
                        max: max_lrc,
                    });
                }
            }
        }

        // (b5) identical failure model.
        if td.failure_model() != id.failure_model() {
            violations.push(Violation::ModelChanged { task: name.clone() });
        }

        // (b6) input-set inclusion, compared by communicator *name* since
        // the two specifications have distinct id spaces.
        let new_inputs: std::collections::BTreeSet<&str> = td
            .input_comm_set()
            .into_iter()
            .map(|c| refining.spec.communicator(c).name())
            .collect();
        let old_inputs: std::collections::BTreeSet<&str> = id
            .input_comm_set()
            .into_iter()
            .map(|c| refined.spec.communicator(c).name())
            .collect();
        match td.failure_model() {
            FailureModel::Series => {
                if !new_inputs.is_subset(&old_inputs) {
                    violations.push(Violation::InputSetMismatch {
                        task: name.clone(),
                        subset_required: true,
                    });
                }
            }
            FailureModel::Parallel => {
                if !new_inputs.is_superset(&old_inputs) {
                    violations.push(Violation::InputSetMismatch {
                        task: name.clone(),
                        subset_required: false,
                    });
                }
            }
            FailureModel::Independent => {}
        }
    }

    if violations.is_empty() {
        Ok(())
    } else {
        Err(RefineError::NotARefinement { violations })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logrel_core::{
        CommunicatorDecl, HostDecl, Reliability, SensorDecl, SensorId, TaskDecl, ValueType,
    };

    fn r(v: f64) -> Reliability {
        Reliability::new(v).unwrap()
    }

    struct Sys {
        spec: Specification,
        arch: Architecture,
        imp: Implementation,
    }

    impl Sys {
        fn as_ref(&self) -> SystemRef<'_> {
            SystemRef::new(&self.spec, &self.arch, &self.imp)
        }
    }

    /// A parameterised single-task system: `t` reads `s`@read_i, writes
    /// `u`@write_i, with configurable wcet and LRC.
    fn make(read_i: u64, write_i: u64, wcet: u64, lrc: Option<f64>) -> Sys {
        let mut sb = Specification::builder();
        let s = sb
            .communicator(
                CommunicatorDecl::new("s", ValueType::Float, 10)
                    .unwrap()
                    .from_sensor(),
            )
            .unwrap();
        let mut u_decl = CommunicatorDecl::new("u", ValueType::Float, 10).unwrap();
        if let Some(m) = lrc {
            u_decl = u_decl.with_lrc(r(m));
        }
        let u = sb.communicator(u_decl).unwrap();
        let t = sb
            .task(TaskDecl::new("t").reads(s, read_i).writes(u, write_i))
            .unwrap();
        let spec = sb.build().unwrap();
        let mut ab = Architecture::builder();
        let h1 = ab.host(HostDecl::new("h1", r(0.99))).unwrap();
        ab.host(HostDecl::new("h2", r(0.98))).unwrap();
        ab.sensor(SensorDecl::new("sen", Reliability::ONE)).unwrap();
        ab.wcet_all(t, wcet).unwrap();
        ab.wctt_all(t, 1).unwrap();
        let arch = ab.build();
        let imp = Implementation::builder()
            .assign(t, [h1])
            .bind_sensor(s, SensorId::new(0))
            .build(&spec, &arch)
            .unwrap();
        Sys { spec, arch, imp }
    }

    #[test]
    fn reflexive() {
        let a = make(0, 3, 5, Some(0.9));
        let k = Kappa::identity(&a.spec);
        assert!(check_refinement(a.as_ref(), a.as_ref(), &k).is_ok());
    }

    #[test]
    fn tighter_let_and_smaller_wcet_refines() {
        // Refining: reads later (1 vs 0), writes earlier (2 vs 3), smaller
        // wcet, weaker LRC.
        let refining = make(1, 2, 3, Some(0.8));
        let refined = make(0, 3, 5, Some(0.9));
        let k = Kappa::by_name(&refining.spec, &refined.spec);
        check_refinement(refining.as_ref(), refined.as_ref(), &k).unwrap();
    }

    #[test]
    fn wider_let_is_rejected() {
        let refining = make(0, 4, 5, Some(0.9));
        let refined = make(1, 3, 5, Some(0.9));
        let k = Kappa::by_name(&refining.spec, &refined.spec);
        let err = check_refinement(refining.as_ref(), refined.as_ref(), &k).unwrap_err();
        let RefineError::NotARefinement { violations } = err else {
            panic!()
        };
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::LetNotContained { read_side: true, .. })));
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::LetNotContained { read_side: false, .. })));
    }

    #[test]
    fn larger_wcet_is_rejected() {
        let refining = make(0, 3, 7, Some(0.9));
        let refined = make(0, 3, 5, Some(0.9));
        let k = Kappa::by_name(&refining.spec, &refined.spec);
        let err = check_refinement(refining.as_ref(), refined.as_ref(), &k).unwrap_err();
        assert!(err.to_string().contains("WCET"));
    }

    #[test]
    fn stronger_lrc_is_rejected() {
        let refining = make(0, 3, 5, Some(0.99));
        let refined = make(0, 3, 5, Some(0.9));
        let k = Kappa::by_name(&refining.spec, &refined.spec);
        let err = check_refinement(refining.as_ref(), refined.as_ref(), &k).unwrap_err();
        let RefineError::NotARefinement { violations } = err else {
            panic!()
        };
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::LrcExceeded { max: Some(_), .. })));
    }

    #[test]
    fn lrc_against_unconstrained_image_is_rejected() {
        let refining = make(0, 3, 5, Some(0.5));
        let refined = make(0, 3, 5, None);
        let k = Kappa::by_name(&refining.spec, &refined.spec);
        let err = check_refinement(refining.as_ref(), refined.as_ref(), &k).unwrap_err();
        let RefineError::NotARefinement { violations } = err else {
            panic!()
        };
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::LrcExceeded { max: None, .. })));
    }

    #[test]
    fn different_mapping_is_rejected() {
        let refining = make(0, 3, 5, Some(0.9));
        let refined = make(0, 3, 5, Some(0.9));
        let t = refining.spec.find_task("t").unwrap();
        let moved = refining.imp.with_assignment(t, [logrel_core::HostId::new(1)]);
        let refining_moved = SystemRef::new(&refining.spec, &refining.arch, &moved);
        let k = Kappa::identity(&refining.spec);
        let err = check_refinement(refining_moved, refined.as_ref(), &k).unwrap_err();
        let RefineError::NotARefinement { violations } = err else {
            panic!()
        };
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::MappingMismatch { .. })));
    }

    #[test]
    fn different_host_set_is_rejected() {
        let refining = make(0, 3, 5, Some(0.9));
        let refined = make(0, 3, 5, Some(0.9));
        // Rebuild refined arch with a different host reliability.
        let t = refined.spec.find_task("t").unwrap();
        let mut ab = Architecture::builder();
        ab.host(HostDecl::new("h1", r(0.5))).unwrap();
        ab.host(HostDecl::new("h2", r(0.98))).unwrap();
        ab.sensor(SensorDecl::new("sen", Reliability::ONE)).unwrap();
        ab.wcet_all(t, 5).unwrap();
        ab.wctt_all(t, 1).unwrap();
        let arch2 = ab.build();
        let refined2 = SystemRef::new(&refined.spec, &arch2, &refined.imp);
        let k = Kappa::identity(&refining.spec);
        let err = check_refinement(refining.as_ref(), refined2, &k).unwrap_err();
        assert!(err.to_string().contains("host"));
    }

    #[test]
    fn series_inputs_may_shrink_but_not_grow() {
        // Refined task reads s and extra; refining reads only s: OK.
        let build = |extra_input: bool| -> Sys {
            let mut sb = Specification::builder();
            let s = sb
                .communicator(
                    CommunicatorDecl::new("s", ValueType::Float, 10)
                        .unwrap()
                        .from_sensor(),
                )
                .unwrap();
            let extra = sb
                .communicator(
                    CommunicatorDecl::new("extra", ValueType::Float, 10)
                        .unwrap()
                        .from_sensor(),
                )
                .unwrap();
            let u = sb
                .communicator(CommunicatorDecl::new("u", ValueType::Float, 10).unwrap())
                .unwrap();
            let mut td = TaskDecl::new("t").reads(s, 0);
            if extra_input {
                td = td.reads(extra, 0);
            }
            let t = sb.task(td.writes(u, 1)).unwrap();
            let spec = sb.build().unwrap();
            let mut ab = Architecture::builder();
            let h1 = ab.host(HostDecl::new("h1", r(0.99))).unwrap();
            ab.host(HostDecl::new("h2", r(0.98))).unwrap();
            let sen = ab.sensor(SensorDecl::new("sen", Reliability::ONE)).unwrap();
            ab.wcet_all(t, 5).unwrap();
            ab.wctt_all(t, 1).unwrap();
            let arch = ab.build();
            let mut ib = Implementation::builder()
                .assign(t, [h1])
                .bind_sensor(s, sen);
            ib = ib.bind_sensor(extra, sen);
            let imp = ib.build(&spec, &arch).unwrap();
            Sys { spec, arch, imp }
        };
        let narrow = build(false);
        let wide = build(true);
        let k = Kappa::by_name(&narrow.spec, &wide.spec);
        // narrow refines wide (subset of inputs).
        check_refinement(narrow.as_ref(), wide.as_ref(), &k).unwrap();
        // wide does NOT refine narrow.
        let k2 = Kappa::by_name(&wide.spec, &narrow.spec);
        let err = check_refinement(wide.as_ref(), narrow.as_ref(), &k2).unwrap_err();
        let RefineError::NotARefinement { violations } = err else {
            panic!()
        };
        assert!(violations.iter().any(|v| matches!(
            v,
            Violation::InputSetMismatch {
                subset_required: true,
                ..
            }
        )));
    }

    #[test]
    fn transitivity_of_refinement() {
        let a = make(2, 3, 2, Some(0.7)); // tightest
        let b = make(1, 4, 4, Some(0.8));
        let c = make(0, 5, 6, Some(0.9)); // loosest
        let kab = Kappa::by_name(&a.spec, &b.spec);
        let kbc = Kappa::by_name(&b.spec, &c.spec);
        let kac = Kappa::by_name(&a.spec, &c.spec);
        check_refinement(a.as_ref(), b.as_ref(), &kab).unwrap();
        check_refinement(b.as_ref(), c.as_ref(), &kbc).unwrap();
        // Transitivity: a refines c directly.
        check_refinement(a.as_ref(), c.as_ref(), &kac).unwrap();
    }

    #[test]
    fn antisymmetry_on_let() {
        // a refines b but b does not refine a (strictly tighter LET).
        let a = make(1, 3, 5, Some(0.9));
        let b = make(0, 4, 5, Some(0.9));
        let kab = Kappa::by_name(&a.spec, &b.spec);
        let kba = Kappa::by_name(&b.spec, &a.spec);
        check_refinement(a.as_ref(), b.as_ref(), &kab).unwrap();
        assert!(check_refinement(b.as_ref(), a.as_ref(), &kba).is_err());
    }
}
