//! Refinement of specifications with incremental validity transfer.
//!
//! §3 of the paper: a system `(S', A', I')` *refines* `(S, A, I)` under a
//! total, one-to-one task mapping `κ : tset' → tset` if six local
//! constraints hold between each refining task `t'` and its image `κ(t')`:
//!
//! 1. identical replication mapping: `I'(t') = I(κ(t'))`;
//! 2. no larger execution metrics: `wemap'(t', h) ≤ wemap(κ(t'), h)` and
//!    `wtmap'(t', h) ≤ wtmap(κ(t'), h)` on every mapped host;
//! 3. a contained LET: `read_{t'} ≥ read_{κ(t')}` and
//!    `write_{t'} ≤ write_{κ(t')}`;
//! 4. no stronger output LRCs: every output LRC of `t'` is at most the
//!    largest output LRC of `κ(t')`;
//! 5. identical input failure model;
//! 6. inputs shrink under the series model (`icset(t') ⊆ icset(κ(t'))`)
//!    and grow under the parallel model (`icset(t') ⊇ icset(κ(t'))`).
//!
//! Additionally the two architectures must share the host set. Under these
//! conditions, Lemma 1 (schedulability) and Lemma 2 (reliability) transfer
//! from the refined to the refining system, giving Proposition 2: a valid
//! implementation of the refined specification is valid for the refining
//! one — no re-analysis required. [`incremental_validate`] exploits
//! exactly that.

pub mod error;
pub mod kappa;
pub mod relation;
pub mod validity;

pub use error::{RefineError, Violation};
pub use kappa::Kappa;
pub use relation::{check_refinement, SystemRef};
pub use validity::{
    incremental_validate, validate, validate_time_dependent, TimeDependentCertificate,
    ValidityCertificate, ValidityError,
};
