//! The task mapping κ between a refining and a refined specification.

use crate::error::{RefineError, Violation};
use logrel_core::{Specification, TaskId};
use std::collections::BTreeMap;

/// A total, one-to-one mapping from refining tasks to refined tasks.
///
/// # Example
///
/// ```
/// use logrel_core::prelude::*;
/// use logrel_refine::Kappa;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// # let mut b = Specification::builder();
/// # let c = b.communicator(CommunicatorDecl::new("c", ValueType::Float, 2)?.from_sensor())?;
/// # let d = b.communicator(CommunicatorDecl::new("d", ValueType::Float, 2)?)?;
/// # b.task(TaskDecl::new("t").reads(c, 0).writes(d, 1))?;
/// # let spec = b.build()?;
/// // Identity mapping of a spec onto itself:
/// let kappa = Kappa::identity(&spec);
/// let t = spec.find_task("t").unwrap();
/// assert_eq!(kappa.image(t), Some(t));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Kappa {
    map: BTreeMap<TaskId, TaskId>,
}

impl Kappa {
    /// An empty mapping to be populated with [`Kappa::map_task`].
    pub fn new() -> Self {
        Kappa {
            map: BTreeMap::new(),
        }
    }

    /// Maps refining task `from` to refined task `to` (overwrites any
    /// previous image of `from`).
    pub fn map_task(mut self, from: TaskId, to: TaskId) -> Self {
        self.map.insert(from, to);
        self
    }

    /// The identity mapping on `spec`'s tasks.
    pub fn identity(spec: &Specification) -> Self {
        Kappa {
            map: spec.task_ids().map(|t| (t, t)).collect(),
        }
    }

    /// Maps tasks of `refining` to the same-named tasks of `refined`;
    /// tasks without a same-named image are left unmapped (and will be
    /// reported as [`Violation::KappaNotTotal`] by the checker).
    pub fn by_name(refining: &Specification, refined: &Specification) -> Self {
        let mut map = BTreeMap::new();
        for t in refining.task_ids() {
            if let Some(img) = refined.find_task(refining.task(t).name()) {
                map.insert(t, img);
            }
        }
        Kappa { map }
    }

    /// Builds κ from explicit name pairs `(refining task, refined task)`;
    /// tasks not mentioned fall back to same-name matching (so a partial
    /// explicit map only has to cover the renamed tasks).
    ///
    /// # Errors
    ///
    /// Returns [`RefineError::UnknownTask`] for a pair naming a
    /// nonexistent task on either side.
    pub fn from_pairs<'p>(
        refining: &Specification,
        refined: &Specification,
        pairs: impl IntoIterator<Item = (&'p str, &'p str)>,
    ) -> Result<Self, RefineError> {
        let mut kappa = Kappa::by_name(refining, refined);
        for (from, to) in pairs {
            let f = refining
                .find_task(from)
                .ok_or_else(|| RefineError::UnknownTask { id: from.into() })?;
            let t = refined
                .find_task(to)
                .ok_or_else(|| RefineError::UnknownTask { id: to.into() })?;
            kappa.map.insert(f, t);
        }
        Ok(kappa)
    }

    /// The image of a refining task.
    pub fn image(&self, task: TaskId) -> Option<TaskId> {
        self.map.get(&task).copied()
    }

    /// Checks totality (every refining task mapped) and injectivity.
    ///
    /// # Errors
    ///
    /// Returns [`RefineError::NotARefinement`] listing every unmapped task
    /// and every injectivity collision; [`RefineError::UnknownTask`] if an
    /// image id lies outside `refined`.
    pub fn validate(
        &self,
        refining: &Specification,
        refined: &Specification,
    ) -> Result<(), RefineError> {
        let mut violations = Vec::new();
        let mut used: BTreeMap<TaskId, TaskId> = BTreeMap::new();
        for t in refining.task_ids() {
            match self.image(t) {
                None => violations.push(Violation::KappaNotTotal {
                    task: refining.task(t).name().to_owned(),
                }),
                Some(img) => {
                    if img.index() >= refined.task_count() {
                        return Err(RefineError::UnknownTask {
                            id: img.to_string(),
                        });
                    }
                    if let Some(&prev) = used.get(&img) {
                        violations.push(Violation::KappaNotInjective {
                            refined: refined.task(img).name().to_owned(),
                            first: refining.task(prev).name().to_owned(),
                            second: refining.task(t).name().to_owned(),
                        });
                    } else {
                        used.insert(img, t);
                    }
                }
            }
        }
        if violations.is_empty() {
            Ok(())
        } else {
            Err(RefineError::NotARefinement { violations })
        }
    }
}

impl Default for Kappa {
    fn default() -> Self {
        Kappa::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logrel_core::{CommunicatorDecl, TaskDecl, ValueType};

    fn two_task_spec(names: [&str; 2]) -> Specification {
        let mut b = Specification::builder();
        let c = b
            .communicator(
                CommunicatorDecl::new("c", ValueType::Float, 2)
                    .unwrap()
                    .from_sensor(),
            )
            .unwrap();
        let d = b
            .communicator(CommunicatorDecl::new("d", ValueType::Float, 2).unwrap())
            .unwrap();
        let e = b
            .communicator(CommunicatorDecl::new("e", ValueType::Float, 2).unwrap())
            .unwrap();
        b.task(TaskDecl::new(names[0]).reads(c, 0).writes(d, 1)).unwrap();
        b.task(TaskDecl::new(names[1]).reads(c, 0).writes(e, 1)).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn identity_is_valid() {
        let spec = two_task_spec(["a", "b"]);
        let k = Kappa::identity(&spec);
        assert!(k.validate(&spec, &spec).is_ok());
    }

    #[test]
    fn by_name_matches() {
        let s1 = two_task_spec(["a", "b"]);
        let s2 = two_task_spec(["b", "a"]); // same names, swapped order
        let k = Kappa::by_name(&s1, &s2);
        assert!(k.validate(&s1, &s2).is_ok());
        let a1 = s1.find_task("a").unwrap();
        let a2 = s2.find_task("a").unwrap();
        assert_eq!(k.image(a1), Some(a2));
    }

    #[test]
    fn missing_mapping_is_not_total() {
        let s1 = two_task_spec(["a", "b"]);
        let s2 = two_task_spec(["a", "x"]);
        let k = Kappa::by_name(&s1, &s2);
        let err = k.validate(&s1, &s2).unwrap_err();
        let RefineError::NotARefinement { violations } = err else {
            panic!()
        };
        assert!(matches!(&violations[0], Violation::KappaNotTotal { task } if task == "b"));
    }

    #[test]
    fn non_injective_rejected() {
        let s1 = two_task_spec(["a", "b"]);
        let s2 = two_task_spec(["a", "b"]);
        let a1 = s1.find_task("a").unwrap();
        let b1 = s1.find_task("b").unwrap();
        let a2 = s2.find_task("a").unwrap();
        let k = Kappa::new().map_task(a1, a2).map_task(b1, a2);
        let err = k.validate(&s1, &s2).unwrap_err();
        let RefineError::NotARefinement { violations } = err else {
            panic!()
        };
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::KappaNotInjective { .. })));
    }

    #[test]
    fn unknown_image_rejected() {
        let s1 = two_task_spec(["a", "b"]);
        let s2 = two_task_spec(["a", "b"]);
        let a1 = s1.find_task("a").unwrap();
        let b1 = s1.find_task("b").unwrap();
        let k = Kappa::new()
            .map_task(a1, TaskId::new(9))
            .map_task(b1, TaskId::new(1));
        assert!(matches!(
            k.validate(&s1, &s2).unwrap_err(),
            RefineError::UnknownTask { .. }
        ));
    }

    #[test]
    fn default_is_empty() {
        let k = Kappa::default();
        assert_eq!(k.image(TaskId::new(0)), None);
    }
}
