//! The line-delimited job protocol: `logrel-job-v1` requests in,
//! `logrel-metrics-v1` results and `logrel-job-status-v1` status lines
//! out.
//!
//! Every message is one line of JSON. The parser is a small
//! recursive-descent implementation over a byte cursor — the repo
//! carries no serde, and the protocol surface is deliberately tiny, so
//! hand-rolling keeps the service dependency-free and the error
//! positions exact.
//!
//! Structured rejections carry stable `S`-codes:
//!
//! | code | meaning |
//! |------|---------|
//! | S001 | malformed request (bad JSON, wrong schema, bad field) |
//! | S002 | queue full — resubmit later |
//! | S003 | spec failed to compile |
//! | S004 | bad scenario or campaign parameters |
//! | S005 | service is shutting down |

use logrel_sim::LaneMode;

/// Stable rejection code: malformed request line.
pub const S_MALFORMED: &str = "S001";
/// Stable rejection code: admission queue full.
pub const S_QUEUE_FULL: &str = "S002";
/// Stable rejection code: spec failed analysis/compilation.
pub const S_COMPILE: &str = "S003";
/// Stable rejection code: bad scenario or campaign parameters.
pub const S_CAMPAIGN: &str = "S004";
/// Stable rejection code: service draining, no new jobs.
pub const S_SHUTDOWN: &str = "S005";

/// A structured job rejection: a stable `S`-code plus a human-readable
/// message, rendered as a `logrel-job-status-v1` line by
/// [`status_rejected`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobError {
    /// One of the `S_*` codes above.
    pub code: &'static str,
    /// Human-readable detail (embedded JSON-escaped in the status line).
    pub message: String,
}

impl JobError {
    /// A rejection with the given code and message.
    #[must_use]
    pub fn new(code: &'static str, message: String) -> Self {
        JobError { code, message }
    }
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for JobError {}

/// A parsed JSON value. Numbers keep their source literal so integer
/// fields (seeds are full-range `u64`) round-trip without a lossy `f64`
/// detour.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// The raw number literal, e.g. `"18446744073709551615"`.
    Num(String),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if the literal parses as one.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }
}

/// Parses one JSON document; trailing garbage is an error.
pub fn parse_json(input: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!("unexpected `{}` at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_owned()),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_owned())?;
                            self.pos += 4;
                            // Surrogate pairs are not worth supporting for
                            // this protocol; map them to the replacement
                            // character rather than rejecting the line.
                            out.push(char::from_u32(cp).unwrap_or('\u{FFFD}'));
                        }
                        c => return Err(format!("bad escape `\\{}`", c as char)),
                    }
                }
                Some(_) => {
                    // Copy a maximal run of plain bytes (UTF-8 passes
                    // through untouched).
                    let start = self.pos;
                    while let Some(b) = self.peek() {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| "invalid UTF-8 in string".to_owned())?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        // Validate via f64 parse (u64 literals above 2^53 still keep
        // their exact raw form for `as_u64`).
        raw.parse::<f64>()
            .map_err(|_| format!("bad number at byte {start}"))?;
        Ok(Json::Num(raw.to_owned()))
    }
}

/// Where a job's spec or scenario text comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Source {
    /// Text inline in the request.
    Inline(String),
    /// A path the server reads (relative paths resolve against the
    /// server's working directory).
    Path(String),
}

/// One parsed `logrel-job-v1` request.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRequest {
    /// Client-chosen job id, echoed on every response line.
    pub id: String,
    /// The HTL spec.
    pub spec: Source,
    /// The fault scenario script.
    pub scenario: Source,
    /// Rounds per replication (default 4000, matching `htlc inject`).
    pub rounds: u64,
    /// Replication count (default 8).
    pub replications: u64,
    /// Campaign base seed (default `0xC0FFEE`).
    pub seed: u64,
    /// Lane mode: `"auto"` (default), `"off"`, or a width 1..=64.
    pub lanes: LaneMode,
}

/// A request line, after schema dispatch.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run a campaign job.
    Job(Box<JobRequest>),
    /// Emit the service's own metrics registry.
    Stats { id: String },
}

/// Parses one request line. On error, returns `(job id if recoverable,
/// message)` — the id lets the rejection line still correlate.
pub fn parse_request(line: &str) -> Result<Request, (String, String)> {
    let doc = parse_json(line).map_err(|e| ("?".to_owned(), e))?;
    let id = doc
        .get("id")
        .and_then(Json::as_str)
        .unwrap_or("?")
        .to_owned();
    let fail = |msg: &str| Err((id.clone(), msg.to_owned()));
    match doc.get("schema").and_then(Json::as_str) {
        Some("logrel-job-v1") => {}
        Some(other) => return fail(&format!("unknown schema `{other}`")),
        None => return fail("missing `schema`"),
    }
    if id == "?" {
        return fail("missing `id`");
    }
    if let Some(op) = doc.get("op").and_then(Json::as_str) {
        return match op {
            "run" => parse_job(&doc, id.clone()).map_err(|m| (id, m)),
            "stats" => Ok(Request::Stats { id }),
            other => fail(&format!("unknown op `{other}`")),
        };
    }
    parse_job(&doc, id.clone()).map_err(|m| (id, m))
}

fn source_field(doc: &Json, inline: &str, path: &str) -> Result<Option<Source>, String> {
    match (doc.get(inline), doc.get(path)) {
        (Some(_), Some(_)) => Err(format!("both `{inline}` and `{path}` given")),
        (Some(v), None) => match v.as_str() {
            Some(s) => Ok(Some(Source::Inline(s.to_owned()))),
            None => Err(format!("`{inline}` must be a string")),
        },
        (None, Some(v)) => match v.as_str() {
            Some(s) => Ok(Some(Source::Path(s.to_owned()))),
            None => Err(format!("`{path}` must be a string")),
        },
        (None, None) => Ok(None),
    }
}

fn u64_field(doc: &Json, key: &str, default: u64) -> Result<u64, String> {
    match doc.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| format!("`{key}` must be a non-negative integer")),
    }
}

fn parse_job(doc: &Json, id: String) -> Result<Request, String> {
    let spec = source_field(doc, "spec", "spec_path")?.ok_or("missing `spec` or `spec_path`")?;
    let scenario = source_field(doc, "scenario", "scenario_path")?
        .ok_or("missing `scenario` or `scenario_path`")?;
    let lanes = match doc.get("lanes") {
        None => LaneMode::Auto,
        Some(Json::Str(s)) if s == "auto" => LaneMode::Auto,
        Some(Json::Str(s)) if s == "off" => LaneMode::Off,
        Some(v) => match v.as_u64() {
            Some(n @ 1..=64) => LaneMode::Width(n as u8),
            _ => return Err("`lanes` must be \"auto\", \"off\" or 1..=64".to_owned()),
        },
    };
    Ok(Request::Job(Box::new(JobRequest {
        id,
        spec,
        scenario,
        rounds: u64_field(doc, "rounds", 4_000)?,
        replications: u64_field(doc, "replications", 8)?,
        seed: u64_field(doc, "seed", 0xC0FFEE)?,
        lanes,
    })))
}

/// Escapes `s` for embedding inside a JSON string literal.
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the status line for a completed job.
#[must_use]
pub fn status_done(id: &str, cache_hit: bool) -> String {
    format!(
        "{{\"schema\":\"logrel-job-status-v1\",\"id\":\"{}\",\"status\":\"done\",\"cache\":\"{}\"}}",
        escape(id),
        if cache_hit { "hit" } else { "miss" },
    )
}

/// Renders the status line for a rejected job.
#[must_use]
pub fn status_rejected(id: &str, code: &str, message: &str) -> String {
    format!(
        "{{\"schema\":\"logrel-job-status-v1\",\"id\":\"{}\",\"status\":\"rejected\",\"code\":\"{}\",\"message\":\"{}\"}}",
        escape(id),
        escape(code),
        escape(message),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_job_with_defaults() {
        let line = r#"{"schema":"logrel-job-v1","id":"j1","spec":"program p {}","scenario_path":"s.fault"}"#;
        match parse_request(line).unwrap() {
            Request::Job(job) => {
                assert_eq!(job.id, "j1");
                assert_eq!(job.spec, Source::Inline("program p {}".to_owned()));
                assert_eq!(job.scenario, Source::Path("s.fault".to_owned()));
                assert_eq!(job.rounds, 4_000);
                assert_eq!(job.replications, 8);
                assert_eq!(job.seed, 0xC0FFEE);
                assert_eq!(job.lanes, LaneMode::Auto);
            }
            other => panic!("expected job, got {other:?}"),
        }
    }

    #[test]
    fn full_range_u64_seed_round_trips_exactly() {
        let line = format!(
            r#"{{"schema":"logrel-job-v1","id":"j","spec":"x","scenario":"y","seed":{}}}"#,
            u64::MAX
        );
        match parse_request(&line).unwrap() {
            Request::Job(job) => assert_eq!(job.seed, u64::MAX),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejections_keep_the_job_id_when_present() {
        let (id, msg) =
            parse_request(r#"{"schema":"logrel-job-v1","id":"j9"}"#).unwrap_err();
        assert_eq!(id, "j9");
        assert!(msg.contains("spec"), "{msg}");
        let (id, _) = parse_request("not json").unwrap_err();
        assert_eq!(id, "?");
    }

    #[test]
    fn schema_and_op_are_validated() {
        assert!(parse_request(r#"{"schema":"nope-v9","id":"a","spec":"x","scenario":"y"}"#)
            .is_err());
        assert!(matches!(
            parse_request(r#"{"schema":"logrel-job-v1","id":"a","op":"stats"}"#),
            Ok(Request::Stats { .. })
        ));
        assert!(parse_request(r#"{"schema":"logrel-job-v1","id":"a","op":"dance"}"#).is_err());
    }

    #[test]
    fn json_parser_handles_nesting_escapes_and_rejects_garbage() {
        let v = parse_json(r#"{"a":[1,2.5,{"b":"x\ny"}],"c":true,"d":null}"#).unwrap();
        assert_eq!(
            v.get("a").unwrap(),
            &Json::Arr(vec![
                Json::Num("1".into()),
                Json::Num("2.5".into()),
                Json::Obj(vec![("b".into(), Json::Str("x\ny".into()))]),
            ])
        );
        assert_eq!(v.get("c"), Some(&Json::Bool(true)));
        assert_eq!(v.get("d"), Some(&Json::Null));
        assert!(parse_json("{").is_err());
        assert!(parse_json(r#"{"a":1} extra"#).is_err());
        assert!(parse_json(r#"{"a":}"#).is_err());
    }

    #[test]
    fn status_lines_are_single_line_json() {
        let done = status_done("j\"1", true);
        assert!(parse_json(&done).is_ok(), "{done}");
        assert!(!done.contains('\n'));
        let rej = status_rejected("j", S_QUEUE_FULL, "queue full\nretry");
        assert!(parse_json(&rej).is_ok(), "{rej}");
        assert!(!rej.contains('\n'));
    }
}
