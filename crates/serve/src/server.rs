//! Transport frontends for the engine: line-at-a-time request
//! processing, a sequential `--stdin` mode for CI, and a threaded TCP
//! listener.
//!
//! Both frontends share [`process_line`], so a job behaves identically
//! whether it arrives over a socket or a pipe. A malformed or failing
//! line produces a structured rejection and never terminates the
//! service — the next line is processed normally.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::engine::{Engine, Job};
use crate::proto::{self, parse_request, Request, Source};

fn resolve(source: &Source) -> Result<(String, String), String> {
    match source {
        Source::Inline(text) => Ok((text.clone(), "<inline>".to_owned())),
        Source::Path(path) => std::fs::read_to_string(path)
            .map(|text| (text, path.clone()))
            .map_err(|e| format!("{path}: {e}")),
    }
}

/// Processes one request line into zero or more response lines (empty
/// lines produce no response). Blocking: job lines return only once the
/// campaign finished or was rejected.
pub fn process_line(engine: &Engine, line: &str) -> Vec<String> {
    let line = line.trim();
    if line.is_empty() {
        return Vec::new();
    }
    let request = match parse_request(line) {
        Ok(r) => r,
        Err((id, message)) => {
            engine.count_rejected();
            return vec![proto::status_rejected(&id, proto::S_MALFORMED, &message)];
        }
    };
    match request {
        Request::Stats { id } => vec![engine.stats_line(), proto::status_done(&id, false)],
        Request::Job(job) => {
            let read = |source: &Source| match resolve(source) {
                Ok(x) => Ok(x),
                Err(message) => {
                    engine.count_rejected();
                    Err(vec![proto::status_rejected(&job.id, proto::S_MALFORMED, &message)])
                }
            };
            let (spec_source, spec_label) = match read(&job.spec) {
                Ok(x) => x,
                Err(lines) => return lines,
            };
            let (scenario_source, _) = match read(&job.scenario) {
                Ok(x) => x,
                Err(lines) => return lines,
            };
            let resolved = Job {
                spec_source,
                spec_label,
                scenario_source,
                rounds: job.rounds,
                replications: job.replications,
                seed: job.seed,
                lanes: job.lanes,
            };
            match engine.submit(&resolved) {
                Ok(out) => vec![out.metrics_line, proto::status_done(&job.id, out.cache_hit)],
                Err(e) => vec![proto::status_rejected(&job.id, e.code, &e.message)],
            }
        }
    }
}

/// Serves requests from stdin, one line at a time, until EOF. Responses
/// go to stdout, flushed per request (CI drives this with a pipe). On
/// EOF the engine drains and stops.
pub fn serve_stdin(engine: &Engine) -> std::io::Result<()> {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    for line in stdin.lock().lines() {
        let line = line?;
        let responses = process_line(engine, &line);
        let mut out = stdout.lock();
        for response in &responses {
            writeln!(out, "{response}")?;
        }
        out.flush()?;
    }
    engine.shutdown();
    Ok(())
}

/// A running TCP frontend: an accept loop plus one thread per
/// connection, all sharing one [`Engine`].
pub struct Server {
    engine: Engine,
    local_addr: SocketAddr,
    accept_thread: Option<std::thread::JoinHandle<()>>,
    stop: Arc<AtomicBool>,
}

impl Server {
    /// Binds `addr` (use port 0 to let the OS pick) and starts
    /// accepting.
    pub fn start(engine: Engine, addr: &str) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        // Non-blocking accept so the loop can observe the stop flag.
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let engine = engine.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || accept_loop(&engine, &listener, &stop))
        };
        Ok(Server {
            engine,
            local_addr,
            accept_thread: Some(accept_thread),
            stop,
        })
    }

    /// The bound address (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The shared engine (for metrics assertions and cache control).
    #[must_use]
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Graceful shutdown: stop accepting connections, reject new jobs,
    /// drain in-flight ones, stop the workers. Connection threads exit
    /// when their clients hang up; they are not joined.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        self.engine.begin_shutdown();
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        self.engine.shutdown();
    }
}

fn accept_loop(engine: &Engine, listener: &TcpListener, stop: &AtomicBool) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let engine = engine.clone();
                std::thread::spawn(move || handle_connection(&engine, stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn handle_connection(engine: &Engine, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let reader = BufReader::new(read_half);
    let mut writer = stream;
    for line in reader.lines() {
        let Ok(line) = line else { return };
        for response in process_line(engine, &line) {
            if writeln!(writer, "{response}").is_err() {
                return;
            }
        }
        if writer.flush().is_err() {
            return;
        }
    }
}

static TERM_REQUESTED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_term_signal(_signum: i32) {
    // Only an atomic store: async-signal-safe.
    TERM_REQUESTED.store(true, Ordering::SeqCst);
}

/// Installs a SIGTERM/SIGINT hook that flips a flag checked by
/// [`term_requested`]. The binary's serve loop polls it and drains
/// gracefully instead of dying mid-job.
pub fn install_term_hook() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_term_signal as *const () as usize);
        signal(SIGINT, on_term_signal as *const () as usize);
    }
}

/// Whether a termination signal arrived since [`install_term_hook`].
#[must_use]
pub fn term_requested() -> bool {
    TERM_REQUESTED.load(Ordering::SeqCst)
}
