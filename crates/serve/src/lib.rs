//! A fleet-scale campaign job service for the logrel toolchain.
//!
//! `htlc` answers one question per process invocation; a reliability
//! sweep over hundreds of (spec, scenario, seed) points pays the
//! process spawn, elaboration, verification, and round-program
//! compilation again for every point even when the spec never changed.
//! This crate turns the pipeline into a long-running service:
//!
//! * [`proto`] — the line-delimited `logrel-job-v1` request /
//!   `logrel-metrics-v1` result / `logrel-job-status-v1` status
//!   protocol, with stable `S001`–`S005` rejection codes;
//! * [`engine`] — a compilation cache keyed by spec content hash
//!   (warm-started from the incremental analysis database, so edited
//!   resubmissions reuse the refinement relation), a bounded admission
//!   queue, and a worker pool that shards replications across jobs
//!   while merging results in replication order;
//! * [`server`] — a `--stdin` frontend for CI pipelines and a threaded
//!   TCP frontend, plus the SIGTERM hook used for graceful drains.
//!
//! The service invariant worth stating twice: a served job's metrics
//! line is **byte-identical at any worker count** and equal to a
//! standalone `htlc inject --metrics` export of the same
//! `(spec, scenario, seed, lanes)` minus the wall-clock `*_seconds`
//! span gauges. Caches and concurrency change cost, never results.

pub mod engine;
pub mod proto;
pub mod server;

pub use engine::{Engine, Job, JobOutcome, ServeConfig};
pub use proto::{JobError, JobRequest, Request, Source};
pub use server::{install_term_hook, process_line, serve_stdin, term_requested, Server};
