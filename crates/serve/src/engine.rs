//! The campaign engine: compilation cache, admission control, and the
//! work-stealing replication pool.
//!
//! # Compilation cache
//!
//! Jobs are keyed by the FNV-1a hash of the spec source. A miss runs the
//! full front half once — incremental analysis ([`analyze_source`],
//! warm-started from the service's [`SharedDb`] so a *resubmitted edited
//! spec* reuses the refinement relation), elaboration, one
//! [`Simulation::try_new_observed`] (which compiles the calendar and
//! round program and, under the `validate` feature, self-certifies the
//! kernel) and the analytic SRG pass — and caches the result behind an
//! `Arc`. A hit shares everything; the only per-job work left is the
//! Monte-Carlo campaign itself. The cache lock is held across a compile,
//! so concurrent submissions of the same new spec compile it exactly
//! once (single-flight).
//!
//! # Determinism
//!
//! Replications are sharded into [`CampaignUnit`]s and scattered over
//! the worker pool; results land in per-job slots indexed by unit and
//! are merged in unit (= replication) order. Seeds derive from
//! `(base_seed, replication)`, never from a worker id, so the exported
//! registry is **byte-identical at any worker count** and equal to a
//! standalone `htlc inject` of the same `(spec, scenario, seed, lanes)`
//! up to the wall-clock `*_seconds` span gauges, which a service job
//! deliberately never records.
//!
//! # Backpressure and shutdown
//!
//! Admission is a bounded counter of in-flight jobs: the
//! `queue_capacity`-th concurrent submission is rejected with a
//! structured `S002` line instead of queueing unboundedly. Shutdown
//! flips `accepting` (new submissions get `S005`), drains in-flight
//! jobs, then stops the workers.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use logrel_core::{Architecture, Value};
use logrel_lang::subspec::FnvWriter;
use logrel_lang::ElaboratedSystem;
use logrel_obs::export::to_json_line;
use logrel_obs::{names, MetricsSink, NoopSink, Registry};
use logrel_query::{analyze_source, LoadOutcome, SharedDb};
use logrel_sim::montecarlo::{BatchConfig, ReplicationContext};
use logrel_sim::{
    plan_units, run_campaign_unit, aggregate_campaign, BehaviorMap, CampaignConfig, CampaignUnit,
    ConstantEnvironment, LaneMode, MonitorConfig, ProbabilisticFaults, RepStats, Scenario,
    ScenarioSymbols, Simulation,
};

use crate::proto::{self, JobError};

/// Service tuning knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads; `0` means one per available core.
    pub workers: usize,
    /// Maximum concurrently admitted jobs (queued or running). The next
    /// submission is rejected with `S002`.
    pub queue_capacity: usize,
    /// Flight-recorder capacity for job registries (0 disables); the
    /// default matches `htlc inject`'s ring of 256.
    pub recorder_capacity: usize,
    /// Optional `.logrel-cache` path: loaded at startup to warm the
    /// analysis db, atomically rewritten after each compile.
    pub cache_path: Option<String>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 0,
            queue_capacity: 16,
            recorder_capacity: 256,
            cache_path: None,
        }
    }
}

/// A job with its spec and scenario text already resolved.
#[derive(Debug, Clone)]
pub struct Job {
    /// Spec source text.
    pub spec_source: String,
    /// Label used in compile diagnostics (a path, or `<inline>`).
    pub spec_label: String,
    /// Scenario script text.
    pub scenario_source: String,
    /// Rounds per replication.
    pub rounds: u64,
    /// Replication count.
    pub replications: u64,
    /// Campaign base seed.
    pub seed: u64,
    /// Lane mode.
    pub lanes: LaneMode,
}

/// A successfully completed job.
#[derive(Debug)]
pub struct JobOutcome {
    /// The `logrel-metrics-v1` registry as one compact JSON line.
    pub metrics_line: String,
    /// Whether the spec came out of the compilation cache.
    pub cache_hit: bool,
}

/// Everything derived from a spec that campaigns can share: the
/// elaborated system, its time-dependent implementation, the compiled
/// calendar/round program, and the analytic SRG vector.
struct CompiledSpec {
    sys: ElaboratedSystem,
    td: logrel_core::TimeDependentImplementation,
    calendar: Arc<logrel_core::Calendar>,
    program: Arc<logrel_core::RoundProgram>,
    analytic: Vec<Option<f64>>,
}

struct Symbols<'a>(&'a ElaboratedSystem);

impl ScenarioSymbols for Symbols<'_> {
    fn host(&self, name: &str) -> Option<logrel_core::HostId> {
        self.0.arch.find_host(name)
    }
    fn communicator(&self, name: &str) -> Option<logrel_core::CommunicatorId> {
        self.0.spec.find_communicator(name)
    }
}

/// One unit of pool work: run `job.units[unit_index]`.
struct WorkItem {
    job: Arc<JobState>,
    unit_index: usize,
}

/// Per-unit results are strings on the error side so a worker panic can
/// be reported without widening [`logrel_sim::CampaignError`].
type UnitResult = Result<Vec<(RepStats, Registry)>, String>;

struct SlotBoard {
    results: Vec<Option<UnitResult>>,
    remaining: usize,
}

struct JobState {
    compiled: Arc<CompiledSpec>,
    scenario: Scenario,
    config: CampaignConfig,
    units: Vec<CampaignUnit>,
    recorder_capacity: usize,
    slots: Mutex<SlotBoard>,
    done_cv: Condvar,
}

struct WorkQueue {
    items: VecDeque<WorkItem>,
    stop: bool,
}

struct Inner {
    config: ServeConfig,
    queue: Mutex<WorkQueue>,
    work_cv: Condvar,
    cache: Mutex<HashMap<u64, Arc<CompiledSpec>>>,
    db: SharedDb,
    metrics: Mutex<Registry>,
    active_jobs: AtomicUsize,
    accepting: AtomicBool,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// The campaign service engine. Cheap to clone; all clones share one
/// cache, one metrics registry and one worker pool.
#[derive(Clone)]
pub struct Engine {
    inner: Arc<Inner>,
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|poison| poison.into_inner())
}

impl Engine {
    /// Starts the worker pool and (optionally) warms the analysis db
    /// from `config.cache_path`.
    #[must_use]
    pub fn new(config: ServeConfig) -> Engine {
        let db = match &config.cache_path {
            Some(path) => match logrel_query::load(path) {
                LoadOutcome::Loaded(db) => SharedDb::with_db(*db),
                // Missing or invalid caches mean cold starts, never
                // failures — reads fail closed, writes will replace.
                LoadOutcome::Missing | LoadOutcome::Invalid(_) => SharedDb::new(),
            },
            None => SharedDb::new(),
        };
        let worker_count = if config.workers == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            config.workers
        };
        let inner = Arc::new(Inner {
            config,
            queue: Mutex::new(WorkQueue { items: VecDeque::new(), stop: false }),
            work_cv: Condvar::new(),
            cache: Mutex::new(HashMap::new()),
            db,
            metrics: Mutex::new(Registry::new()),
            active_jobs: AtomicUsize::new(0),
            accepting: AtomicBool::new(true),
            workers: Mutex::new(Vec::new()),
        });
        let mut handles = Vec::with_capacity(worker_count);
        for _ in 0..worker_count {
            let inner = Arc::clone(&inner);
            handles.push(std::thread::spawn(move || worker_loop(&inner)));
        }
        *lock(&inner.workers) = handles;
        Engine { inner }
    }

    /// Runs one job to completion (blocking the calling thread; the
    /// campaign itself runs on the pool). Errors carry the structured
    /// `S`-code the protocol layer renders.
    pub fn submit(&self, job: &Job) -> Result<JobOutcome, JobError> {
        let inner = &*self.inner;
        // Admission first, acceptance check second: `shutdown` flips
        // `accepting` and then waits for `active_jobs` to reach zero, so
        // any submission it cannot see here is guaranteed to observe the
        // flag and bail out (SeqCst store/load pairs on both sides).
        let admitted = inner.active_jobs.fetch_update(
            Ordering::SeqCst,
            Ordering::SeqCst,
            |n| (n < inner.config.queue_capacity).then_some(n + 1),
        );
        if admitted.is_err() {
            self.count_rejected();
            return Err(JobError::new(
                proto::S_QUEUE_FULL,
                format!(
                    "admission queue full ({} jobs in flight); resubmit later",
                    inner.config.queue_capacity
                ),
            ));
        }
        let guard = ActiveGuard { engine: self };
        guard.update_depth_gauge();
        if !inner.accepting.load(Ordering::SeqCst) {
            self.count_rejected();
            return Err(JobError::new(proto::S_SHUTDOWN, "service is shutting down".to_owned()));
        }
        {
            let mut metrics = lock(&inner.metrics);
            metrics.inc(names::SERVE_JOBS_ACCEPTED);
        }
        let result = self.run_admitted(job);
        match &result {
            Ok(_) => lock(&inner.metrics).inc(names::SERVE_JOBS_COMPLETED),
            Err(_) => self.count_rejected(),
        }
        drop(guard);
        result
    }

    fn run_admitted(&self, job: &Job) -> Result<JobOutcome, JobError> {
        let inner = &*self.inner;
        let (compiled, cache_hit) = self.compiled(&job.spec_source, &job.spec_label)?;
        let scenario = Scenario::parse_with(&job.scenario_source, &Symbols(&compiled.sys))
            .map_err(|e| JobError::new(proto::S_CAMPAIGN, e.to_string()))?;
        let host_count = compiled.sys.arch.host_count();
        scenario
            .check_bounds(host_count, compiled.sys.spec.communicator_count())
            .map_err(|e| JobError::new(proto::S_CAMPAIGN, e.to_string()))?;
        if job.replications == 0 {
            return Err(JobError::new(
                proto::S_CAMPAIGN,
                "campaign needs at least one replication".to_owned(),
            ));
        }
        let config = CampaignConfig {
            batch: BatchConfig {
                replications: job.replications,
                rounds: job.rounds,
                base_seed: job.seed,
                // Unused here: sharding happens on the service pool, not
                // inside the campaign runner.
                threads: 1,
            },
            monitor: MonitorConfig::default(),
            lanes: job.lanes,
        };
        let units = plan_units(job.replications, config.lanes.width());
        let state = Arc::new(JobState {
            compiled: Arc::clone(&compiled),
            scenario,
            config,
            recorder_capacity: inner.config.recorder_capacity,
            slots: Mutex::new(SlotBoard {
                results: (0..units.len()).map(|_| None).collect(),
                remaining: units.len(),
            }),
            units,
            done_cv: Condvar::new(),
        });
        {
            let mut q = lock(&inner.queue);
            for unit_index in 0..state.units.len() {
                q.items.push_back(WorkItem { job: Arc::clone(&state), unit_index });
            }
        }
        inner.work_cv.notify_all();
        let mut board = lock(&state.slots);
        while board.remaining > 0 {
            board = state
                .done_cv
                .wait(board)
                .unwrap_or_else(|poison| poison.into_inner());
        }
        // Merge in unit order == replication order: this is what makes
        // the export independent of worker count and scheduling.
        let mut per_rep = Vec::with_capacity(job.replications as usize);
        for slot in board.results.iter_mut() {
            match slot.take().expect("remaining == 0 implies every slot is filled") {
                Ok(unit_reps) => per_rep.extend(unit_reps),
                Err(msg) => return Err(JobError::new(proto::S_CAMPAIGN, msg)),
            }
        }
        drop(board);
        let (_report, sinks) = aggregate_campaign(
            &compiled.sys.spec,
            &state.scenario,
            host_count,
            &state.config,
            &compiled.analytic,
            per_rep,
        );
        // Mirror `htlc inject`'s registry exactly, minus the wall-clock
        // `*_seconds` spans (which would break byte-equality and are a
        // per-process, not per-job, concern).
        let mut registry = if inner.config.recorder_capacity > 0 {
            Registry::with_recorder(inner.config.recorder_capacity)
        } else {
            Registry::new()
        };
        registry.set_gauge(names::BITSLICE_LANES, job.lanes.width() as f64);
        registry.set_gauge(names::CAMPAIGN_SEED, job.seed as f64);
        for sink in sinks {
            registry.merge(sink);
        }
        Ok(JobOutcome { metrics_line: to_json_line(&registry), cache_hit })
    }

    /// The compiled form of `source`, from cache or compiled now.
    fn compiled(&self, source: &str, label: &str) -> Result<(Arc<CompiledSpec>, bool), JobError> {
        let inner = &*self.inner;
        let mut hasher = FnvWriter::new();
        hasher.write_bytes(source.as_bytes());
        let key = hasher.finish();
        let mut cache = lock(&inner.cache);
        if let Some(hit) = cache.get(&key) {
            lock(&inner.metrics).inc(names::SERVE_CACHE_HITS);
            return Ok((Arc::clone(hit), true));
        }
        lock(&inner.metrics).inc(names::SERVE_CACHE_MISSES);
        let compiled = self.compile(source, label)?;
        let compiled = Arc::new(compiled);
        cache.insert(key, Arc::clone(&compiled));
        Ok((compiled, false))
    }

    fn compile(&self, source: &str, label: &str) -> Result<CompiledSpec, JobError> {
        let inner = &*self.inner;
        let compile_failed = |msg: String| JobError::new(proto::S_COMPILE, msg);
        // Incremental analysis first: lints + verification passes, warm
        // from whatever spec family this service has seen before.
        let prior = inner.db.snapshot();
        let mut query_metrics = Registry::new();
        let outcome = analyze_source(source, label, prior.as_deref(), &mut query_metrics);
        lock(&inner.metrics).merge(query_metrics);
        if outcome.errors > 0 {
            return Err(compile_failed(format!(
                "{} error(s) in `{label}`:\n{}",
                outcome.errors,
                outcome.stderr.trim_end()
            )));
        }
        if let Some(db) = outcome.db {
            if let Some(path) = &inner.config.cache_path {
                // Atomic (write-temp-then-rename) persistence: concurrent
                // compiles never expose a torn cache file.
                let _ = logrel_query::save(&db, path);
            }
            inner.db.install(db);
        }
        let sys = logrel_lang::compile(source).map_err(|e| compile_failed(e.to_string()))?;
        let analytic_report =
            logrel_reliability::compute_srgs(&sys.spec, &sys.arch, &sys.imp)
                .map_err(|e| compile_failed(e.to_string()))?;
        let analytic: Vec<Option<f64>> = sys
            .spec
            .communicator_ids()
            .map(|c| Some(analytic_report.communicator(c).get()))
            .collect();
        let td = logrel_core::TimeDependentImplementation::from(sys.imp.clone());
        // Compile the calendar + round program once (and self-certify
        // under the `validate` feature); workers only ever reattach to
        // the shared Arcs via `Simulation::with_program`.
        let (calendar, program) = {
            let sim = Simulation::try_new_observed(&sys.spec, &sys.arch, &td, &mut NoopSink)
                .map_err(|e| compile_failed(format!("{e}")))?;
            sim.shared_program()
        };
        Ok(CompiledSpec { sys, td, calendar, program, analytic })
    }

    /// The service's own metrics registry as one JSON line.
    #[must_use]
    pub fn stats_line(&self) -> String {
        to_json_line(&lock(&self.inner.metrics))
    }

    /// A service counter's current value (test/assertion hook).
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        lock(&self.inner.metrics).counter(name)
    }

    /// A service gauge's current value (test/assertion hook).
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        lock(&self.inner.metrics).gauge(name)
    }

    /// Counts a rejection that happened before admission (the protocol
    /// layer calls this for malformed lines).
    pub fn count_rejected(&self) {
        lock(&self.inner.metrics).inc(names::SERVE_JOBS_REJECTED);
    }

    /// Empties the compilation cache and the analysis db (cold-start
    /// hook for benchmarks).
    pub fn clear_cache(&self) {
        lock(&self.inner.cache).clear();
        self.inner.db.clear();
    }

    /// Stops accepting new jobs; in-flight jobs keep running.
    pub fn begin_shutdown(&self) {
        self.inner.accepting.store(false, Ordering::SeqCst);
    }

    /// Graceful shutdown: stop accepting, drain in-flight jobs, stop and
    /// join the workers. Idempotent.
    pub fn shutdown(&self) {
        let inner = &*self.inner;
        self.begin_shutdown();
        while inner.active_jobs.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        {
            let mut q = lock(&inner.queue);
            q.stop = true;
        }
        inner.work_cv.notify_all();
        let handles = std::mem::take(&mut *lock(&inner.workers));
        for handle in handles {
            let _ = handle.join();
        }
    }

    fn finish_job(&self) {
        self.inner.active_jobs.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Decrements the in-flight count (and the depth gauge) on every exit
/// path out of an admitted submission.
struct ActiveGuard<'a> {
    engine: &'a Engine,
}

impl ActiveGuard<'_> {
    fn update_depth_gauge(&self) {
        let depth = self.engine.inner.active_jobs.load(Ordering::SeqCst);
        lock(&self.engine.inner.metrics).set_gauge(names::SERVE_QUEUE_DEPTH, depth as f64);
    }
}

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        self.engine.finish_job();
        self.update_depth_gauge();
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let item = {
            let mut q = lock(&inner.queue);
            loop {
                if let Some(item) = q.items.pop_front() {
                    break item;
                }
                if q.stop {
                    return;
                }
                q = inner
                    .work_cv
                    .wait(q)
                    .unwrap_or_else(|poison| poison.into_inner());
            }
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_unit(&item)))
            .unwrap_or_else(|panic| {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_owned())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "opaque panic".to_owned());
                Err(format!("worker panicked: {msg}"))
            });
        let job = &item.job;
        let mut board = lock(&job.slots);
        board.results[item.unit_index] = Some(result);
        board.remaining -= 1;
        if board.remaining == 0 {
            job.done_cv.notify_all();
        }
    }
}

fn run_unit(item: &WorkItem) -> UnitResult {
    let job = &*item.job;
    let compiled = &*job.compiled;
    // Reattach to the shared round program: per-unit cost is just this
    // struct, not a recompilation.
    let sim = Simulation::with_program(
        &compiled.sys.spec,
        &compiled.td,
        Arc::clone(&compiled.calendar),
        Arc::clone(&compiled.program),
    );
    let arch: &Architecture = &compiled.sys.arch;
    let setup = |_rep: u64| ReplicationContext {
        behaviors: BehaviorMap::new(),
        environment: Box::new(ConstantEnvironment::new(Value::Float(1.0))),
        injector: Box::new(ProbabilisticFaults::from_architecture(arch)),
    };
    let cap = job.recorder_capacity;
    let make_sink = |_rep: u64| {
        if cap > 0 {
            Registry::with_recorder(cap)
        } else {
            Registry::new()
        }
    };
    run_campaign_unit(
        &sim,
        &compiled.sys.spec,
        &job.scenario,
        arch.host_count(),
        &job.config,
        setup,
        make_sink,
        job.units[item.unit_index],
    )
    .map_err(|e| e.to_string())
}
