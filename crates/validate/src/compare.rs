//! Diagnosed isomorphism of round denotations.
//!
//! The reference denotation (from the specification) and a candidate
//! denotation (from a compiled round program or composed E-code) are
//! compared node by node; every divergence maps to a stable V-series
//! code:
//!
//! | code | family |
//! |------|--------|
//! | V001 | missing latch edge / latch from the wrong communicator |
//! | V002 | extra latch edge |
//! | V003 | wrong instance index (latch or landing coordinates) |
//! | V004 | vote arity mismatch |
//! | V005 | replica / host / sensor set divergence |
//! | V006 | update-instant skew (missing, extra or wrong-kind update) |
//! | V007 | phase drift across rounds (round period / phase count) |
//! | V008 | non-canonical double update (extraction-time) |
//! | V009 | dead replica output (declared landing never happens) |
//! | V010 | execution-record divergence (missing/extra/double exec, read instant, failure model) |

use crate::denot::{RoundDenotation, UpdateSource};
use logrel_core::{HostId, SensorId, Specification};
use logrel_lint::{Diagnostic, Severity};
use std::collections::BTreeSet;

fn err(code: &'static str, message: String) -> Diagnostic {
    Diagnostic::new(code, Severity::Error, Default::default(), message)
}

fn fmt_set<T: std::fmt::Display>(set: &BTreeSet<T>) -> String {
    let names: Vec<String> = set.iter().map(T::to_string).collect();
    format!("{{{}}}", names.join(", "))
}

/// Compares `candidate` (extracted from `artifact`) against `reference`
/// (the specification's denotation), returning one diagnostic per
/// divergence — empty iff the two dataflow DAGs are isomorphic.
pub fn compare_denotations(
    spec: &Specification,
    reference: &RoundDenotation,
    candidate: &RoundDenotation,
    artifact: &str,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if reference.round != candidate.round {
        diags.push(err(
            "V007",
            format!(
                "{artifact}: round period is {} but the specification's hyperperiod is {}",
                candidate.round, reference.round
            ),
        ));
    }
    if reference.phases.len() != candidate.phases.len() {
        diags.push(err(
            "V007",
            format!(
                "{artifact}: {} mapping phase(s), specification mapping has {}",
                candidate.phases.len(),
                reference.phases.len()
            ),
        ));
        return diags;
    }

    for (p, (rp, cp)) in reference.phases.iter().zip(&candidate.phases).enumerate() {
        let at = |slot: u64| -> String {
            if reference.phases.len() > 1 {
                format!("phase {p}, slot {slot}")
            } else {
                format!("slot {slot}")
            }
        };

        // ---- updates ----
        for (&(c, slot), ref_src) in &rp.updates {
            let name = spec.communicator(c).name();
            let Some(cand_src) = cp.updates.get(&(c, slot)) else {
                diags.push(err(
                    "V006",
                    format!(
                        "{artifact}: communicator `{name}` is not updated at {} \
                         (update-instant skew)",
                        at(slot)
                    ),
                ));
                continue;
            };
            match (ref_src, cand_src) {
                (
                    UpdateSource::Sensor { sensors: rs },
                    UpdateSource::Sensor { sensors: cs },
                ) => {
                    if rs != cs {
                        diags.push(err(
                            "V005",
                            format!(
                                "{artifact}: `{name}` at {} samples sensors {} instead of {} \
                                 (sensor set divergence)",
                                at(slot),
                                fmt_set::<SensorId>(cs),
                                fmt_set::<SensorId>(rs)
                            ),
                        ));
                    }
                }
                (
                    UpdateSource::Landing {
                        task: rt,
                        out_idx: ri,
                        rounds_back: rb,
                        hosts: rh,
                    },
                    UpdateSource::Landing {
                        task: ct,
                        out_idx: ci,
                        rounds_back: cb,
                        hosts: ch,
                    },
                ) => {
                    if (rt, ri, rb) != (ct, ci, cb) {
                        diags.push(err(
                            "V003",
                            format!(
                                "{artifact}: `{name}` at {} receives output {ci} of task `{}` \
                                 from {cb} round(s) back, expected output {ri} of `{}` from \
                                 {rb} round(s) back (wrong instance index)",
                                at(slot),
                                spec.task(*ct).name(),
                                spec.task(*rt).name()
                            ),
                        ));
                    } else if rh.len() != ch.len() {
                        diags.push(err(
                            "V004",
                            format!(
                                "{artifact}: `{name}` at {} is voted over {} replica(s) {}, \
                                 expected {} {} (vote arity mismatch)",
                                at(slot),
                                ch.len(),
                                fmt_set::<HostId>(ch),
                                rh.len(),
                                fmt_set::<HostId>(rh)
                            ),
                        ));
                    } else if rh != ch {
                        diags.push(err(
                            "V005",
                            format!(
                                "{artifact}: `{name}` at {} is voted over hosts {}, expected \
                                 {} (replica set divergence)",
                                at(slot),
                                fmt_set::<HostId>(ch),
                                fmt_set::<HostId>(rh)
                            ),
                        ));
                    }
                }
                (UpdateSource::Landing { task, out_idx, .. }, _) => {
                    diags.push(err(
                        "V009",
                        format!(
                            "{artifact}: output {out_idx} of task `{}` never lands on `{name}` \
                             at {} (dead replica output)",
                            spec.task(*task).name(),
                            at(slot)
                        ),
                    ));
                }
                (_, UpdateSource::Landing { task, .. }) => {
                    diags.push(err(
                        "V003",
                        format!(
                            "{artifact}: `{name}` at {} unexpectedly receives an output of \
                             task `{}` (wrong instance index)",
                            at(slot),
                            spec.task(*task).name()
                        ),
                    ));
                }
                (rs, cs) => {
                    if rs != cs {
                        diags.push(err(
                            "V006",
                            format!(
                                "{artifact}: update of `{name}` at {} diverges in kind from \
                                 the specification (update-instant skew)",
                                at(slot)
                            ),
                        ));
                    }
                }
            }
        }
        for &(c, slot) in cp.updates.keys() {
            if !rp.updates.contains_key(&(c, slot)) {
                diags.push(err(
                    "V006",
                    format!(
                        "{artifact}: communicator `{}` is updated at {}, where no update is \
                         due (update-instant skew)",
                        spec.communicator(c).name(),
                        at(slot)
                    ),
                ));
            }
        }

        // ---- executions ----
        for (&t, re) in &rp.execs {
            let name = spec.task(t).name();
            let Some(ce) = cp.execs.get(&t) else {
                diags.push(err(
                    "V010",
                    format!("{artifact}: task `{name}` never executes (missing execution)"),
                ));
                continue;
            };
            if re.read_slot != ce.read_slot {
                diags.push(err(
                    "V010",
                    format!(
                        "{artifact}: task `{name}` reads at {} instead of {} \
                         (execution-record divergence)",
                        at(ce.read_slot),
                        at(re.read_slot)
                    ),
                ));
            }
            if re.model != ce.model {
                diags.push(err(
                    "V010",
                    format!(
                        "{artifact}: task `{name}` applies failure model {:?}, specification \
                         declares {:?} (execution-record divergence)",
                        ce.model, re.model
                    ),
                ));
            }
            if re.hosts.len() != ce.hosts.len() {
                diags.push(err(
                    "V004",
                    format!(
                        "{artifact}: task `{name}` executes on {} replica(s) {}, expected {} \
                         {} (vote arity mismatch)",
                        ce.hosts.len(),
                        fmt_set::<HostId>(&ce.hosts),
                        re.hosts.len(),
                        fmt_set::<HostId>(&re.hosts)
                    ),
                ));
            } else if re.hosts != ce.hosts {
                diags.push(err(
                    "V005",
                    format!(
                        "{artifact}: task `{name}` executes on hosts {}, expected {} \
                         (replica set divergence)",
                        fmt_set::<HostId>(&ce.hosts),
                        fmt_set::<HostId>(&re.hosts)
                    ),
                ));
            }
            for (i, redge) in re.inputs.iter().enumerate() {
                let Some(cedge) = ce.inputs.get(i) else {
                    diags.push(err(
                        "V001",
                        format!(
                            "{artifact}: input {i} of task `{name}` has no latch edge \
                             (missing latch edge)"
                        ),
                    ));
                    continue;
                };
                if redge.comm != cedge.comm {
                    diags.push(err(
                        "V001",
                        format!(
                            "{artifact}: input {i} of task `{name}` latches `{}`, expected \
                             `{}` (latch from the wrong communicator)",
                            spec.communicator(cedge.comm).name(),
                            spec.communicator(redge.comm).name()
                        ),
                    ));
                } else if (redge.latch_slot, redge.origin) != (cedge.latch_slot, cedge.origin) {
                    let inst = |slot: u64, origin: Option<u64>| match origin {
                        Some(o) => format!("the instance updated at slot {o}, latched at slot {slot}"),
                        None => format!("a stale pre-round value latched at slot {slot}"),
                    };
                    diags.push(err(
                        "V003",
                        format!(
                            "{artifact}: input {i} of task `{name}` captures {} — the \
                             specification latches {} (wrong instance index)",
                            inst(cedge.latch_slot, cedge.origin),
                            inst(redge.latch_slot, redge.origin)
                        ),
                    ));
                }
            }
            for i in re.inputs.len()..ce.inputs.len() {
                diags.push(err(
                    "V002",
                    format!(
                        "{artifact}: input {i} of task `{name}` is latched but not declared \
                         (extra latch edge)"
                    ),
                ));
            }
        }
        for &t in cp.execs.keys() {
            if !rp.execs.contains_key(&t) {
                diags.push(err(
                    "V010",
                    format!(
                        "{artifact}: task `{}` executes but the specification declares no \
                         such execution in this phase",
                        spec.task(t).name()
                    ),
                ));
            }
        }
    }
    diags
}
