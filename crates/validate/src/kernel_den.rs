//! Symbolic execution of a compiled [`RoundProgram`].
//!
//! Interprets the program's instruction lists for one round per phase —
//! over symbolic values, tracking only *which* instance flows where —
//! and reduces the result to a [`RoundDenotation`]. Structural defects
//! that make the program non-canonical (double updates, unlatched reads,
//! out-of-range indices) abort extraction with V-series diagnostics;
//! everything else is caught by comparison against the specification's
//! denotation.
//!
//! [`RoundProgram`]: logrel_core::RoundProgram

use crate::denot::{ExecRecord, LatchEdge, PhaseDenotation, RoundDenotation, UpdateSource};
use logrel_core::roundprog::UpdateOp;
use logrel_core::{CommunicatorId, RoundProgram, Specification, TaskId};
use logrel_lint::{Diagnostic, Severity};
use std::collections::BTreeMap;

fn err(code: &'static str, message: String) -> Diagnostic {
    Diagnostic::new(code, Severity::Error, Default::default(), message)
}

/// One recorded latch: where the value came from and whether an execution
/// consumed it.
#[derive(Debug, Clone, Copy)]
struct LatchRecord {
    slot: u64,
    comm: u32,
    origin: Option<u64>,
}

/// Symbolically executes `prog` for one round per phase and reduces it to
/// its denotation.
///
/// The specification is used only for naming (diagnostics) and for the
/// index bounds of the symbolic store — never for the dataflow itself.
pub fn kernel_denotation(
    spec: &Specification,
    prog: &RoundProgram,
) -> Result<RoundDenotation, Vec<Diagnostic>> {
    let round = spec.round_period().as_u64();
    let n_comms = spec.communicator_count();
    let mut diags = Vec::new();
    let comm_name = |c: u32| -> String {
        if (c as usize) < n_comms {
            spec.communicator(CommunicatorId::new(c)).name().to_string()
        } else {
            format!("#{c}")
        }
    };
    let task_name = |t: u32| -> String {
        if (t as usize) < spec.task_count() {
            spec.task(TaskId::new(t)).name().to_string()
        } else {
            format!("#{t}")
        }
    };
    // Map a flat output slot back to (task, out_idx) via the task tables.
    let owner_of_out_slot = |s: u32| -> Option<(u32, usize)> {
        prog.tasks.iter().enumerate().find_map(|(t, tt)| {
            let s = s as usize;
            (s >= tt.out_base && s < tt.out_base + tt.n_out)
                .then_some((t as u32, s - tt.out_base))
        })
    };

    let mut phases = Vec::with_capacity(prog.phases.len());
    for (p, tables) in prog.phases.iter().enumerate() {
        let mut den = PhaseDenotation::default();
        // Slot of the last update of each communicator, walked in program
        // order: this is what names the instance a latch captures.
        let mut last_update: Vec<Option<u64>> = vec![None; n_comms];
        // Flat latch buffer holding provenance instead of values.
        let mut latched: BTreeMap<u32, LatchRecord> = BTreeMap::new();

        for sp in &prog.slots {
            let slot = sp.offset;
            for op in &sp.updates {
                let comm = match *op {
                    UpdateOp::Sensor { comm }
                    | UpdateOp::Landed { comm, .. }
                    | UpdateOp::Persist { comm } => comm,
                };
                if comm as usize >= n_comms {
                    diags.push(err(
                        "V006",
                        format!("phase {p}: update of undeclared communicator {} at slot {slot}",
                            comm_name(comm)),
                    ));
                    continue;
                }
                let key = (CommunicatorId::new(comm), slot);
                let source = match *op {
                    UpdateOp::Sensor { comm } => UpdateSource::Sensor {
                        sensors: tables.sensors[comm as usize].iter().copied().collect(),
                    },
                    UpdateOp::Landed {
                        task,
                        out_slot,
                        rounds_back,
                        ..
                    } => {
                        // The landing invocation ran `rounds_back` rounds
                        // earlier — resolve its replica set in that phase.
                        let n = prog.phases.len();
                        let wp = (p + n - (rounds_back as usize % n)) % n;
                        match owner_of_out_slot(out_slot) {
                            Some((owner, out_idx)) if owner == task => UpdateSource::Landing {
                                task: TaskId::new(task),
                                out_idx,
                                rounds_back: u64::from(rounds_back),
                                hosts: prog.phases[wp]
                                    .hosts
                                    .get(task as usize)
                                    .map(|h| h.iter().copied().collect())
                                    .unwrap_or_default(),
                            },
                            _ => {
                                diags.push(err(
                                    "V003",
                                    format!(
                                        "phase {p}: landing on `{}` at slot {slot} reads output \
                                         slot {out_slot}, which does not belong to task `{}`",
                                        comm_name(comm),
                                        task_name(task)
                                    ),
                                ));
                                continue;
                            }
                        }
                    }
                    UpdateOp::Persist { .. } => UpdateSource::Persist,
                };
                if den.updates.insert(key, source).is_some() {
                    diags.push(err(
                        "V008",
                        format!(
                            "phase {p}: communicator `{}` is updated twice at slot {slot} \
                             (non-canonical double update)",
                            comm_name(comm)
                        ),
                    ));
                }
                last_update[comm as usize] = Some(slot);
            }

            for l in &sp.latches {
                if l.dst as usize >= prog.total_inputs {
                    diags.push(err(
                        "V002",
                        format!(
                            "phase {p}: latch at slot {slot} targets input slot {} outside the \
                             latch buffer (extra latch edge)",
                            l.dst
                        ),
                    ));
                    continue;
                }
                let origin = if (l.comm as usize) < n_comms {
                    last_update[l.comm as usize]
                } else {
                    None
                };
                let rec = LatchRecord {
                    slot,
                    comm: l.comm,
                    origin,
                };
                if latched.insert(l.dst, rec).is_some() {
                    diags.push(err(
                        "V002",
                        format!(
                            "phase {p}: input slot {} is latched more than once per round \
                             (extra latch edge at slot {slot})",
                            l.dst
                        ),
                    ));
                }
            }

            for &ti in &sp.reads {
                let Some(tt) = prog.tasks.get(ti as usize) else {
                    diags.push(err(
                        "V010",
                        format!("phase {p}: read of undeclared task {} at slot {slot}",
                            task_name(ti)),
                    ));
                    continue;
                };
                let mut inputs = Vec::with_capacity(tt.n_in);
                let mut complete = true;
                for i in 0..tt.n_in {
                    let dst = (tt.in_base + i) as u32;
                    match latched.get(&dst) {
                        Some(rec) => inputs.push(LatchEdge {
                            comm: CommunicatorId::new(rec.comm),
                            latch_slot: rec.slot,
                            origin: rec.origin,
                        }),
                        None => {
                            diags.push(err(
                                "V001",
                                format!(
                                    "phase {p}: input {i} of task `{}` is never latched before \
                                     its read at slot {slot} (missing latch edge)",
                                    task_name(ti)
                                ),
                            ));
                            complete = false;
                        }
                    }
                }
                if !complete {
                    continue;
                }
                let rec = ExecRecord {
                    read_slot: slot,
                    model: tt.model,
                    hosts: tables
                        .hosts
                        .get(ti as usize)
                        .map(|h| h.iter().copied().collect())
                        .unwrap_or_default(),
                    inputs,
                };
                if den.execs.insert(TaskId::new(ti), rec).is_some() {
                    diags.push(err(
                        "V010",
                        format!(
                            "phase {p}: task `{}` executes more than once per round \
                             (second read at slot {slot})",
                            task_name(ti)
                        ),
                    ));
                }
            }
        }
        phases.push(den);
    }

    if diags.is_empty() {
        Ok(RoundDenotation { round, phases })
    } else {
        Err(diags)
    }
}
