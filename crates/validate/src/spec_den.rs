//! The reference denotation: the specification's declared dataflow.
//!
//! Derived directly from the specification's read/write instants and the
//! replication mapping — deliberately *not* through [`Calendar`] or the
//! kernel compiler, so the reference side of the certificate shares no
//! code with the artifacts it certifies.
//!
//! [`Calendar`]: logrel_core::Calendar

use crate::denot::{ExecRecord, LatchEdge, PhaseDenotation, RoundDenotation, UpdateSource};
use logrel_core::{Specification, TimeDependentImplementation};
use std::collections::BTreeMap;

/// Builds the specification's denotation for one round, per mapping phase.
pub fn spec_denotation(
    spec: &Specification,
    imp: &TimeDependentImplementation,
) -> RoundDenotation {
    let round = spec.round_period().as_u64();
    let n = imp.phase_count();

    // Landing sites straight from the declared write instants: the output
    // written at absolute instant `abs` lands at slot `abs % round`, one
    // round later when `abs == round`.
    let mut landing: BTreeMap<(logrel_core::CommunicatorId, u64), (logrel_core::TaskId, usize, u64)> =
        BTreeMap::new();
    for t in spec.task_ids() {
        for (idx, &a) in spec.task(t).outputs().iter().enumerate() {
            let abs = spec.access_instant(a).as_u64();
            landing.insert((a.comm, abs % round), (t, idx, abs / round));
        }
    }

    let phases = (0..n)
        .map(|p| {
            let mut den = PhaseDenotation::default();
            for c in spec.communicator_ids() {
                for at in spec.update_instants(c) {
                    let slot = at.as_u64();
                    let source = if spec.is_sensor_input(c) {
                        UpdateSource::Sensor {
                            sensors: imp.phases()[p].sensors_of(c).clone(),
                        }
                    } else if let Some(&(t, out_idx, rounds_back)) = landing.get(&(c, slot)) {
                        // The landing invocation executed `rounds_back`
                        // rounds earlier, in the phase shifted back by as
                        // much.
                        let wp = (p + n - (rounds_back as usize % n)) % n;
                        UpdateSource::Landing {
                            task: t,
                            out_idx,
                            rounds_back,
                            hosts: imp.phases()[wp].hosts_of(t).clone(),
                        }
                    } else {
                        UpdateSource::Persist
                    };
                    den.updates.insert((c, slot), source);
                }
            }
            for t in spec.task_ids() {
                let decl = spec.task(t);
                let inputs = decl
                    .inputs()
                    .iter()
                    .map(|&a| {
                        // The access `(c, i)` latches at `i·π_c`, directly
                        // after the update that creates instance `i` — the
                        // latched instance originates at the latch slot.
                        let latch_slot = spec.access_instant(a).as_u64();
                        LatchEdge {
                            comm: a.comm,
                            latch_slot,
                            origin: Some(latch_slot),
                        }
                    })
                    .collect();
                den.execs.insert(
                    t,
                    ExecRecord {
                        read_slot: spec.read_time(t).as_u64(),
                        model: decl.failure_model(),
                        hosts: imp.phases()[p].hosts_of(t).clone(),
                        inputs,
                    },
                );
            }
            den
        })
        .collect();

    RoundDenotation { round, phases }
}
