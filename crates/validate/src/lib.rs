//! Translation validation for the logrel toolchain.
//!
//! The paper's Proposition 1 relates a *specification's* LET semantics to
//! its distributed implementation — but the toolchain interposes two
//! compilers: the kernel compiler lowering the specification to a dense
//! [`RoundProgram`], and the E-code generator emitting per-host programs.
//! This crate certifies both, per program, in the style of Necula's
//! translation validation: instead of trusting the compilers (or a finite
//! set of differential tests), each compiled artifact is symbolically
//! executed for exactly one hyperperiod and reduced to a canonical
//! [`RoundDenotation`] — a term DAG over initial communicator instances
//! and symbolic sensor reads. The specification's own denotation is
//! derived independently from its read/write instants. Certification is
//! diagnosed isomorphism of these DAGs: same update instants, same latch
//! sources and instance indices, same vote arities and replica sets.
//!
//! * [`certify_kernel`] — checks a compiled round program;
//! * [`certify_ecode`] — checks the composition of all per-host E-code
//!   (each host stepped for two rounds; the second round must repeat the
//!   first, which extends the certificate to all rounds by periodicity);
//! * [`certify_system`] — both, from the specification alone.
//!
//! On success a machine-readable [`Certificate`] is returned; on failure,
//! stable V-series diagnostics (V001–V010, rendered through
//! `logrel-lint`'s shared [`Diagnostic`] model — see
//! [`compare`](crate::compare) for the catalog).
//!
//! Soundness (DESIGN.md §8): the denotation captures every dataflow
//! choice the artifact makes within one round — which instance each
//! update binds, which instance each latch captures, who executes and
//! who votes. Isomorphism therefore implies the artifact refines the
//! specification's single-round LET semantics; since both artifacts are
//! round-periodic (compiled programs structurally, E-code by the checked
//! round-1-equals-round-0 property), the certificate extends to every
//! round by induction.
//!
//! [`RoundProgram`]: logrel_core::RoundProgram
//! [`RoundDenotation`]: denot::RoundDenotation

pub mod certificate;
pub mod compare;
pub mod denot;
pub mod ecode_den;
pub mod kernel_den;
pub mod spec_den;

pub use certificate::Certificate;
pub use compare::compare_denotations;
pub use denot::{ExecRecord, LatchEdge, PhaseDenotation, RoundDenotation, UpdateSource};
pub use ecode_den::ecode_denotation;
pub use kernel_den::kernel_denotation;
pub use spec_den::spec_denotation;

use logrel_core::{
    Architecture, Calendar, HostId, Implementation, RoundProgram, Specification,
    TimeDependentImplementation,
};
use logrel_emachine::ECode;
use logrel_lint::{sort_diagnostics, Diagnostic};

/// Certifies a compiled round program against the specification's
/// denotational dataflow.
pub fn certify_kernel(
    spec: &Specification,
    imp: &TimeDependentImplementation,
    prog: &RoundProgram,
) -> Result<Certificate, Vec<Diagnostic>> {
    let reference = spec_denotation(spec, imp);
    let candidate = kernel_denotation(spec, prog).map_err(sorted)?;
    let diags = compare_denotations(spec, &reference, &candidate, "round program");
    if diags.is_empty() {
        Ok(Certificate::from_denotation(&reference, vec!["round-program"]))
    } else {
        Err(sorted(diags))
    }
}

/// Certifies the composition of per-host E-code programs (one round of
/// the whole distributed system, including broadcast replica sets and
/// voting) against the specification's denotational dataflow.
pub fn certify_ecode(
    spec: &Specification,
    imp: &Implementation,
    programs: &[(HostId, ECode)],
) -> Result<Certificate, Vec<Diagnostic>> {
    let td: TimeDependentImplementation = imp.clone().into();
    let reference = spec_denotation(spec, &td);
    let candidate = ecode_denotation(spec, imp, programs).map_err(sorted)?;
    let diags = compare_denotations(spec, &reference, &candidate, "E-code composition");
    if diags.is_empty() {
        Ok(Certificate::from_denotation(&reference, vec!["e-code"]))
    } else {
        Err(sorted(diags))
    }
}

/// Compiles and certifies everything derivable from the system itself:
/// the kernel's round program always, and — for single-phase mappings,
/// the form every elaborated HTL program takes — the generated per-host
/// E-code of every declared host.
pub fn certify_system(
    spec: &Specification,
    arch: &Architecture,
    imp: &TimeDependentImplementation,
) -> Result<Certificate, Vec<Diagnostic>> {
    let calendar = Calendar::new(spec);
    let prog = RoundProgram::compile(spec, imp, &calendar);
    let mut diags = Vec::new();
    let mut cert = match certify_kernel(spec, imp, &prog) {
        Ok(cert) => Some(cert),
        Err(d) => {
            diags.extend(d);
            None
        }
    };
    if imp.phase_count() == 1 {
        let phase = &imp.phases()[0];
        let programs: Vec<(HostId, ECode)> = arch
            .host_ids()
            .map(|h| (h, logrel_emachine::generate(spec, phase, h)))
            .collect();
        match certify_ecode(spec, phase, &programs) {
            Ok(_) => {
                if let Some(c) = cert.as_mut() {
                    c.artifacts.push("e-code");
                }
            }
            Err(d) => {
                diags.extend(d);
                cert = None;
            }
        }
    }
    match cert {
        Some(cert) if diags.is_empty() => Ok(cert),
        _ => Err(sorted(diags)),
    }
}

fn sorted(mut diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
    sort_diagnostics(&mut diags);
    diags
}
