//! The machine-readable certificate emitted on successful validation.

use crate::denot::RoundDenotation;
use std::fmt;

/// Proof summary that an artifact's round dataflow is isomorphic to the
/// specification's denotation.
///
/// The [`Display`] form is one stable `key=value` line, greppable in CI;
/// `digest` is a 64-bit FNV-1a hash of the canonical denotation, so two
/// systems certify equal iff their digests match.
///
/// [`Display`]: fmt::Display
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// The certified round period π_S.
    pub round: u64,
    /// Number of mapping phases covered.
    pub phases: usize,
    /// Communicator update sites per round, summed over phases.
    pub updates: usize,
    /// Input latch edges per round, summed over phases.
    pub latch_edges: usize,
    /// Task executions per round, summed over phases.
    pub executions: usize,
    /// Largest replica set voted over anywhere in the denotation.
    pub max_vote_arity: usize,
    /// The artifacts checked against the denotation (e.g.
    /// `"round-program"`, `"e-code"`).
    pub artifacts: Vec<&'static str>,
    /// FNV-1a digest of the canonical denotation.
    pub digest: u64,
}

/// 64-bit FNV-1a.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Certificate {
    /// Summarizes a (reference) denotation as the certificate for the
    /// given checked artifacts.
    pub fn from_denotation(den: &RoundDenotation, artifacts: Vec<&'static str>) -> Self {
        use crate::denot::UpdateSource;
        let updates = den.phases.iter().map(|p| p.updates.len()).sum();
        let latch_edges = den
            .phases
            .iter()
            .flat_map(|p| p.execs.values())
            .map(|e| e.inputs.len())
            .sum();
        let executions = den.phases.iter().map(|p| p.execs.len()).sum();
        let max_vote_arity = den
            .phases
            .iter()
            .flat_map(|p| {
                p.execs
                    .values()
                    .map(|e| e.hosts.len())
                    .chain(p.updates.values().map(|u| match u {
                        UpdateSource::Sensor { sensors } => sensors.len(),
                        UpdateSource::Landing { hosts, .. } => hosts.len(),
                        UpdateSource::Persist => 0,
                    }))
            })
            .max()
            .unwrap_or(0);
        // `Debug` of the denotation is deterministic (BTree iteration
        // order), making it a canonical serialization for hashing.
        let digest = fnv1a(format!("{den:?}").as_bytes());
        Certificate {
            round: den.round,
            phases: den.phases.len(),
            updates,
            latch_edges,
            executions,
            max_vote_arity,
            artifacts,
            digest,
        }
    }
}

impl fmt::Display for Certificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "certificate round={} phases={} updates={} latch-edges={} executions={} \
             max-vote-arity={} artifacts={} digest={:016x}",
            self.round,
            self.phases,
            self.updates,
            self.latch_edges,
            self.executions,
            self.max_vote_arity,
            self.artifacts.join("+"),
            self.digest
        )
    }
}
