//! Symbolic execution of the composed per-host E-code.
//!
//! Each host's E-machine is stepped for two rounds against a *recording*
//! platform: drivers record which communicator instance is updated where,
//! which instance each latch captures, and which hosts release which
//! tasks — no values are computed. The second round must repeat the first
//! (shifted by π_S), which extends the one-round certificate to all
//! rounds by periodicity; the per-host record streams are then composed
//! into one [`RoundDenotation`]: every host must perform every update,
//! the hosts releasing a task form its vote replica set, and replicated
//! latches must agree on the instance they capture.
//!
//! What the E-code itself does not encode — which task output lands on an
//! updated instance, the sensor bindings, the input failure model — is
//! resolved from the specification and mapping exactly as the runtime
//! platform resolves it, so those parts are correct by construction and
//! the certificate checks what the code controls: instants, instances,
//! latch edges, and release/replica sets.

use crate::denot::{ExecRecord, LatchEdge, PhaseDenotation, RoundDenotation, UpdateSource};
use logrel_core::{CommunicatorId, HostId, Implementation, Specification, TaskId, Tick};
use logrel_emachine::{DriverOp, ECode, EMachine, Instruction, Platform};
use logrel_lint::{Diagnostic, Severity};
use std::collections::{BTreeMap, BTreeSet};

fn err(code: &'static str, message: String) -> Diagnostic {
    Diagnostic::new(code, Severity::Error, Default::default(), message)
}

/// The record stream of one host over the two simulated rounds, at
/// absolute ticks.
#[derive(Default)]
struct HostLog {
    /// (abs, comm, instance) per `UpdateCommunicator`.
    updates: Vec<(u64, CommunicatorId, u64)>,
    /// (abs, comm) per `ReadSensors`.
    sensor_reads: Vec<(u64, CommunicatorId)>,
    /// (abs, task, index, origin) per `LatchInput`; `origin` is the
    /// absolute tick of the last update of the latched communicator.
    latches: Vec<(u64, TaskId, u32, Option<u64>)>,
    /// (abs, task) per `Release`.
    releases: Vec<(u64, TaskId)>,
}

/// The recording platform: tracks update provenance, computes nothing.
struct Recorder<'s> {
    spec: &'s Specification,
    /// Absolute tick of the last update per communicator.
    last_update: Vec<Option<u64>>,
    log: HostLog,
}

impl Platform for Recorder<'_> {
    fn call(&mut self, _host: HostId, op: DriverOp, now: Tick) {
        let abs = now.as_u64();
        match op {
            DriverOp::ReadSensors { comm } => self.log.sensor_reads.push((abs, comm)),
            DriverOp::UpdateCommunicator { comm, instance } => {
                self.log.updates.push((abs, comm, instance));
                if comm.index() < self.last_update.len() {
                    self.last_update[comm.index()] = Some(abs);
                }
            }
            DriverOp::LatchInput { task, index } => {
                let origin = self
                    .spec
                    .task(task)
                    .inputs()
                    .get(index as usize)
                    .and_then(|a| self.last_update.get(a.comm.index()))
                    .copied()
                    .flatten();
                self.log.latches.push((abs, task, index, origin));
            }
        }
    }

    fn release(&mut self, _host: HostId, task: TaskId, now: Tick) {
        self.log.releases.push((now.as_u64(), task));
    }
}

/// Normalized one-round view of a host log: absolute ticks reduced to
/// slots, latch origins reduced to `Some(slot)` (this round) or `None`
/// (carried over from before the round).
#[derive(Debug, PartialEq, Eq)]
struct RoundView {
    updates: BTreeSet<(u64, CommunicatorId, u64)>,
    sensor_reads: BTreeSet<(u64, CommunicatorId)>,
    latches: BTreeSet<(u64, TaskId, u32, Option<u64>)>,
    releases: BTreeSet<(u64, TaskId)>,
}

fn round_view(log: &HostLog, round: u64, k: u64) -> RoundView {
    let lo = k * round;
    let hi = lo + round;
    let in_round = |abs: u64| abs >= lo && abs < hi;
    let origin_slot = |o: Option<u64>| o.and_then(|abs| abs.checked_sub(lo));
    RoundView {
        updates: log
            .updates
            .iter()
            .filter(|&&(abs, ..)| in_round(abs))
            .map(|&(abs, c, i)| (abs - lo, c, i))
            .collect(),
        sensor_reads: log
            .sensor_reads
            .iter()
            .filter(|&&(abs, _)| in_round(abs))
            .map(|&(abs, c)| (abs - lo, c))
            .collect(),
        latches: log
            .latches
            .iter()
            .filter(|&&(abs, ..)| in_round(abs))
            .map(|&(abs, t, i, o)| (abs - lo, t, i, origin_slot(o)))
            .collect(),
        releases: log
            .releases
            .iter()
            .filter(|&&(abs, _)| in_round(abs))
            .map(|&(abs, t)| (abs - lo, t))
            .collect(),
    }
}

fn fmt_hosts(hosts: &BTreeSet<HostId>) -> String {
    let names: Vec<String> = hosts.iter().map(|h| h.to_string()).collect();
    format!("{{{}}}", names.join(", "))
}

/// Symbolically runs every host's E-code for two rounds and composes the
/// distributed record streams into one denotation.
pub fn ecode_denotation(
    spec: &Specification,
    imp: &Implementation,
    programs: &[(HostId, ECode)],
) -> Result<RoundDenotation, Vec<Diagnostic>> {
    let round = spec.round_period().as_u64();
    let mut diags = Vec::new();
    let all_hosts: BTreeSet<HostId> = programs.iter().map(|&(h, _)| h).collect();

    // Landing sites from the declared write instants, as the runtime
    // platform resolves them.
    let mut landing: BTreeMap<(CommunicatorId, u64), (TaskId, usize, u64)> = BTreeMap::new();
    for t in spec.task_ids() {
        for (idx, &a) in spec.task(t).outputs().iter().enumerate() {
            let abs = spec.access_instant(a).as_u64();
            landing.insert((a.comm, abs % round), (t, idx, abs / round));
        }
    }

    // ---- per-host symbolic runs ----
    let mut logs: Vec<(HostId, RoundView)> = Vec::with_capacity(programs.len());
    for (host, code) in programs {
        // A zero-delay trigger would re-arm at the same instant forever;
        // reject it statically instead of diverging.
        if code
            .instructions()
            .iter()
            .any(|i| matches!(i, Instruction::Future { delta: 0, .. }))
        {
            diags.push(err(
                "V007",
                format!("host `{host}`: E-code arms a zero-delay trigger (machine never advances)"),
            ));
            continue;
        }
        let mut rec = Recorder {
            spec,
            last_update: vec![None; spec.communicator_count()],
            log: HostLog::default(),
        };
        let mut machine = EMachine::new(code.clone(), *host);
        let horizon = 2 * round;
        while let Some(tr) = machine.next_trigger() {
            if tr.as_u64() >= horizon {
                break;
            }
            machine.run_until(tr, &mut rec);
        }

        // Host-local structural checks: every instant's updates must be
        // due, carry the slot's instance index, and happen exactly once.
        let mut seen: BTreeMap<(u64, CommunicatorId), u64> = BTreeMap::new();
        for &(abs, c, instance) in &rec.log.updates {
            let slot = abs % round;
            if c.index() >= spec.communicator_count() {
                continue; // EMachine code is typed; unreachable in practice.
            }
            let period = spec.communicator(c).period().as_u64();
            if !slot.is_multiple_of(period) {
                diags.push(err(
                    "V006",
                    format!(
                        "host `{host}`: communicator `{}` is updated at slot {slot}, which is \
                         not a multiple of its period {period}",
                        spec.communicator(c).name()
                    ),
                ));
            } else if instance != slot / period {
                diags.push(err(
                    "V003",
                    format!(
                        "host `{host}`: update of `{}` at slot {slot} carries instance \
                         {instance}, expected {}",
                        spec.communicator(c).name(),
                        slot / period
                    ),
                ));
            }
            if seen.insert((abs, c), instance).is_some() {
                diags.push(err(
                    "V008",
                    format!(
                        "host `{host}`: communicator `{}` is updated twice at slot {slot} \
                         (non-canonical double update)",
                        spec.communicator(c).name()
                    ),
                ));
            }
        }

        // Round periodicity: round 1 must be round 0 shifted by π_S.
        let r0 = round_view(&rec.log, round, 0);
        let r1 = round_view(&rec.log, round, 1);
        if r0 != r1 {
            diags.push(err(
                "V007",
                format!(
                    "host `{host}`: round 1 diverges from round 0 (phase drift across rounds)"
                ),
            ));
        }
        // The steady-state round is the denotation's witness.
        logs.push((*host, r1));
    }
    if !diags.is_empty() {
        return Err(diags);
    }

    // ---- composition across hosts ----
    let mut den = PhaseDenotation::default();

    // Updates: every host maintains every communicator replication.
    let mut update_hosts: BTreeMap<(CommunicatorId, u64), BTreeSet<HostId>> = BTreeMap::new();
    let mut sensor_hosts: BTreeMap<(CommunicatorId, u64), BTreeSet<HostId>> = BTreeMap::new();
    let mut release_hosts: BTreeMap<TaskId, BTreeSet<HostId>> = BTreeMap::new();
    let mut release_slots: BTreeMap<TaskId, BTreeSet<u64>> = BTreeMap::new();
    for (host, view) in &logs {
        for &(slot, c, _) in &view.updates {
            update_hosts.entry((c, slot)).or_default().insert(*host);
        }
        for &(slot, c) in &view.sensor_reads {
            sensor_hosts.entry((c, slot)).or_default().insert(*host);
        }
        for &(slot, t) in &view.releases {
            release_hosts.entry(t).or_default().insert(*host);
            release_slots.entry(t).or_default().insert(slot);
        }
        // Per-host double release = double execution.
        let mut per_host: BTreeSet<TaskId> = BTreeSet::new();
        for &(_, t) in &view.releases {
            if !per_host.insert(t) {
                diags.push(err(
                    "V010",
                    format!(
                        "host `{host}`: task `{}` is released more than once per round",
                        spec.task(t).name()
                    ),
                ));
            }
        }
    }
    for (&(c, slot), hosts) in &update_hosts {
        if hosts != &all_hosts {
            let missing: BTreeSet<HostId> = all_hosts.difference(hosts).copied().collect();
            diags.push(err(
                "V005",
                format!(
                    "communicator `{}` at slot {slot} is updated on {} but not on {} \
                     (replications diverge)",
                    spec.communicator(c).name(),
                    fmt_hosts(hosts),
                    fmt_hosts(&missing)
                ),
            ));
        }
        if spec.is_sensor_input(c) {
            let readers = sensor_hosts.get(&(c, slot)).cloned().unwrap_or_default();
            if readers != *hosts {
                diags.push(err(
                    "V005",
                    format!(
                        "sensor communicator `{}` at slot {slot} is updated on {} but sampled \
                         only on {}",
                        spec.communicator(c).name(),
                        fmt_hosts(hosts),
                        fmt_hosts(&readers)
                    ),
                ));
            }
        }
        let source = if spec.is_sensor_input(c) {
            UpdateSource::Sensor {
                sensors: imp.sensors_of(c).clone(),
            }
        } else if let Some(&(t, out_idx, rounds_back)) = landing.get(&(c, slot)) {
            UpdateSource::Landing {
                task: t,
                out_idx,
                rounds_back,
                // The vote is over whichever replicas actually release
                // (and broadcast) the writing task.
                hosts: release_hosts.get(&t).cloned().unwrap_or_default(),
            }
        } else {
            UpdateSource::Persist
        };
        den.updates.insert((c, slot), source);
    }

    // Latches: group the replicated edges per (task, input index).
    // host → (latch slot, origin slot) of one input's edge.
    type EdgeSites = BTreeMap<HostId, (u64, Option<u64>)>;
    let mut latch_sites: BTreeMap<(TaskId, u32), EdgeSites> = BTreeMap::new();
    for (host, view) in &logs {
        for &(slot, t, index, origin) in &view.latches {
            if latch_sites
                .entry((t, index))
                .or_default()
                .insert(*host, (slot, origin))
                .is_some()
            {
                diags.push(err(
                    "V002",
                    format!(
                        "host `{host}`: input {index} of task `{}` is latched more than once \
                         per round (extra latch edge)",
                        spec.task(t).name()
                    ),
                ));
            }
        }
    }
    for (&(t, index), sites) in &latch_sites {
        let latching: BTreeSet<HostId> = sites.keys().copied().collect();
        let releasing = release_hosts.get(&t).cloned().unwrap_or_default();
        for h in latching.difference(&releasing) {
            diags.push(err(
                "V002",
                format!(
                    "host `{h}`: latches input {index} of task `{}` but never releases it \
                     (extra latch edge)",
                    spec.task(t).name()
                ),
            ));
        }
        let edges: BTreeSet<(u64, Option<u64>)> = sites.values().copied().collect();
        if edges.len() > 1 {
            diags.push(err(
                "V005",
                format!(
                    "replicas of task `{}` latch input {index} at diverging instants/instances \
                     across hosts (replications diverge)",
                    spec.task(t).name()
                ),
            ));
        }
    }

    // Executions: the hosts releasing a task are its replica set.
    for (&t, hosts) in &release_hosts {
        let slots = &release_slots[&t];
        if slots.len() > 1 {
            diags.push(err(
                "V005",
                format!(
                    "replicas of task `{}` are released at diverging slots across hosts",
                    spec.task(t).name()
                ),
            ));
            continue;
        }
        let read_slot = *slots.iter().next().expect("release implies a slot");
        let n_in = spec.task(t).inputs().len();
        let mut inputs = Vec::with_capacity(n_in);
        let mut complete = true;
        for i in 0..n_in {
            let site = latch_sites.get(&(t, i as u32)).and_then(|sites| {
                // All releasing hosts must have latched this port; the
                // composed edge is their (already checked) agreement.
                hosts
                    .iter()
                    .all(|h| sites.contains_key(h))
                    .then(|| *sites.values().next().expect("non-empty site map"))
            });
            match site {
                Some((latch_slot, origin)) => inputs.push(LatchEdge {
                    comm: spec.task(t).inputs()[i].comm,
                    latch_slot,
                    origin,
                }),
                None => {
                    diags.push(err(
                        "V001",
                        format!(
                            "input {i} of task `{}` is not latched on every releasing host \
                             before the read at slot {read_slot} (missing latch edge)",
                            spec.task(t).name()
                        ),
                    ));
                    complete = false;
                }
            }
        }
        if !complete {
            continue;
        }
        den.execs.insert(
            t,
            ExecRecord {
                read_slot,
                // The failure model is applied by the platform at release
                // time from the specification; the code does not encode it.
                model: spec.task(t).failure_model(),
                hosts: hosts.clone(),
                inputs,
            },
        );
    }

    if diags.is_empty() {
        Ok(RoundDenotation {
            round,
            phases: vec![den],
        })
    } else {
        Err(diags)
    }
}
