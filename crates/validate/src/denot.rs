//! The canonical round denotation: the symbolic dataflow of one round.
//!
//! A [`RoundDenotation`] is the normal form every certified artifact is
//! reduced to — the specification's declared dataflow, the compiled
//! [`RoundProgram`], and the composed per-host E-code all map into this
//! domain, and certification is (diagnosed) equality. The domain is a term
//! DAG over the initial communicator instances and the round's symbolic
//! sensor reads: each communicator update names its source term, each task
//! execution names the update terms its inputs latch.
//!
//! Canonicalization rules (see DESIGN.md §8):
//!
//! * every instant is reduced to its **slot** — the offset within the
//!   round, so round-periodic artifacts have one denotation;
//! * replica and sensor sets are **ordered sets** ([`BTreeSet`]), never
//!   lists — broadcast and voting are order-insensitive;
//! * a latched value is named by the slot of the **last update** of the
//!   latched communicator at or before the latch instant (its *origin*),
//!   which identifies the instance independently of buffer layout;
//! * updates and executions are keyed maps ([`BTreeMap`]), so a denotation
//!   admits exactly one update per `(communicator, slot)` and one
//!   execution per task — double updates and double executions cannot be
//!   expressed and are rejected during extraction.
//!
//! [`RoundProgram`]: logrel_core::RoundProgram

use logrel_core::{CommunicatorId, FailureModel, HostId, SensorId, TaskId};
use std::collections::{BTreeMap, BTreeSet};

/// The symbolic dataflow of one round (hyperperiod), per mapping phase.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundDenotation {
    /// The round period π_S.
    pub round: u64,
    /// One dataflow graph per phase of the time-dependent mapping.
    pub phases: Vec<PhaseDenotation>,
}

/// The dataflow graph of one mapping phase.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PhaseDenotation {
    /// `(communicator, slot)` → the term the update binds.
    pub updates: BTreeMap<(CommunicatorId, u64), UpdateSource>,
    /// task → its execution (read, vote, inputs) record.
    pub execs: BTreeMap<TaskId, ExecRecord>,
}

/// What an update at `(communicator, slot)` binds the new instance to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateSource {
    /// A fresh environment sample, voted over the bound sensor set.
    Sensor {
        /// The sensors whose joint success gates the reading.
        sensors: BTreeSet<SensorId>,
    },
    /// A task output lands here: the vote over the replica set that
    /// executed the writing invocation.
    Landing {
        /// The writing task.
        task: TaskId,
        /// Positional index into the task's output list.
        out_idx: usize,
        /// 0 if the writing invocation reads in the same round, 1 if the
        /// write instant is the round boundary (previous round's output).
        rounds_back: u64,
        /// The replica hosts of the writing invocation's phase.
        hosts: BTreeSet<HostId>,
    },
    /// Nothing lands: the previous instance persists.
    Persist,
}

/// One task execution: when it reads, how it votes, what it latches.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecRecord {
    /// Slot of the task's read time within the round.
    pub read_slot: u64,
    /// The input failure model applied at the read.
    pub model: FailureModel,
    /// The replica host set executing (and broadcasting) this invocation.
    pub hosts: BTreeSet<HostId>,
    /// One latch edge per declared input, in declaration order.
    pub inputs: Vec<LatchEdge>,
}

/// One input latch edge: which instance of which communicator feeds an
/// input port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatchEdge {
    /// The latched communicator.
    pub comm: CommunicatorId,
    /// Slot of the latch instant (`i·π_c` for declared access `(c, i)`).
    pub latch_slot: u64,
    /// Slot of the communicator's last update at or before the latch —
    /// the identity of the latched instance. `None` if the value predates
    /// every update of the current round (a stale latch; never produced
    /// by a correct artifact, since instance 0 updates at slot 0).
    pub origin: Option<u64>,
}
