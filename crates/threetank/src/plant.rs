//! The coupled three-tank plant.
//!
//! Standard laboratory 3TS dynamics (Amira DTS200-style): three tanks of
//! equal cross-section; tank 3 sits between tanks 1 and 2; inter-tank and
//! evacuation flows follow Torricelli's law
//! `q = a · S · sign(Δh) · sqrt(2 g |Δh|)`. Pumps feed tanks 1 and 2 with
//! flows proportional to their (saturated) motor currents. Integrated with
//! classical fourth-order Runge–Kutta.

/// Physical parameters of the plant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlantParams {
    /// Tank cross-section (m²).
    pub tank_area: f64,
    /// Connecting-pipe cross-section (m²).
    pub pipe_area: f64,
    /// Outflow coefficient tank1 ↔ tank3.
    pub az13: f64,
    /// Outflow coefficient tank3 ↔ tank2.
    pub az32: f64,
    /// Outflow coefficient of tank2's nominal evacuation to the reservoir.
    pub az20: f64,
    /// Evacuation-tap coefficients of tanks 1..3 (0 = closed).
    pub taps: [f64; 3],
    /// Maximal pump flow (m³/s) at motor current 1.0.
    pub pump_max_flow: f64,
    /// Gravitational acceleration (m/s²).
    pub gravity: f64,
}

impl Default for PlantParams {
    fn default() -> Self {
        PlantParams {
            tank_area: 0.0154,
            pipe_area: 5.0e-5,
            az13: 0.46,
            az32: 0.48,
            az20: 0.58,
            taps: [0.0, 0.0, 0.0],
            pump_max_flow: 1.0e-4,
            gravity: 9.81,
        }
    }
}

/// Water levels of the three tanks (m).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PlantState {
    /// Level of tank 1.
    pub h1: f64,
    /// Level of tank 2.
    pub h2: f64,
    /// Level of tank 3.
    pub h3: f64,
}

/// The simulated plant.
///
/// # Example
///
/// ```
/// use logrel_threetank::{PlantParams, ThreeTankPlant};
///
/// let mut plant = ThreeTankPlant::new(PlantParams::default());
/// plant.set_pump_currents(0.8, 0.6);
/// for _ in 0..10_000 {
///     plant.step(0.001); // 10 s of simulated time
/// }
/// assert!(plant.state().h1 > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ThreeTankPlant {
    params: PlantParams,
    state: PlantState,
    /// Saturated motor currents in `[0, 1]`.
    u1: f64,
    u2: f64,
}

impl ThreeTankPlant {
    /// An empty plant (all levels zero, pumps off).
    pub fn new(params: PlantParams) -> Self {
        ThreeTankPlant {
            params,
            state: PlantState::default(),
            u1: 0.0,
            u2: 0.0,
        }
    }

    /// The current state.
    pub fn state(&self) -> PlantState {
        self.state
    }

    /// The parameters.
    pub fn params(&self) -> &PlantParams {
        &self.params
    }

    /// Sets the pump motor currents (saturated into `[0, 1]`).
    pub fn set_pump_currents(&mut self, u1: f64, u2: f64) {
        self.u1 = u1.clamp(0.0, 1.0);
        self.u2 = u2.clamp(0.0, 1.0);
    }

    /// The current (saturated) pump motor currents `(u1, u2)`.
    pub fn pump_currents(&self) -> (f64, f64) {
        (self.u1, self.u2)
    }

    /// Opens or closes an evacuation tap (`tank` in `0..3`); used to
    /// inject plant perturbations.
    ///
    /// # Panics
    ///
    /// Panics if `tank >= 3`.
    pub fn set_tap(&mut self, tank: usize, coefficient: f64) {
        self.params.taps[tank] = coefficient.max(0.0);
    }

    /// Torricelli flow through an orifice with coefficient `az` under head
    /// difference `dh` (signed).
    fn torricelli(&self, az: f64, dh: f64) -> f64 {
        az * self.params.pipe_area * dh.signum() * (2.0 * self.params.gravity * dh.abs()).sqrt()
    }

    /// The level derivatives at state `s`.
    fn derivatives(&self, s: PlantState) -> [f64; 3] {
        let p = &self.params;
        let q13 = self.torricelli(p.az13, s.h1 - s.h3);
        let q32 = self.torricelli(p.az32, s.h3 - s.h2);
        let q20 = self.torricelli(p.az20, s.h2);
        let leak1 = self.torricelli(p.taps[0], s.h1);
        let leak2 = self.torricelli(p.taps[1], s.h2);
        let leak3 = self.torricelli(p.taps[2], s.h3);
        let q1 = self.u1 * p.pump_max_flow;
        let q2 = self.u2 * p.pump_max_flow;
        [
            (q1 - q13 - leak1) / p.tank_area,
            (q2 + q32 - q20 - leak2) / p.tank_area,
            (q13 - q32 - leak3) / p.tank_area,
        ]
    }

    /// Advances the plant by `dt` seconds with one RK4 step; levels are
    /// clamped at zero (tanks cannot be negative).
    pub fn step(&mut self, dt: f64) {
        let s = self.state;
        let add = |s: PlantState, k: [f64; 3], f: f64| PlantState {
            h1: s.h1 + f * k[0],
            h2: s.h2 + f * k[1],
            h3: s.h3 + f * k[2],
        };
        let k1 = self.derivatives(s);
        let k2 = self.derivatives(add(s, k1, dt / 2.0));
        let k3 = self.derivatives(add(s, k2, dt / 2.0));
        let k4 = self.derivatives(add(s, k3, dt));
        self.state = PlantState {
            h1: (s.h1 + dt / 6.0 * (k1[0] + 2.0 * k2[0] + 2.0 * k3[0] + k4[0])).max(0.0),
            h2: (s.h2 + dt / 6.0 * (k1[1] + 2.0 * k2[1] + 2.0 * k3[1] + k4[1])).max(0.0),
            h3: (s.h3 + dt / 6.0 * (k1[2] + 2.0 * k2[2] + 2.0 * k3[2] + k4[2])).max(0.0),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(plant: &mut ThreeTankPlant, seconds: f64) {
        let steps = (seconds / 0.001) as usize;
        for _ in 0..steps {
            plant.step(0.001);
        }
    }

    #[test]
    fn pumping_raises_levels() {
        let mut plant = ThreeTankPlant::new(PlantParams::default());
        plant.set_pump_currents(1.0, 1.0);
        run(&mut plant, 20.0);
        let s = plant.state();
        assert!(s.h1 > 0.05, "h1 = {}", s.h1);
        assert!(s.h2 > 0.0);
    }

    #[test]
    fn water_flows_downhill_into_tank3() {
        let mut plant = ThreeTankPlant::new(PlantParams::default());
        plant.set_pump_currents(1.0, 0.0);
        run(&mut plant, 30.0);
        let s = plant.state();
        assert!(s.h1 > s.h3, "coupling should keep h1 above h3");
        assert!(s.h3 > 0.0, "tank3 receives water from tank1");
    }

    #[test]
    fn pumps_off_drains_through_evacuation() {
        let mut plant = ThreeTankPlant::new(PlantParams::default());
        plant.set_pump_currents(1.0, 1.0);
        run(&mut plant, 30.0);
        let before = plant.state().h2;
        plant.set_pump_currents(0.0, 0.0);
        run(&mut plant, 60.0);
        assert!(plant.state().h2 < before);
    }

    #[test]
    fn levels_never_go_negative() {
        let mut plant = ThreeTankPlant::new(PlantParams::default());
        plant.set_tap(0, 1.0);
        plant.set_tap(1, 1.0);
        plant.set_tap(2, 1.0);
        run(&mut plant, 60.0);
        let s = plant.state();
        assert!(s.h1 >= 0.0 && s.h2 >= 0.0 && s.h3 >= 0.0);
    }

    #[test]
    fn steady_state_is_reached_under_constant_input() {
        let mut plant = ThreeTankPlant::new(PlantParams::default());
        plant.set_pump_currents(0.2, 0.2);
        // RK4 is stable at coarser steps; use 10 ms to cover 3000 s fast.
        for _ in 0..300_000 {
            plant.step(0.01);
        }
        let a = plant.state();
        for _ in 0..10_000 {
            plant.step(0.01);
        }
        let b = plant.state();
        assert!(
            (a.h1 - b.h1).abs() < 2e-3,
            "h1 not settled: {} vs {}",
            a.h1,
            b.h1
        );
        assert!((a.h2 - b.h2).abs() < 2e-3);
    }

    #[test]
    fn opening_a_tap_perturbs_the_level() {
        let mut plant = ThreeTankPlant::new(PlantParams::default());
        plant.set_pump_currents(0.5, 0.5);
        run(&mut plant, 200.0);
        let nominal = plant.state().h1;
        plant.set_tap(0, 0.6);
        run(&mut plant, 100.0);
        assert!(plant.state().h1 < nominal - 0.005);
    }

    #[test]
    fn pump_currents_saturate() {
        let mut plant = ThreeTankPlant::new(PlantParams::default());
        plant.set_pump_currents(7.0, -3.0);
        run(&mut plant, 5.0);
        // u2 saturated to 0: tank2 only receives via tank3, slowly.
        let s = plant.state();
        assert!(s.h1 > s.h2);
    }
}
