//! The three-tank system (3TS) case study of §4.
//!
//! "The system consists of three tanks tank1, tank2, and tank3, each with
//! an evacuation tap. Tank tank3 is connected to both tank1 and tank2. Two
//! pumps feed water into tank1 and tank2. The controller maintains the
//! level of water in tanks tank1 and tank2 in the presence and absence of
//! perturbations."
//!
//! * [`plant`] — the coupled-tank dynamics (Torricelli flows, RK4
//!   integration), standing in for the physical rig;
//! * [`control`] — the stateless control laws of the six tasks of Fig. 2;
//! * [`system`] — the Fig. 2 specification (communicators `s1, s2, r1,
//!   r2` at period 500 and `l1, l2, u1, u2` at period 100), the
//!   three-host architecture and the paper's three mappings (baseline,
//!   scenario 1 — controller replication, scenario 2 — sensor
//!   replication);
//! * [`env`](mod@crate::env) — a closed-loop [`Environment`] wiring the plant to the
//!   simulated sensors and pumps;
//! * [`behaviors`] — the task behaviours for the runtime simulator;
//! * [`htl`] — the same system as HTL-style source text for the language
//!   front-end.
//!
//! Numeric note: the OCR of the paper drops the host/sensor reliability
//! and the strict LRC; they are reconstructed as r = 0.999 and µ = 0.998
//! (the only values consistent with the surviving numbers; see
//! EXPERIMENTS.md).
//!
//! [`Environment`]: logrel_sim::Environment

pub mod behaviors;
pub mod control;
pub mod env;
pub mod htl;
pub mod plant;
pub mod system;

pub use env::ThreeTankEnvironment;
pub use plant::{PlantParams, PlantState, ThreeTankPlant};
pub use system::{Scenario, ThreeTankIds, ThreeTankSystem};
