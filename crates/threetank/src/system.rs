//! The Fig. 2 specification, architecture and the paper's three mappings.
//!
//! Timing (one round π_S = 500 ticks, 1 tick = 1 ms):
//!
//! | task        | reads                | writes     | LET        | model    |
//! |-------------|----------------------|------------|------------|----------|
//! | `read1/2`   | `s1/2[0]` @0         | `l1/2[1]`  | [0, 100]   | parallel |
//! | `t1/2`      | `l1/2[1]` @100       | `u1/2[3]`  | [100, 300] | series   |
//! | `estimate1/2` | `l[1]`@100, `u[3]`@300 | `r1/2[1]` | [300, 500] | series |
//!
//! which matches the paper's reported SRGs: `λ_l = λ_read · λ_s` and
//! `λ_u = λ_t · λ_l`.

use crate::control::ControlGains;
use logrel_core::{
    Architecture, CommunicatorDecl, CommunicatorId, CoreError, FailureModel, HostId,
    Implementation, Reliability, SensorId, Specification, TaskDecl, TaskId, Value, ValueType,
};

/// Ids of every communicator and task of the 3TS program.
#[derive(Debug, Clone, Copy)]
#[allow(missing_docs)]
pub struct ThreeTankIds {
    pub s1: CommunicatorId,
    pub s2: CommunicatorId,
    pub l1: CommunicatorId,
    pub l2: CommunicatorId,
    pub u1: CommunicatorId,
    pub u2: CommunicatorId,
    pub r1: CommunicatorId,
    pub r2: CommunicatorId,
    pub read1: TaskId,
    pub read2: TaskId,
    pub t1: TaskId,
    pub t2: TaskId,
    pub estimate1: TaskId,
    pub estimate2: TaskId,
    pub h1: HostId,
    pub h2: HostId,
    pub h3: HostId,
    pub sen1a: SensorId,
    pub sen1b: SensorId,
    pub sen2a: SensorId,
    pub sen2b: SensorId,
}

/// The three deployment scenarios of §4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// t1 → h1, t2 → h2, the rest → h3; one sensor per tank.
    Baseline,
    /// Scenario 1: t1 and t2 replicated on {h1, h2}.
    ReplicatedControllers,
    /// Scenario 2: two sensors per tank (read tasks are model-2).
    ReplicatedSensors,
}

/// A complete, validated 3TS system.
#[derive(Debug, Clone)]
pub struct ThreeTankSystem {
    /// The Fig. 2 specification.
    pub spec: Specification,
    /// The three-host architecture.
    pub arch: Architecture,
    /// The scenario's replication mapping.
    pub imp: Implementation,
    /// All ids.
    pub ids: ThreeTankIds,
    /// The scenario this system realises.
    pub scenario: Scenario,
    /// Control gains used by the behaviours.
    pub gains: ControlGains,
}

impl ThreeTankSystem {
    /// Builds a scenario with the reconstructed paper constants: host and
    /// sensor reliability 0.999 and no LRCs declared.
    ///
    /// # Panics
    ///
    /// Never panics for the fixed constants used here.
    pub fn new(scenario: Scenario) -> Self {
        Self::with_options(scenario, 0.999, None).expect("fixed constants are valid")
    }

    /// Builds a scenario with explicit host/sensor reliability and an
    /// optional LRC on `u1`/`u2`.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError`] if `host_reliability` or `lrc_u` is outside
    /// `(0, 1]`.
    pub fn with_options(
        scenario: Scenario,
        host_reliability: f64,
        lrc_u: Option<f64>,
    ) -> Result<Self, CoreError> {
        let rel = Reliability::new(host_reliability)?;
        let lrc = lrc_u.map(Reliability::new).transpose()?;

        // ---- specification -------------------------------------------
        let mut sb = Specification::builder();
        let comm = |name: &str, period: u64| CommunicatorDecl::new(name, ValueType::Float, period);
        let s1 = sb.communicator(comm("s1", 500)?.from_sensor())?;
        let s2 = sb.communicator(comm("s2", 500)?.from_sensor())?;
        let l1 = sb.communicator(comm("l1", 100)?)?;
        let l2 = sb.communicator(comm("l2", 100)?)?;
        let mut u1d = comm("u1", 100)?;
        let mut u2d = comm("u2", 100)?;
        if let Some(m) = lrc {
            u1d = u1d.with_lrc(m);
            u2d = u2d.with_lrc(m);
        }
        let u1 = sb.communicator(u1d)?;
        let u2 = sb.communicator(u2d)?;
        let r1 = sb.communicator(comm("r1", 500)?)?;
        let r2 = sb.communicator(comm("r2", 500)?)?;

        let read = |name: &str, s, l| {
            TaskDecl::new(name)
                .reads(s, 0)
                .writes(l, 1)
                .model(FailureModel::Parallel)
                .default_value(Value::Float(0.0))
        };
        let read1 = sb.task(read("read1", s1, l1))?;
        let read2 = sb.task(read("read2", s2, l2))?;
        let t1 = sb.task(TaskDecl::new("t1").reads(l1, 1).writes(u1, 3))?;
        let t2 = sb.task(TaskDecl::new("t2").reads(l2, 1).writes(u2, 3))?;
        let estimate1 =
            sb.task(TaskDecl::new("estimate1").reads(l1, 1).reads(u1, 3).writes(r1, 1))?;
        let estimate2 =
            sb.task(TaskDecl::new("estimate2").reads(l2, 1).reads(u2, 3).writes(r2, 1))?;
        let spec = sb.build()?;

        // ---- architecture --------------------------------------------
        let mut ab = Architecture::builder();
        let h1 = ab.host(logrel_core::HostDecl::new("h1", rel))?;
        let h2 = ab.host(logrel_core::HostDecl::new("h2", rel))?;
        let h3 = ab.host(logrel_core::HostDecl::new("h3", rel))?;
        let sen1a = ab.sensor(logrel_core::SensorDecl::new("sen1a", rel))?;
        let sen1b = ab.sensor(logrel_core::SensorDecl::new("sen1b", rel))?;
        let sen2a = ab.sensor(logrel_core::SensorDecl::new("sen2a", rel))?;
        let sen2b = ab.sensor(logrel_core::SensorDecl::new("sen2b", rel))?;
        for t in [read1, read2] {
            ab.wcet_all(t, 5)?;
            ab.wctt_all(t, 2)?;
        }
        for t in [t1, t2, estimate1, estimate2] {
            ab.wcet_all(t, 10)?;
            ab.wctt_all(t, 2)?;
        }
        let arch = ab.build();

        // ---- implementation ------------------------------------------
        let mut ib = Implementation::builder()
            .assign(read1, [h3])
            .assign(read2, [h3])
            .assign(estimate1, [h3])
            .assign(estimate2, [h3])
            .bind_sensor(s1, sen1a)
            .bind_sensor(s2, sen2a);
        match scenario {
            Scenario::Baseline => {
                ib = ib.assign(t1, [h1]).assign(t2, [h2]);
            }
            Scenario::ReplicatedControllers => {
                ib = ib.assign(t1, [h1, h2]).assign(t2, [h1, h2]);
            }
            Scenario::ReplicatedSensors => {
                ib = ib
                    .assign(t1, [h1])
                    .assign(t2, [h2])
                    .bind_sensor(s1, sen1b)
                    .bind_sensor(s2, sen2b);
            }
        }
        let imp = ib.build(&spec, &arch)?;

        Ok(ThreeTankSystem {
            spec,
            arch,
            imp,
            ids: ThreeTankIds {
                s1,
                s2,
                l1,
                l2,
                u1,
                u2,
                r1,
                r2,
                read1,
                read2,
                t1,
                t2,
                estimate1,
                estimate2,
                h1,
                h2,
                h3,
                sen1a,
                sen1b,
                sen2a,
                sen2b,
            },
            scenario,
            gains: ControlGains::default(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_period_is_500() {
        let sys = ThreeTankSystem::new(Scenario::Baseline);
        assert_eq!(sys.spec.round_period().as_u64(), 500);
    }

    #[test]
    fn lets_match_the_figure() {
        let sys = ThreeTankSystem::new(Scenario::Baseline);
        assert_eq!(sys.spec.read_time(sys.ids.read1).as_u64(), 0);
        assert_eq!(sys.spec.write_time(sys.ids.read1).as_u64(), 100);
        assert_eq!(sys.spec.read_time(sys.ids.t1).as_u64(), 100);
        assert_eq!(sys.spec.write_time(sys.ids.t1).as_u64(), 300);
        assert_eq!(sys.spec.read_time(sys.ids.estimate1).as_u64(), 300);
        assert_eq!(sys.spec.write_time(sys.ids.estimate1).as_u64(), 500);
    }

    #[test]
    fn baseline_mapping_matches_the_paper() {
        let sys = ThreeTankSystem::new(Scenario::Baseline);
        assert_eq!(
            sys.imp.hosts_of(sys.ids.t1).iter().copied().collect::<Vec<_>>(),
            vec![sys.ids.h1]
        );
        assert_eq!(
            sys.imp.hosts_of(sys.ids.t2).iter().copied().collect::<Vec<_>>(),
            vec![sys.ids.h2]
        );
        for t in [sys.ids.read1, sys.ids.read2, sys.ids.estimate1, sys.ids.estimate2] {
            assert_eq!(
                sys.imp.hosts_of(t).iter().copied().collect::<Vec<_>>(),
                vec![sys.ids.h3]
            );
        }
        assert_eq!(sys.imp.sensors_of(sys.ids.s1).len(), 1);
    }

    #[test]
    fn scenario1_replicates_controllers() {
        let sys = ThreeTankSystem::new(Scenario::ReplicatedControllers);
        assert_eq!(sys.imp.hosts_of(sys.ids.t1).len(), 2);
        assert_eq!(sys.imp.hosts_of(sys.ids.t2).len(), 2);
        assert_eq!(sys.imp.sensors_of(sys.ids.s1).len(), 1);
    }

    #[test]
    fn scenario2_replicates_sensors() {
        let sys = ThreeTankSystem::new(Scenario::ReplicatedSensors);
        assert_eq!(sys.imp.hosts_of(sys.ids.t1).len(), 1);
        assert_eq!(sys.imp.sensors_of(sys.ids.s1).len(), 2);
        assert_eq!(sys.imp.sensors_of(sys.ids.s2).len(), 2);
    }

    #[test]
    fn the_spec_is_memory_free() {
        let sys = ThreeTankSystem::new(Scenario::Baseline);
        let g = logrel_core::graph::SpecGraph::new(&sys.spec);
        assert!(g.communicator_cycles().is_memory_free());
    }

    #[test]
    fn lrc_option_is_applied() {
        let sys =
            ThreeTankSystem::with_options(Scenario::Baseline, 0.999, Some(0.99)).unwrap();
        assert_eq!(
            sys.spec.communicator(sys.ids.u1).lrc().unwrap().get(),
            0.99
        );
        assert!(sys.spec.communicator(sys.ids.l1).lrc().is_none());
        assert!(ThreeTankSystem::with_options(Scenario::Baseline, 1.5, None).is_err());
    }

    #[test]
    fn failure_models_match_the_paper() {
        let sys = ThreeTankSystem::new(Scenario::Baseline);
        assert_eq!(
            sys.spec.task(sys.ids.read1).failure_model(),
            FailureModel::Parallel
        );
        assert_eq!(
            sys.spec.task(sys.ids.t1).failure_model(),
            FailureModel::Series
        );
        assert_eq!(
            sys.spec.task(sys.ids.estimate1).failure_model(),
            FailureModel::Series
        );
    }
}
