//! The closed-loop environment: plant wired to sensors and pumps.

use crate::plant::{PlantParams, ThreeTankPlant};
use crate::system::ThreeTankIds;
use logrel_core::{CommunicatorId, Tick, Value};
use logrel_sim::Environment;

/// Wires the simulated plant to the program: sensor communicators `s1`,
/// `s2` sample the tank levels; actuations of `u1`, `u2` set the pump
/// currents. One logical tick is `dt` seconds of plant time.
///
/// The environment keeps a tracking-error log so experiments can compare
/// control performance across fault conditions.
#[derive(Debug, Clone)]
pub struct ThreeTankEnvironment {
    plant: ThreeTankPlant,
    ids: ThreeTankIds,
    dt: f64,
    last: Tick,
    /// Optional perturbation: (instant, tank index, tap coefficient).
    perturbation: Option<(Tick, usize, f64)>,
    /// (instant, |h1 − ref1|, |h2 − ref2|) sampled at every advance.
    error_log: Vec<(Tick, f64, f64)>,
    ref1: f64,
    ref2: f64,
}

impl ThreeTankEnvironment {
    /// Creates the environment. `dt` is the plant-seconds per logical
    /// tick (the 3TS uses 1 ms ticks, so `dt = 0.001`).
    pub fn new(params: PlantParams, ids: ThreeTankIds, dt: f64, ref1: f64, ref2: f64) -> Self {
        ThreeTankEnvironment {
            plant: ThreeTankPlant::new(params),
            ids,
            dt,
            last: Tick::ZERO,
            perturbation: None,
            error_log: Vec::new(),
            ref1,
            ref2,
        }
    }

    /// Schedules a tap opening at `at` on `tank` (0-based) with the given
    /// coefficient.
    pub fn perturb_at(&mut self, at: Tick, tank: usize, coefficient: f64) -> &mut Self {
        self.perturbation = Some((at, tank, coefficient));
        self
    }

    /// The plant (for inspection).
    pub fn plant(&self) -> &ThreeTankPlant {
        &self.plant
    }

    /// The tracking-error log.
    pub fn error_log(&self) -> &[(Tick, f64, f64)] {
        &self.error_log
    }

    /// Mean absolute tracking error of both tanks over instants at or
    /// after `from` (0 if nothing is logged there yet).
    pub fn mean_error_since(&self, from: Tick) -> f64 {
        let entries: Vec<f64> = self
            .error_log
            .iter()
            .filter(|(t, _, _)| *t >= from)
            .map(|(_, e1, e2)| (e1 + e2) / 2.0)
            .collect();
        if entries.is_empty() {
            0.0
        } else {
            entries.iter().sum::<f64>() / entries.len() as f64
        }
    }
}

impl Environment for ThreeTankEnvironment {
    fn advance(&mut self, now: Tick) {
        if let Some((at, tank, coeff)) = self.perturbation {
            if now >= at {
                self.plant.set_tap(tank, coeff);
                self.perturbation = None;
            }
        }
        let steps = now - self.last;
        for _ in 0..steps {
            self.plant.step(self.dt);
        }
        self.last = now;
        let s = self.plant.state();
        self.error_log
            .push((now, (s.h1 - self.ref1).abs(), (s.h2 - self.ref2).abs()));
    }

    fn sense(&mut self, comm: CommunicatorId, _now: Tick) -> Value {
        let s = self.plant.state();
        if comm == self.ids.s1 {
            Value::Float(s.h1)
        } else if comm == self.ids.s2 {
            Value::Float(s.h2)
        } else {
            Value::Unreliable
        }
    }

    fn actuate(&mut self, comm: CommunicatorId, value: Value, _now: Tick) {
        let Some(v) = value.as_float() else {
            // ⊥ on an actuator: the pump keeps its last current (a real
            // actuator holds its input when no update arrives).
            return;
        };
        let (u1, u2) = self.plant.pump_currents();
        if comm == self.ids.u1 {
            self.plant.set_pump_currents(v, u2);
        } else if comm == self.ids.u2 {
            self.plant.set_pump_currents(u1, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{Scenario, ThreeTankSystem};

    fn env() -> ThreeTankEnvironment {
        let sys = ThreeTankSystem::new(Scenario::Baseline);
        ThreeTankEnvironment::new(PlantParams::default(), sys.ids, 0.001, 0.2, 0.1)
    }

    #[test]
    fn advance_integrates_and_logs() {
        let mut e = env();
        e.advance(Tick::new(100));
        e.advance(Tick::new(200));
        assert_eq!(e.error_log().len(), 2);
        assert!(e.mean_error_since(Tick::ZERO) > 0.0);
    }

    #[test]
    fn sense_reports_levels() {
        let mut e = env();
        let ids = e.ids;
        let v = e.sense(ids.s1, Tick::ZERO);
        assert_eq!(v, Value::Float(0.0));
        assert_eq!(e.sense(ids.l1, Tick::ZERO), Value::Unreliable);
    }

    #[test]
    fn actuate_drives_the_pumps() {
        let mut e = env();
        let ids = e.ids;
        e.actuate(ids.u1, Value::Float(1.0), Tick::ZERO);
        e.advance(Tick::new(5000));
        assert!(e.plant().state().h1 > 0.0);
    }

    #[test]
    fn bottom_actuation_holds_last_value() {
        let mut e = env();
        let ids = e.ids;
        e.actuate(ids.u1, Value::Float(1.0), Tick::ZERO);
        e.actuate(ids.u1, Value::Unreliable, Tick::ZERO);
        e.advance(Tick::new(5000));
        assert!(e.plant().state().h1 > 0.0, "pump kept running on ⊥");
    }

    #[test]
    fn perturbation_fires_once() {
        let mut e = env();
        e.perturb_at(Tick::new(50), 0, 0.7);
        e.advance(Tick::new(100));
        assert_eq!(e.plant().params().taps[0], 0.7);
    }

    #[test]
    fn mean_error_since_filters_by_time() {
        let mut e = env();
        e.advance(Tick::new(10));
        e.advance(Tick::new(20));
        assert_eq!(e.mean_error_since(Tick::new(1000)), 0.0);
    }
}
