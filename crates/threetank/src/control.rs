//! The control laws of the six tasks of Fig. 2.
//!
//! All task functions are stateless (the formal model's tasks are pure
//! functions; state would have to flow through communicators). The
//! controller is proportional with a feed-forward term compensating the
//! nominal outflow, which gives good tracking without integral state.

/// Converts a raw sensor sample into a level estimate (tasks `read1`,
/// `read2`). The simulated sensor reports the level directly, so this is
/// a clamping identity — kept separate to mirror the paper's task split.
pub fn read_level(raw: f64) -> f64 {
    raw.clamp(0.0, 1.0)
}

/// Proportional + feed-forward pump controller (tasks `t1`, `t2`):
/// `u = kp · (reference − level) + feedforward(level)`, saturated to
/// `[0, 1]`.
///
/// `outflow_gain` estimates the fraction of maximal pump flow needed to
/// hold the current level (the Torricelli outflow divided by the maximal
/// pump flow).
pub fn pump_control(level: f64, reference: f64, kp: f64, outflow_gain: f64) -> f64 {
    let feedforward = outflow_gain * level.max(0.0).sqrt();
    (kp * (reference - level) + feedforward).clamp(0.0, 1.0)
}

/// Perturbation estimator (tasks `estimate1`, `estimate2`): estimates the
/// unmodelled net outflow as the difference between the pump inflow
/// implied by `u` and the nominal outflow implied by the level.
pub fn estimate_perturbation(
    level: f64,
    u: f64,
    pump_max_flow: f64,
    nominal_outflow: f64,
) -> f64 {
    u * pump_max_flow - nominal_outflow * level.max(0.0).sqrt()
}

/// Gains used by the 3TS controller in examples and experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlGains {
    /// Proportional gain.
    pub kp: f64,
    /// Feed-forward outflow gain (fraction of pump flow per sqrt-level).
    pub outflow_gain: f64,
    /// Level reference for tank 1 (m).
    pub ref1: f64,
    /// Level reference for tank 2 (m).
    pub ref2: f64,
}

impl Default for ControlGains {
    fn default() -> Self {
        ControlGains {
            kp: 20.0,
            outflow_gain: 0.9,
            ref1: 0.20,
            ref2: 0.10,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_level_clamps() {
        assert_eq!(read_level(0.5), 0.5);
        assert_eq!(read_level(-0.1), 0.0);
        assert_eq!(read_level(2.0), 1.0);
    }

    #[test]
    fn control_pushes_toward_reference() {
        let g = ControlGains::default();
        let below = pump_control(0.1, g.ref1, g.kp, g.outflow_gain);
        let above = pump_control(0.4, g.ref1, g.kp, g.outflow_gain);
        assert!(below > above);
        assert!(below > 0.0);
    }

    #[test]
    fn control_saturates() {
        assert_eq!(pump_control(0.0, 1.0, 1000.0, 0.0), 1.0);
        assert_eq!(pump_control(1.0, 0.0, 1000.0, 0.0), 0.0);
    }

    #[test]
    fn estimator_is_zero_at_nominal_balance() {
        // u chosen so pump inflow equals nominal outflow.
        let level: f64 = 0.25;
        let nominal = 0.5;
        let pmax = 1.0e-4;
        let u = nominal * level.sqrt() / pmax * pmax; // = nominal*sqrt(level)
        let r = estimate_perturbation(level, u / pmax, pmax, nominal);
        assert!(r.abs() < 1e-12);
    }

    #[test]
    fn estimator_sees_extra_outflow() {
        // Holding the level with larger u than nominal implies a leak:
        // pump inflow 9e-5 vs nominal outflow 1e-5 * sqrt(0.25) = 5e-6.
        let r = estimate_perturbation(0.25, 0.9, 1.0e-4, 1.0e-5);
        assert!(r > 0.0);
    }
}
