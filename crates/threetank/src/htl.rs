//! The 3TS program as HTL-style source text.
//!
//! Generating the text from the same scenario parameters lets the
//! integration tests check that the language pipeline
//! (`parse → elaborate`) produces exactly the system the programmatic
//! builders produce.

use crate::system::Scenario;

/// Renders the 3TS program for `scenario` in the `logrel-lang` syntax.
pub fn three_tank_source(scenario: Scenario, host_reliability: f64, lrc_u: Option<f64>) -> String {
    let lrc = lrc_u.map_or(String::new(), |m| format!(" lrc {m}"));
    let t_map = match scenario {
        Scenario::Baseline | Scenario::ReplicatedSensors => "t1 -> h1;\n        t2 -> h2;",
        Scenario::ReplicatedControllers => "t1 -> h1, h2;\n        t2 -> h1, h2;",
    };
    let binds = match scenario {
        Scenario::ReplicatedSensors => {
            "bind s1 -> sen1a, sen1b;\n        bind s2 -> sen2a, sen2b;"
        }
        _ => "bind s1 -> sen1a;\n        bind s2 -> sen2a;",
    };
    let mut wcet = String::new();
    for task in ["read1", "read2"] {
        for host in ["h1", "h2", "h3"] {
            wcet.push_str(&format!("        wcet {task} on {host} 5;\n"));
            wcet.push_str(&format!("        wctt {task} on {host} 2;\n"));
        }
    }
    for task in ["t1", "t2", "estimate1", "estimate2"] {
        for host in ["h1", "h2", "h3"] {
            wcet.push_str(&format!("        wcet {task} on {host} 10;\n"));
            wcet.push_str(&format!("        wctt {task} on {host} 2;\n"));
        }
    }
    format!(
        r#"program three_tank {{
    communicator s1 : float period 500 sensor;
    communicator s2 : float period 500 sensor;
    communicator l1 : float period 100;
    communicator l2 : float period 100;
    communicator u1 : float period 100{lrc};
    communicator u2 : float period 100{lrc};
    communicator r1 : float period 500;
    communicator r2 : float period 500;
    module controller {{
        start mode main period 500 {{
            invoke read1 model parallel reads s1[0] writes l1[1] defaults 0.0;
            invoke read2 model parallel reads s2[0] writes l2[1] defaults 0.0;
            invoke t1 reads l1[1] writes u1[3];
            invoke t2 reads l2[1] writes u2[3];
            invoke estimate1 reads l1[1], u1[3] writes r1[1];
            invoke estimate2 reads l2[1], u2[3] writes r2[1];
        }}
    }}
    architecture {{
        host h1 reliability {host_reliability};
        host h2 reliability {host_reliability};
        host h3 reliability {host_reliability};
        sensor sen1a reliability {host_reliability};
        sensor sen1b reliability {host_reliability};
        sensor sen2a reliability {host_reliability};
        sensor sen2b reliability {host_reliability};
{wcet}    }}
    map {{
        {t_map}
        read1 -> h3;
        read2 -> h3;
        estimate1 -> h3;
        estimate2 -> h3;
        {binds}
    }}
}}
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::ThreeTankSystem;
    use logrel_lang::compile;

    #[test]
    fn compiled_source_matches_programmatic_builder() {
        for scenario in [
            Scenario::Baseline,
            Scenario::ReplicatedControllers,
            Scenario::ReplicatedSensors,
        ] {
            let src = three_tank_source(scenario, 0.999, Some(0.99));
            let compiled = compile(&src).unwrap_or_else(|e| panic!("{scenario:?}: {e}"));
            let built = ThreeTankSystem::with_options(scenario, 0.999, Some(0.99)).unwrap();
            assert_eq!(compiled.spec.task_count(), built.spec.task_count());
            assert_eq!(
                compiled.spec.communicator_count(),
                built.spec.communicator_count()
            );
            assert_eq!(
                compiled.spec.round_period(),
                built.spec.round_period()
            );
            // Same mapping sizes per task name.
            for t in built.spec.task_ids() {
                let name = built.spec.task(t).name();
                let ct = compiled.spec.find_task(name).unwrap();
                assert_eq!(
                    compiled.imp.hosts_of(ct).len(),
                    built.imp.hosts_of(t).len(),
                    "{scenario:?}: mapping of {name}"
                );
            }
            // Same sensor binding sizes.
            for c in built.spec.communicator_ids() {
                let name = built.spec.communicator(c).name();
                let cc = compiled.spec.find_communicator(name).unwrap();
                assert_eq!(
                    compiled.imp.sensors_of(cc).len(),
                    built.imp.sensors_of(c).len(),
                    "{scenario:?}: binding of {name}"
                );
            }
        }
    }

    #[test]
    fn source_omits_lrc_when_unset() {
        let src = three_tank_source(Scenario::Baseline, 0.999, None);
        assert!(!src.contains("lrc"));
        assert!(compile(&src).is_ok());
    }
}
