//! Task behaviours for the runtime simulator.

use crate::control::{estimate_perturbation, pump_control, read_level, ControlGains};
use crate::plant::PlantParams;
use crate::system::ThreeTankSystem;
use logrel_core::Value;
use logrel_sim::BehaviorMap;

/// Builds the behaviour registry for all six control tasks.
///
/// All functions are stateless closures over the gains and plant
/// parameters (feed-forward calibration), as required by the task model.
pub fn build_behaviors(sys: &ThreeTankSystem, params: &PlantParams) -> BehaviorMap {
    let gains: ControlGains = sys.gains;
    let pump_max = params.pump_max_flow;
    // Nominal outflow gain for the estimator: Torricelli constant over
    // sqrt-level, in flow units.
    let nominal1 = params.az13 * params.pipe_area * (2.0 * params.gravity).sqrt();
    let nominal2 = params.az20 * params.pipe_area * (2.0 * params.gravity).sqrt();

    let mut map = BehaviorMap::new();
    map.register(sys.ids.read1, move |inputs: &[Value]| {
        vec![Value::Float(read_level(inputs[0].as_float().unwrap_or(0.0)))]
    });
    map.register(sys.ids.read2, move |inputs: &[Value]| {
        vec![Value::Float(read_level(inputs[0].as_float().unwrap_or(0.0)))]
    });
    map.register(sys.ids.t1, move |inputs: &[Value]| {
        let level = inputs[0].as_float().unwrap_or(0.0);
        vec![Value::Float(pump_control(
            level,
            gains.ref1,
            gains.kp,
            gains.outflow_gain,
        ))]
    });
    map.register(sys.ids.t2, move |inputs: &[Value]| {
        let level = inputs[0].as_float().unwrap_or(0.0);
        vec![Value::Float(pump_control(
            level,
            gains.ref2,
            gains.kp,
            gains.outflow_gain,
        ))]
    });
    map.register(sys.ids.estimate1, move |inputs: &[Value]| {
        let level = inputs[0].as_float().unwrap_or(0.0);
        let u = inputs[1].as_float().unwrap_or(0.0);
        vec![Value::Float(estimate_perturbation(
            level, u, pump_max, nominal1,
        ))]
    });
    map.register(sys.ids.estimate2, move |inputs: &[Value]| {
        let level = inputs[0].as_float().unwrap_or(0.0);
        let u = inputs[1].as_float().unwrap_or(0.0);
        vec![Value::Float(estimate_perturbation(
            level, u, pump_max, nominal2,
        ))]
    });
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::Scenario;

    #[test]
    fn all_six_tasks_have_behaviors() {
        let sys = ThreeTankSystem::new(Scenario::Baseline);
        let map = build_behaviors(&sys, &PlantParams::default());
        for t in [
            sys.ids.read1,
            sys.ids.read2,
            sys.ids.t1,
            sys.ids.t2,
            sys.ids.estimate1,
            sys.ids.estimate2,
        ] {
            assert!(map.contains(t));
        }
    }

    #[test]
    fn controller_behavior_produces_saturated_currents() {
        let sys = ThreeTankSystem::new(Scenario::Baseline);
        let mut map = build_behaviors(&sys, &PlantParams::default());
        let out = map.invoke(&sys.spec, sys.ids.t1, &[Value::Float(0.0)]);
        let u = out[0].as_float().unwrap();
        assert!((0.0..=1.0).contains(&u));
        assert!(u > 0.5, "empty tank demands strong pumping, got {u}");
    }
}
