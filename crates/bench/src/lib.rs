//! Shared workload generators for the experiment binaries and benches.

use logrel_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A generated system bundle.
#[derive(Debug, Clone)]
pub struct GeneratedSystem {
    /// The specification.
    pub spec: Specification,
    /// The architecture.
    pub arch: Architecture,
    /// The implementation.
    pub imp: Implementation,
}

/// Generates a layered task system: `layers` layers of `width` tasks; each
/// task reads one or two communicators of the previous layer and writes one
/// of its own. Periods are uniform (100 ticks), layer `k` reads at instant
/// `100·(k−1)` and writes at `100·k`. Tasks are assigned round-robin over
/// `hosts` hosts (reliability 0.999); sensors feed the first layer.
///
/// # Panics
///
/// Panics if `layers`, `width` or `hosts` is zero (workload generators are
/// called with literal sizes).
pub fn layered_system(layers: usize, width: usize, hosts: usize, seed: u64) -> GeneratedSystem {
    assert!(layers > 0 && width > 0 && hosts > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let rel = Reliability::new(0.999).expect("valid");

    let mut sb = Specification::builder();
    // Layer 0: sensor-fed communicators.
    let mut prev: Vec<CommunicatorId> = (0..width)
        .map(|i| {
            sb.communicator(
                CommunicatorDecl::new(format!("s{i}"), ValueType::Float, 100)
                    .expect("valid period")
                    .from_sensor(),
            )
            .expect("unique names")
        })
        .collect();
    let mut task_decls = Vec::new();
    for layer in 1..=layers {
        let mut next = Vec::with_capacity(width);
        for i in 0..width {
            let c = sb
                .communicator(
                    CommunicatorDecl::new(format!("c{layer}_{i}"), ValueType::Float, 100)
                        .expect("valid period"),
                )
                .expect("unique names");
            next.push(c);
        }
        for (i, &out) in next.iter().enumerate() {
            let mut decl = TaskDecl::new(format!("t{layer}_{i}"))
                .reads(prev[rng.gen_range(0..width)], layer as u64 - 1)
                .writes(out, layer as u64);
            if width > 1 && rng.gen_bool(0.5) {
                // a second, distinct input
                let mut j = rng.gen_range(0..width);
                if prev[j] == decl.inputs()[0].comm {
                    j = (j + 1) % width;
                }
                decl = decl.reads(prev[j], layer as u64 - 1);
            }
            let id = sb.task(decl).expect("valid task");
            task_decls.push(id);
        }
        prev = next;
    }
    let spec = sb.build().expect("generated spec is race-free");

    let mut ab = Architecture::builder();
    let host_ids: Vec<HostId> = (0..hosts)
        .map(|i| {
            ab.host(HostDecl::new(format!("h{i}"), rel))
                .expect("unique names")
        })
        .collect();
    let sensor = ab
        .sensor(SensorDecl::new("sen", rel))
        .expect("unique name");
    for &t in &task_decls {
        ab.wcet_all(t, 1 + (t.index() as u64 % 3)).expect("hosts exist");
        ab.wctt_all(t, 1).expect("hosts exist");
    }
    let arch = ab.build();

    let mut ib = Implementation::builder();
    for (k, &t) in task_decls.iter().enumerate() {
        ib = ib.assign(t, [host_ids[k % hosts]]);
    }
    for c in spec.communicator_ids() {
        if spec.is_sensor_input(c) {
            ib = ib.bind_sensor(c, sensor);
        }
    }
    let imp = ib.build(&spec, &arch).expect("generated mapping is valid");
    GeneratedSystem { spec, arch, imp }
}

/// A ladder network with `rungs` rungs and uniform edge reliability `p` —
/// a classic benchmark for factoring algorithms (series-parallel
/// reductions keep it tractable at any size).
pub fn ladder_graph(rungs: usize, p: f64) -> logrel_reliability::ReliabilityGraph {
    let n = 2 * (rungs + 1);
    let mut g = logrel_reliability::ReliabilityGraph::new(n);
    for i in 0..=rungs {
        // rung
        g.add_edge(2 * i, 2 * i + 1, p).expect("valid edge");
        if i < rungs {
            // rails
            g.add_edge(2 * i, 2 * i + 2, p).expect("valid edge");
            g.add_edge(2 * i + 1, 2 * i + 3, p).expect("valid edge");
        }
    }
    g
}

/// Renders a large but uniform HTL-style program with `tasks` tasks for
/// parser throughput measurements.
pub fn big_htl_source(tasks: usize) -> String {
    let mut out = String::from("program big {\n");
    out.push_str("    communicator s : float period 100 sensor;\n");
    for i in 0..tasks {
        out.push_str(&format!(
            "    communicator c{i} : float period 100 lrc 0.9;\n"
        ));
    }
    out.push_str("    module m {\n        start mode main period 100 {\n");
    for i in 0..tasks {
        out.push_str(&format!(
            "            invoke t{i} reads s[0] writes c{i}[1];\n"
        ));
    }
    out.push_str("        }\n    }\n    architecture {\n");
    out.push_str("        host h0 reliability 0.999;\n");
    out.push_str("        sensor sn reliability 0.999;\n");
    for i in 0..tasks {
        out.push_str(&format!("        wcet t{i} on h0 1;\n"));
        out.push_str(&format!("        wctt t{i} on h0 0;\n"));
    }
    out.push_str("    }\n    map {\n");
    for i in 0..tasks {
        out.push_str(&format!("        t{i} -> h0;\n"));
    }
    out.push_str("        bind s -> sn;\n    }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layered_system_is_analyzable() {
        let g = layered_system(4, 6, 3, 42);
        assert_eq!(g.spec.task_count(), 24);
        let report = logrel_reliability::compute_srgs(&g.spec, &g.arch, &g.imp).unwrap();
        for c in g.spec.communicator_ids() {
            assert!(report.communicator(c).get() > 0.0);
        }
        logrel_sched::analyze(&g.spec, &g.arch, &g.imp).unwrap();
    }

    #[test]
    fn layered_system_is_deterministic_per_seed() {
        let a = layered_system(3, 4, 2, 7);
        let b = layered_system(3, 4, 2, 7);
        assert_eq!(a.spec, b.spec);
        assert_eq!(a.imp, b.imp);
        let c = layered_system(3, 4, 2, 8);
        assert!(c.spec != a.spec || c.imp != a.imp);
    }

    #[test]
    fn ladder_graph_shapes() {
        let g = ladder_graph(5, 0.9);
        assert_eq!(g.node_count(), 12);
        assert_eq!(g.edge_count(), 16);
        let r = g.two_terminal(0, 11).unwrap();
        assert!(r > 0.5 && r < 1.0);
    }

    #[test]
    fn big_htl_source_compiles() {
        let src = big_htl_source(20);
        let sys = logrel_lang::compile(&src).unwrap();
        assert_eq!(sys.spec.task_count(), 20);
    }
}
