//! E1 — regenerates Fig. 1 of the paper: communicators `c1..c4` with
//! periods 2, 3, 4, 2; task `t` reads the second instances of `c1`, `c2`
//! and updates the third and sixth instances of `c3`, `c4`; its LET spans
//! instants 3 to 8.
//!
//! Run with: `cargo run -p logrel-bench --bin fig1_timeline`

use logrel_core::prelude::*;

fn main() -> Result<(), CoreError> {
    let mut b = Specification::builder();
    let c1 = b.communicator(CommunicatorDecl::new("c1", ValueType::Float, 2)?)?;
    let c2 = b.communicator(CommunicatorDecl::new("c2", ValueType::Float, 3)?)?;
    let c3 = b.communicator(CommunicatorDecl::new("c3", ValueType::Float, 4)?)?;
    let c4 = b.communicator(CommunicatorDecl::new("c4", ValueType::Float, 2)?)?;
    let t = b.task(
        TaskDecl::new("t")
            .reads(c1, 1)
            .reads(c2, 1)
            .writes(c3, 2)
            .writes(c4, 5),
    )?;
    let spec = b.build()?;

    let round = spec.round_period().as_u64();
    println!("Fig. 1 — communicators and tasks (round period π_S = {round})\n");

    // Timeline header.
    print!("      ");
    for tick in 0..=round {
        print!("{tick:>3}");
    }
    println!();

    // One row per communicator: mark update instants.
    for (name, c) in [("c1", c1), ("c2", c2), ("c3", c3), ("c4", c4)] {
        print!("{name:>4}  ");
        let period = spec.communicator(c).period().as_u64();
        for tick in 0..=round {
            if tick % period == 0 {
                print!("  ●");
            } else {
                print!("  ·");
            }
        }
        println!();
    }

    // The task's LET bar.
    let read = spec.read_time(t).as_u64();
    let write = spec.write_time(t).as_u64();
    print!("task  ");
    for tick in 0..=round {
        if tick == read {
            print!("  ⊢");
        } else if tick == write {
            print!("  ⊣");
        } else if tick > read && tick < write {
            print!("  ─");
        } else {
            print!("   ");
        }
    }
    println!("\n");
    println!("reads  (c1, 1) @ {}  and (c2, 1) @ {}", 2, 3);
    println!("writes (c3, 2) @ {}  and (c4, 5) @ {}", 8, 10);
    println!("LET(t) = [{read}, {write}]  (length {})", write - read);
    assert_eq!((read, write), (3, 8), "must match the paper");
    Ok(())
}
