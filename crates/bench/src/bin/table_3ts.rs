//! E2–E5 — the §4 reliability table of the three-tank system: baseline
//! SRGs against LRC 0.99 and 0.998, then the paper's two repair scenarios.
//!
//! Run with: `cargo run -p logrel-bench --bin table_3ts`

use logrel_reliability::compute_srgs;
use logrel_threetank::{Scenario, ThreeTankSystem};

struct Row {
    label: &'static str,
    scenario: Scenario,
    lrc: f64,
    paper_lambda_u: f64,
    paper_reliable: bool,
}

fn main() {
    let rows = [
        Row {
            label: "baseline, LRC 0.99",
            scenario: Scenario::Baseline,
            lrc: 0.99,
            paper_lambda_u: 0.997002999,
            paper_reliable: true,
        },
        Row {
            label: "baseline, LRC 0.998",
            scenario: Scenario::Baseline,
            lrc: 0.998,
            paper_lambda_u: 0.997002999,
            paper_reliable: false,
        },
        Row {
            label: "scenario 1 (t1,t2 on {h1,h2}), LRC 0.998",
            scenario: Scenario::ReplicatedControllers,
            lrc: 0.998,
            paper_lambda_u: 0.998000002,
            paper_reliable: true,
        },
        Row {
            label: "scenario 2 (sensors doubled), LRC 0.998",
            scenario: Scenario::ReplicatedSensors,
            lrc: 0.998,
            paper_lambda_u: 0.998,
            paper_reliable: true,
        },
    ];

    println!("3TS reliability analysis (host/sensor reliability 0.999)\n");
    println!(
        "{:<44} {:>12} {:>12} {:>12} {:>9} {:>7}",
        "configuration", "λ(l1)", "λ(u1)", "paper λ(u)", "verdict", "paper"
    );
    let mut all_match = true;
    for row in rows {
        let sys = ThreeTankSystem::with_options(row.scenario, 0.999, Some(row.lrc))
            .expect("valid constants");
        let srgs = compute_srgs(&sys.spec, &sys.arch, &sys.imp).expect("memory-free");
        let lambda_l = srgs.communicator(sys.ids.l1).get();
        let lambda_u = srgs.communicator(sys.ids.u1).get();
        let verdict = logrel_reliability::check(&sys.spec, &sys.arch, &sys.imp)
            .expect("analyzable")
            .is_reliable();
        let sched = logrel_sched::analyze(&sys.spec, &sys.arch, &sys.imp).is_ok();
        let matches = verdict == row.paper_reliable
            && (lambda_u - row.paper_lambda_u).abs() < 5e-7
            && sched;
        all_match &= matches;
        println!(
            "{:<44} {:>12.9} {:>12.9} {:>12.9} {:>9} {:>7}",
            row.label,
            lambda_l,
            lambda_u,
            row.paper_lambda_u,
            if verdict { "RELIABLE" } else { "VIOLATED" },
            if matches { "✓" } else { "✗" },
        );
    }
    println!(
        "\nall rows {} the paper's reported values",
        if all_match { "match" } else { "DIVERGE FROM" }
    );
    assert!(all_match);
}
