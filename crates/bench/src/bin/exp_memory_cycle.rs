//! E8 — the §3 "Specification with memory" pathology: a series-model task
//! reading and writing the same communicator collapses to long-run
//! reliability 0 ("once ⊥ is written, the value of c is always ⊥"); an
//! independent-model task in the cycle restores λ_t.
//!
//! Run with: `cargo run -p logrel-bench --bin exp_memory_cycle`

use logrel_core::prelude::*;
use logrel_reliability::compute_srgs;
use logrel_sim::{BehaviorMap, ConstantEnvironment, ProbabilisticFaults, SimConfig, Simulation};

fn build(model: FailureModel) -> (Specification, Architecture, TimeDependentImplementation) {
    let mut sb = Specification::builder();
    let c = sb
        .communicator(CommunicatorDecl::new("c", ValueType::Float, 10).expect("valid"))
        .expect("unique");
    let mut td = TaskDecl::new("t").reads(c, 0).writes(c, 1).model(model);
    if model != FailureModel::Series {
        td = td.default_value(Value::Float(0.0));
    }
    let t = sb.task(td).expect("valid");
    let spec = sb.build().expect("well-formed");
    let mut ab = Architecture::builder();
    let h = ab
        .host(HostDecl::new("h", Reliability::new(0.95).expect("valid")))
        .expect("unique");
    ab.wcet_all(t, 1).expect("hosts");
    ab.wctt_all(t, 1).expect("hosts");
    let arch = ab.build();
    let imp = Implementation::builder()
        .assign(t, [h])
        .build(&spec, &arch)
        .expect("valid mapping");
    (spec, arch, imp.into())
}

fn simulate(spec: &Specification, arch: &Architecture, imp: &TimeDependentImplementation) -> Vec<f64> {
    let sim = Simulation::new(spec, arch, imp);
    let mut behaviors = BehaviorMap::new();
    let t = spec.find_task("t").expect("declared");
    behaviors.register(t, |i: &[Value]| {
        vec![Value::Float(i[0].as_float().unwrap_or(0.0) + 1.0)]
    });
    let mut inj = ProbabilisticFaults::from_architecture(arch);
    let out = sim.run(
        &mut behaviors,
        &mut ConstantEnvironment::new(Value::Float(0.0)),
        &mut inj,
        &SimConfig {
            rounds: 20_000,
            seed: 13,
        },
    );
    let c = spec.find_communicator("c").expect("declared");
    let bits = out.trace.abstraction(c);
    // Windowed reliability over 10 windows.
    let w = bits.len() / 10;
    (0..10)
        .map(|k| {
            let win = &bits[k * w..(k + 1) * w];
            win.iter().filter(|&&b| b).count() as f64 / w as f64
        })
        .collect()
}

fn main() {
    println!("communicator cycle: task t reads c[0], writes c[1] (host reliability 0.95)\n");

    let (spec, arch, imp) = build(FailureModel::Series);
    match compute_srgs(&spec, &arch, imp.at_iteration(0)) {
        Err(e) => println!("series model — static analysis rejects the cycle:\n  {e}"),
        Ok(_) => unreachable!("the cycle must be rejected"),
    }
    let windows = simulate(&spec, &arch, &imp);
    println!("  simulated per-window reliability (2000 updates each):");
    println!("    {:?}", windows.iter().map(|x| (x * 1000.0).round() / 1000.0).collect::<Vec<_>>());
    let tail = windows[9];
    assert!(tail == 0.0, "the tail must be all-⊥, got {tail}");
    println!("  → long-run average collapses to 0, as §3 predicts\n");

    let (spec, arch, imp) = build(FailureModel::Independent);
    let report = compute_srgs(&spec, &arch, imp.at_iteration(0)).expect("cycle is cut");
    let c = spec.find_communicator("c").expect("declared");
    println!(
        "independent model — analysis succeeds: λ(c) = {} (= λ_t)",
        report.communicator(c).get()
    );
    let windows = simulate(&spec, &arch, &imp);
    println!("  simulated per-window reliability:");
    println!("    {:?}", windows.iter().map(|x| (x * 1000.0).round() / 1000.0).collect::<Vec<_>>());
    let mean: f64 = windows.iter().sum::<f64>() / windows.len() as f64;
    assert!((mean - 0.95).abs() < 0.01, "mean {mean}");
    println!("  → long-run average stays at λ_t = 0.95: the default value breaks the ⊥ chain");
}
