//! E10 — incremental analysis via refinement (Proposition 2): compare the
//! cost of re-running the full joint analysis at every design step against
//! checking only the local refinement constraints, over growing system
//! sizes. This quantifies the paper's claim that "the complexity of a
//! joint schedulability/reliability analysis can be reduced significantly"
//! by a sequence of refinement steps.
//!
//! Run with: `cargo run -p logrel-bench --bin exp_refinement --release`

use logrel_bench::layered_system;
use logrel_refine::{check_refinement, validate, Kappa, SystemRef};
use std::time::Instant;

fn main() {
    println!(
        "{:>7} {:>7} {:>14} {:>14} {:>9}",
        "tasks", "hosts", "full (µs)", "incremental (µs)", "speedup"
    );
    for &(layers, width) in &[(2usize, 4usize), (4, 8), (6, 16), (8, 24), (10, 32)] {
        let hosts = 4;
        let sys = layered_system(layers, width, hosts, 7);
        let sref = SystemRef::new(&sys.spec, &sys.arch, &sys.imp);
        let kappa = Kappa::identity(&sys.spec);

        // Make sure both paths succeed before timing them.
        let cert = validate(sref).expect("generated system is valid");
        check_refinement(sref, sref, &kappa).expect("reflexive");

        let reps = 20;
        let t0 = Instant::now();
        for _ in 0..reps {
            let c = validate(sref).expect("valid");
            std::hint::black_box(&c);
        }
        let full = t0.elapsed().as_secs_f64() / reps as f64 * 1e6;

        let t1 = Instant::now();
        for _ in 0..reps {
            check_refinement(sref, sref, &kappa).expect("reflexive");
            std::hint::black_box(&cert);
        }
        let incr = t1.elapsed().as_secs_f64() / reps as f64 * 1e6;

        println!(
            "{:>7} {:>7} {:>14.1} {:>14.1} {:>8.1}x",
            layers * width,
            hosts,
            full,
            incr,
            full / incr
        );
    }
    println!("\n(the incremental path performs only the local per-task constraint checks;");
    println!(" the inherited certificate is the refined system's, per Proposition 2)");
}
