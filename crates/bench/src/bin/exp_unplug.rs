//! E6 — the §4 fault-tolerance experiment: run the closed-loop 3TS, unplug
//! one of the two controller hosts mid-run, inject a plant perturbation,
//! and compare tracking performance with and without replication.
//!
//! Paper: "We unplugged one of the two hosts from the network and verified
//! that there was no change in the control performance of the system."
//!
//! Run with: `cargo run -p logrel-bench --bin exp_unplug`

use logrel_core::{Tick, TimeDependentImplementation};
use logrel_sim::{BehaviorMap, NoFaults, SimConfig, Simulation, UnplugAt};
use logrel_threetank::behaviors::build_behaviors;
use logrel_threetank::{PlantParams, Scenario, ThreeTankEnvironment, ThreeTankSystem};

const ROUNDS: u64 = 900; // 450 s of plant time
const UNPLUG_AT: u64 = 250 * 500;
const PERTURB_AT: u64 = 450 * 500;

fn run(scenario: Scenario, unplug: bool) -> (f64, Vec<(u64, f64)>) {
    let sys = ThreeTankSystem::new(scenario);
    let params = PlantParams::default();
    let imp = TimeDependentImplementation::from(sys.imp.clone());
    let sim = Simulation::new(&sys.spec, &sys.arch, &imp);
    let mut behaviors: BehaviorMap = build_behaviors(&sys, &params);
    let mut env =
        ThreeTankEnvironment::new(params, sys.ids, 0.001, sys.gains.ref1, sys.gains.ref2);
    env.perturb_at(Tick::new(PERTURB_AT), 0, 0.3);
    let config = SimConfig {
        rounds: ROUNDS,
        seed: 42,
    };
    if unplug {
        let mut inj = UnplugAt::new(NoFaults, sys.ids.h1, Tick::new(UNPLUG_AT));
        sim.run(&mut behaviors, &mut env, &mut inj, &config);
    } else {
        sim.run(&mut behaviors, &mut env, &mut NoFaults, &config);
    }
    let series: Vec<(u64, f64)> = env
        .error_log()
        .iter()
        .filter(|(t, _, _)| t.as_u64() % 25_000 == 0)
        .map(|(t, e1, e2)| (t.as_u64() / 1000, (e1 + e2) / 2.0))
        .collect();
    (env.mean_error_since(Tick::new(PERTURB_AT)), series)
}

fn main() {
    println!(
        "closed-loop 3TS: unplug h1 at t = {} s, open tank-1 tap at t = {} s\n",
        UNPLUG_AT / 1000,
        PERTURB_AT / 1000
    );

    let (nom_rep, series_nom) = run(Scenario::ReplicatedControllers, false);
    let (unp_rep, series_unp) = run(Scenario::ReplicatedControllers, true);
    let (nom_base, _) = run(Scenario::Baseline, false);
    let (unp_base, series_base) = run(Scenario::Baseline, true);

    println!("mean |tracking error| after the perturbation:");
    println!("  replicated controllers, no fault:   {nom_rep:.6} m");
    println!("  replicated controllers, h1 removed: {unp_rep:.6} m");
    println!("  baseline (unreplicated), no fault:  {nom_base:.6} m");
    println!("  baseline (unreplicated), h1 removed:{unp_base:.6} m");

    println!("\nerror over time (s → m), replicated nominal | replicated unplugged | baseline unplugged:");
    for ((t, a), ((_, b), (_, c))) in series_nom
        .iter()
        .zip(series_unp.iter().zip(series_base.iter()))
    {
        println!("  t = {t:>4} s: {a:.5} | {b:.5} | {c:.5}");
    }

    // The paper's finding, quantitatively.
    assert!(
        (nom_rep - unp_rep).abs() < 1e-9,
        "replication: no change in control performance"
    );
    assert!(
        unp_base > nom_base * 2.0,
        "without replication the perturbation is not rejected"
    );
    println!("\n✓ unplugging a host has no effect when the controllers are replicated");
    println!("✓ the unreplicated baseline visibly degrades");
}
