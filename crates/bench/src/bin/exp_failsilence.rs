//! Extension experiment — testing the fail-silence assumption: the paper
//! assumes hosts are fail-silent (its ref \[2\]: achievable "at a
//! reasonable cost") and therefore votes by taking *any* delivered value.
//! Here we violate the assumption: faulty replicas deliver corrupted
//! values instead of staying silent, with probability `q` per invocation.
//! Any-reliable voting degrades linearly with the corruption rate (one bad
//! replica can poison the communicator); majority voting over 3 replicas
//! recovers all but the multi-corruption rounds.
//!
//! Each sweep cell runs as a deterministic parallel Monte-Carlo batch
//! (`logrel_sim::montecarlo`) of four independently seeded replications
//! whose fractions are averaged — same total sample count as before,
//! identical at any worker count.
//!
//! Run with: `cargo run -p logrel-bench --bin exp_failsilence`

use logrel_core::prelude::*;
use logrel_sim::{
    montecarlo, BatchConfig, BehaviorMap, ConstantEnvironment, CorruptingFaults,
    ReplicationContext, Simulation, VotingStrategy,
};

const ROUNDS: u64 = 5_000;
const REPLICATIONS: u64 = 4;
const GARBAGE: f64 = 9999.0;
const TRUTH: f64 = 42.0;

fn build() -> (Specification, Architecture, TimeDependentImplementation) {
    let mut sb = Specification::builder();
    let s = sb
        .communicator(
            CommunicatorDecl::new("s", ValueType::Float, 10)
                .expect("valid")
                .from_sensor(),
        )
        .expect("unique");
    let u = sb
        .communicator(CommunicatorDecl::new("u", ValueType::Float, 10).expect("valid"))
        .expect("unique");
    let t = sb
        .task(TaskDecl::new("f").reads(s, 0).writes(u, 1))
        .expect("valid");
    let spec = sb.build().expect("well-formed");
    let mut ab = Architecture::builder();
    let hosts: Vec<HostId> = (0..3)
        .map(|i| {
            ab.host(HostDecl::new(
                format!("h{i}"),
                Reliability::new(0.999).expect("valid"),
            ))
            .expect("unique")
        })
        .collect();
    let sen = ab
        .sensor(SensorDecl::new("sen", Reliability::ONE))
        .expect("unique");
    ab.wcet_all(t, 1).expect("hosts");
    ab.wctt_all(t, 1).expect("hosts");
    let arch = ab.build();
    let imp = Implementation::builder()
        .assign(t, hosts)
        .bind_sensor(s, sen)
        .build(&spec, &arch)
        .expect("valid");
    (spec, arch, imp.into())
}

fn correct_fraction(
    spec: &Specification,
    arch: &Architecture,
    imp: &TimeDependentImplementation,
    corruption: f64,
    strategy: VotingStrategy,
) -> f64 {
    let t = spec.find_task("f").expect("declared");
    let u = spec.find_communicator("u").expect("declared");
    let mut sim = Simulation::new(spec, arch, imp);
    sim.set_voting(strategy);
    let config = BatchConfig {
        replications: REPLICATIONS,
        rounds: ROUNDS,
        base_seed: 31,
        threads: 0,
    };
    let fractions = montecarlo::run_replications(
        &sim,
        &config,
        |_rep| {
            let mut behaviors = BehaviorMap::new();
            behaviors.register(t, |_: &[Value]| vec![Value::Float(TRUTH)]);
            ReplicationContext {
                behaviors,
                environment: Box::new(ConstantEnvironment::new(Value::Float(0.0))),
                injector: Box::new(CorruptingFaults::new(corruption, GARBAGE)),
            }
        },
        |_rep, out| {
            let values: Vec<_> = out.trace.values(u).iter().skip(1).collect();
            values
                .iter()
                .filter(|(_, v)| *v == Value::Float(TRUTH))
                .count() as f64
                / values.len() as f64
        },
    );
    montecarlo::mean(&fractions)
}

fn main() {
    let (spec, arch, imp) = build();
    println!(
        "three replicas, per-replica corruption probability q (non-fail-silent hosts),\n\
         {REPLICATIONS} × {ROUNDS} rounds; fraction of CORRECT communicator values:\n"
    );
    println!(
        "{:>8} {:>14} {:>14} {:>18}",
        "q", "any-reliable", "majority", "analytic majority"
    );
    for q in [0.0, 0.01, 0.05, 0.1, 0.2] {
        let any = correct_fraction(&spec, &arch, &imp, q, VotingStrategy::AnyReliable);
        let maj = correct_fraction(&spec, &arch, &imp, q, VotingStrategy::Majority);
        // Majority of 3 is correct unless >= 2 replicas corrupt:
        // 1 - (3 q² (1-q) + q³), derated by the tiny silent-failure rate.
        let analytic = 1.0 - (3.0 * q * q * (1.0 - q) + q * q * q);
        println!("{q:>8} {any:>14.5} {maj:>14.5} {analytic:>18.5}");
        if q > 0.0 {
            assert!(maj > any, "majority must dominate under corruption");
            assert!((maj - analytic).abs() < 0.01, "majority tracks the analytic value");
        }
    }
    println!(
        "\n✓ fail-silence is load-bearing: any-reliable voting collapses under value\n\
         corruption, while majority voting over 3 replicas stays near the analytic bound"
    );
}
