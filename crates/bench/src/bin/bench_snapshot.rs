//! Emits `BENCH_baseline.json`: a small, dependency-free performance
//! snapshot of the hot paths (the Criterion benches need a dev-dependency
//! and an interactive run; this binary gives CI and future sessions one
//! comparable JSON artefact).
//!
//! Measured, each as the median of several timed repetitions:
//!
//! * compiled simulator kernel and the map-driven reference interpreter on
//!   the 3TS baseline workload (rounds/sec, communicator-update events/sec,
//!   and their speedup ratio);
//! * `compute_srgs` on the 3TS (ns per full report);
//! * greedy and exhaustive replication synthesis on a three-host pipeline
//!   (ms per solve).
//!
//! Run with: `cargo run --release -p logrel-bench --bin bench_snapshot`

use logrel_core::prelude::*;
use logrel_reliability::{compute_srgs, exhaustive_synthesize, synthesize, SynthesisOptions};
use logrel_sim::{
    BehaviorMap, ConstantEnvironment, ProbabilisticFaults, SimConfig, SimOutput, Simulation,
};
use logrel_threetank::{Scenario, ThreeTankSystem};
use std::time::Instant;

const SIM_ROUNDS: u64 = 10_000;
const REPS: usize = 7;

/// Median wall-clock seconds of `REPS` runs of `f`.
fn median_secs(mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..REPS)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn run_sim(sim: &Simulation, arch: &Architecture, reference: bool) -> SimOutput {
    let mut behaviors = BehaviorMap::new();
    let mut env = ConstantEnvironment::new(Value::Float(0.2));
    let mut inj = ProbabilisticFaults::from_architecture(arch);
    let config = SimConfig {
        rounds: SIM_ROUNDS,
        seed: 5,
    };
    if reference {
        sim.run_reference(&mut behaviors, &mut env, &mut inj, &config)
    } else {
        sim.run(&mut behaviors, &mut env, &mut inj, &config)
    }
}

/// The synthesis workload: sensor -> reader -> ctrl pipeline, three hosts,
/// an LRC only double replication of both tasks can meet.
fn synthesis_system() -> (Specification, Architecture, Implementation) {
    let mut sb = Specification::builder();
    let s = sb
        .communicator(
            CommunicatorDecl::new("s", ValueType::Float, 500)
                .expect("valid")
                .from_sensor(),
        )
        .expect("unique");
    let l = sb
        .communicator(CommunicatorDecl::new("l", ValueType::Float, 100).expect("valid"))
        .expect("unique");
    let u = sb
        .communicator(
            CommunicatorDecl::new("u", ValueType::Float, 100)
                .expect("valid")
                .with_lrc(Reliability::new(0.9995).expect("valid")),
        )
        .expect("unique");
    let reader = sb
        .task(TaskDecl::new("reader").reads(s, 0).writes(l, 1))
        .expect("valid");
    let ctrl = sb
        .task(TaskDecl::new("ctrl").reads(l, 1).writes(u, 3))
        .expect("valid");
    let spec = sb.build().expect("well-formed");
    let mut ab = Architecture::builder();
    let hosts: Vec<HostId> = ["h1", "h2", "h3"]
        .iter()
        .map(|n| {
            ab.host(HostDecl::new(*n, Reliability::new(0.999).expect("valid")))
                .expect("unique")
        })
        .collect();
    let sen = ab
        .sensor(SensorDecl::new("sen", Reliability::ONE))
        .expect("unique");
    for t in [reader, ctrl] {
        ab.wcet_all(t, 1).expect("hosts");
        ab.wctt_all(t, 1).expect("hosts");
    }
    let arch = ab.build();
    let imp = Implementation::builder()
        .assign(reader, [hosts[2]])
        .assign(ctrl, [hosts[0]])
        .bind_sensor(s, sen)
        .build(&spec, &arch)
        .expect("valid");
    (spec, arch, imp)
}

fn main() {
    let sys = ThreeTankSystem::with_options(Scenario::Baseline, 0.99, None).expect("valid");
    let imp = TimeDependentImplementation::from(sys.imp.clone());
    let sim = Simulation::new(&sys.spec, &sys.arch, &imp);

    // One untimed run to count the recorded communicator-update events.
    let out = run_sim(&sim, &sys.arch, false);
    let events: usize = sys
        .spec
        .communicator_ids()
        .map(|c| out.trace.update_count(c))
        .sum();

    let kernel_secs = median_secs(|| {
        std::hint::black_box(run_sim(&sim, &sys.arch, false));
    });
    let reference_secs = median_secs(|| {
        std::hint::black_box(run_sim(&sim, &sys.arch, true));
    });

    let srg_secs = median_secs(|| {
        std::hint::black_box(compute_srgs(&sys.spec, &sys.arch, &sys.imp).expect("memory-free"));
    });

    let (spec, arch, base) = synthesis_system();
    let opts = SynthesisOptions::default();
    let greedy_secs = median_secs(|| {
        std::hint::black_box(synthesize(&spec, &arch, &base, &opts, |_| true).expect("solvable"));
    });
    let exhaustive_secs = median_secs(|| {
        std::hint::black_box(
            exhaustive_synthesize(&spec, &arch, &base, &opts, |_| true).expect("solvable"),
        );
    });

    let json = format!(
        "{{\n  \
         \"workload\": \"3TS baseline, reliability 0.99, {SIM_ROUNDS} rounds, seed 5\",\n  \
         \"simulator\": {{\n    \
         \"rounds\": {SIM_ROUNDS},\n    \
         \"events_per_run\": {events},\n    \
         \"kernel_rounds_per_sec\": {:.0},\n    \
         \"kernel_events_per_sec\": {:.0},\n    \
         \"reference_rounds_per_sec\": {:.0},\n    \
         \"reference_events_per_sec\": {:.0},\n    \
         \"kernel_speedup_over_reference\": {:.2}\n  }},\n  \
         \"srg\": {{ \"compute_srgs_3ts_ns\": {:.0} }},\n  \
         \"synthesis\": {{\n    \
         \"greedy_ms\": {:.3},\n    \
         \"exhaustive_ms\": {:.3}\n  }}\n}}\n",
        SIM_ROUNDS as f64 / kernel_secs,
        events as f64 / kernel_secs,
        SIM_ROUNDS as f64 / reference_secs,
        events as f64 / reference_secs,
        reference_secs / kernel_secs,
        srg_secs * 1e9,
        greedy_secs * 1e3,
        exhaustive_secs * 1e3,
    );
    std::fs::write("BENCH_baseline.json", &json).expect("writable working directory");
    print!("{json}");
    println!("wrote BENCH_baseline.json");
}
