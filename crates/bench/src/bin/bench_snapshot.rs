//! Emits a performance snapshot of the hot paths as one comparable JSON
//! artefact (the Criterion benches need a dev-dependency and an
//! interactive run; this binary gives CI and future sessions a
//! dependency-free trajectory point).
//!
//! Measured, each as the best (minimum) of several timed repetitions:
//!
//! * compiled simulator kernel and the map-driven reference interpreter on
//!   the 3TS baseline workload (rounds/sec, communicator-update events/sec,
//!   and their speedup ratio);
//! * the kernel through `run_observed` with the no-op metrics sink
//!   (`kernel_observed_noop_rounds_per_sec` — must match the plain kernel;
//!   the sink monomorphizes to nothing) and with a live `Registry`
//!   (`kernel_observed_registry_rounds_per_sec` — the enabled-path cost);
//! * the bit-sliced kernel packing 64 replications per `u64` word
//!   (`kernel_bitsliced_rounds_per_sec` — replication-rounds per second
//!   across all lanes; `bitsliced_speedup_over_kernel` is its ratio to
//!   the scalar kernel, floor-gated at 10x under `--compare`);
//! * the kernel under the scenario layer: a plain timeline (crash/rejoin,
//!   flaky window, GE burst) versus the same timeline plus every
//!   correlated event kind (common-cause group, partition, Weibull
//!   wear-out, adaptive adversary) — `scenario_overhead` is the
//!   correlated/plain slowdown, floor-gated at ≤1.2x under `--compare`;
//! * `compute_srgs` on the 3TS (ns per full report);
//! * full static reliability certification on the 3TS
//!   (`certify_specs_per_sec` — interval SRGs, symbolic sensitivities and
//!   per-component margins per spec);
//! * the incremental analysis engine on the steer-by-wire study:
//!   `analyze_cold_specs_per_sec` runs all seven queries from scratch,
//!   `analyze_warm_specs_per_sec` re-analyses after a single-task WCET
//!   decrease against the cold database (only the dirtied cone runs;
//!   schedulability transfers by refinement reuse) — their ratio is
//!   floor-gated at 5x under `--compare`;
//! * greedy and exhaustive replication synthesis on a three-host pipeline
//!   (ms per solve, timed over inner batches — a single solve is µs-scale).
//!
//! Usage:
//!
//! ```text
//! bench_snapshot [--out PATH] [--compare BASELINE] [--tolerance FRAC]
//! ```
//!
//! Writes the snapshot to `BENCH_snapshot.json` (override with `--out`).
//! With `--compare`, gated metrics are checked against the baseline
//! snapshot and the process exits nonzero when any regresses by more
//! than `--tolerance` (default 0.15). `verify.sh` widens the tolerance:
//! absolute throughput on a shared VM drifts by phase (2x swings
//! observed), so the absolute gate is a coarse smoke alarm while the
//! paired-ratio floors and ceilings below carry the tight guarantees.
//!
//! Run with: `cargo run --release -p logrel-bench --bin bench_snapshot`

use logrel_core::prelude::*;
use logrel_obs::{NoopSink, Registry};
use logrel_reliability::{compute_srgs, exhaustive_synthesize, synthesize, SynthesisOptions};
use logrel_sim::{
    derive_seed, BehaviorMap, ConstantEnvironment, HostSet, LaneContext, NoSupervisor,
    ProbabilisticFaults, Scenario as FaultScenario, ScenarioEnvironment, ScenarioEvent,
    ScenarioInjector, SimConfig, SimOutput, Simulation,
};
use logrel_threetank::{Scenario, ThreeTankSystem};
use std::collections::BTreeMap;
use std::process::ExitCode;
use std::time::Instant;

const SIM_ROUNDS: u64 = 10_000;
const REPS: usize = 7;
/// Inner batch size for µs-scale workloads: one timed sample solves the
/// synthesis problem this many times, so the sample is well above timer
/// granularity and scheduler noise.
const SYNTH_BATCH: usize = 50;
/// Inner batch sizes for the `analyze` cold/warm workloads. The warm
/// batch is larger so both timed samples last a few milliseconds each:
/// with equal durations, a scheduler preemption inflates either side of
/// the paired ratio by the same relative amount instead of hitting the
/// (otherwise much shorter) warm sample ~7x harder.
const ANALYZE_COLD_BATCH: usize = 32;
const ANALYZE_WARM_BATCH: usize = 64;

/// The steer-by-wire case study: the incremental-analysis workload.
const STEER_SRC: &str = include_str!("../../../../assets/steer_by_wire.htl");

/// Metrics gated by `--compare`, with their direction (`true` = higher
/// is better). Keys missing from the baseline are skipped, so older
/// baselines stay comparable as metrics are added.
const GATES: &[(&str, bool)] = &[
    ("kernel_rounds_per_sec", true),
    ("kernel_observed_noop_rounds_per_sec", true),
    ("kernel_observed_registry_rounds_per_sec", true),
    ("kernel_bitsliced_rounds_per_sec", true),
    ("kernel_scenario_plain_rounds_per_sec", true),
    ("kernel_scenario_correlated_rounds_per_sec", true),
    ("reference_rounds_per_sec", true),
    ("compute_srgs_3ts_ns", false),
    ("certify_specs_per_sec", true),
    ("analyze_cold_specs_per_sec", true),
    ("analyze_warm_specs_per_sec", true),
    ("greedy_ms", false),
    ("exhaustive_ms", false),
    ("serve_cold_jobs_per_sec", true),
    ("serve_jobs_per_sec", true),
];

/// Absolute ratio floors checked under `--compare` regardless of the
/// baseline's contents (a fresh baseline cannot vouch for keys it never
/// had): the bit-sliced kernel must hold its headline speedup, and the
/// live-registry observer must stay within striking distance of the
/// plain kernel.
const RATIO_FLOORS: &[(&str, &str, &str, f64)] = &[
    (
        "bit-sliced speedup",
        "kernel_bitsliced_rounds_per_sec",
        "kernel_rounds_per_sec",
        10.0,
    ),
    (
        "observed-registry overhead",
        "kernel_observed_registry_rounds_per_sec",
        "kernel_rounds_per_sec",
        0.6,
    ),
    // An empty denominator key gates the numerator metric directly: the
    // reported speedup is already a ratio (median of paired per-rep
    // cold/warm ratios, which cancels machine-wide frequency drift that
    // a quotient of independent minima would not).
    ("incremental re-analysis speedup", "analyze_warm_speedup", "", 5.0),
    // The campaign service's reason to exist: once a spec is in the
    // compilation cache, a job is just its (tiny, here) campaign.
    ("serve warm-cache speedup", "serve_warm_speedup", "", 5.0),
];

/// Absolute ratio ceilings, the mirror of [`RATIO_FLOORS`]: the metric
/// (already a ratio) must stay at or below the bound. The correlated
/// scenario ecology (common-cause draws, partition masks, Weibull
/// hazards, vote observation) may cost at most 1.2x the plain scenario
/// path; `scenario_overhead` is a median of per-rep paired ratios, so
/// machine-wide frequency drift cancels.
const RATIO_CEILS: &[(&str, &str, f64)] = &[("correlated-scenario overhead", "scenario_overhead", 1.2)];

/// Minimum wall-clock seconds over `REPS` runs of `f`. The minimum is
/// the noise-robust estimator for throughput on shared machines: every
/// contamination (scheduler preemption, a noisy neighbour) only ever
/// adds time, so the fastest sample is the closest to the true cost.
fn best_secs(mut f: impl FnMut()) -> f64 {
    (0..REPS)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .fold(f64::MAX, f64::min)
}

enum Mode {
    Kernel,
    Reference,
    ObservedNoop,
    ObservedRegistry,
}

fn run_sim(sim: &Simulation, arch: &Architecture, mode: &Mode) -> SimOutput {
    let mut behaviors = BehaviorMap::new();
    let mut env = ConstantEnvironment::new(Value::Float(0.2));
    let mut inj = ProbabilisticFaults::from_architecture(arch);
    let config = SimConfig {
        rounds: SIM_ROUNDS,
        seed: 5,
    };
    match mode {
        Mode::Kernel => sim.run(&mut behaviors, &mut env, &mut inj, &config),
        Mode::Reference => sim.run_reference(&mut behaviors, &mut env, &mut inj, &config),
        Mode::ObservedNoop => sim.run_observed(
            &mut behaviors,
            &mut env,
            &mut inj,
            &mut NoSupervisor,
            &mut NoopSink,
            &config,
        ),
        Mode::ObservedRegistry => sim.run_observed(
            &mut behaviors,
            &mut env,
            &mut inj,
            &mut NoSupervisor,
            &mut Registry::new(),
            &config,
        ),
    }
}

/// The synthesis workload: sensor -> reader -> ctrl pipeline, three hosts,
/// an LRC only double replication of both tasks can meet.
fn synthesis_system() -> (Specification, Architecture, Implementation) {
    let mut sb = Specification::builder();
    let s = sb
        .communicator(
            CommunicatorDecl::new("s", ValueType::Float, 500)
                .expect("valid")
                .from_sensor(),
        )
        .expect("unique");
    let l = sb
        .communicator(CommunicatorDecl::new("l", ValueType::Float, 100).expect("valid"))
        .expect("unique");
    let u = sb
        .communicator(
            CommunicatorDecl::new("u", ValueType::Float, 100)
                .expect("valid")
                .with_lrc(Reliability::new(0.9995).expect("valid")),
        )
        .expect("unique");
    let reader = sb
        .task(TaskDecl::new("reader").reads(s, 0).writes(l, 1))
        .expect("valid");
    let ctrl = sb
        .task(TaskDecl::new("ctrl").reads(l, 1).writes(u, 3))
        .expect("valid");
    let spec = sb.build().expect("well-formed");
    let mut ab = Architecture::builder();
    let hosts: Vec<HostId> = ["h1", "h2", "h3"]
        .iter()
        .map(|n| {
            ab.host(HostDecl::new(*n, Reliability::new(0.999).expect("valid")))
                .expect("unique")
        })
        .collect();
    let sen = ab
        .sensor(SensorDecl::new("sen", Reliability::ONE))
        .expect("unique");
    for t in [reader, ctrl] {
        ab.wcet_all(t, 1).expect("hosts");
        ab.wctt_all(t, 1).expect("hosts");
    }
    let arch = ab.build();
    let imp = Implementation::builder()
        .assign(reader, [hosts[2]])
        .assign(ctrl, [hosts[0]])
        .bind_sensor(s, sen)
        .build(&spec, &arch)
        .expect("valid");
    (spec, arch, imp)
}

/// Extracts every `"key": <number>` pair from a snapshot document — the
/// minimal scanner the flat snapshot format needs (string values and
/// object openers parse as no number and are skipped).
fn scan_numbers(json: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    let parts: Vec<&str> = json.split('"').collect();
    // parts alternate outside/inside quotes; odd indices are quoted keys.
    for i in (1..parts.len()).step_by(2) {
        let Some(after) = parts.get(i + 1) else {
            continue;
        };
        let Some(rest) = after.trim_start().strip_prefix(':') else {
            continue;
        };
        let num: String = rest
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
            .collect();
        if let Ok(v) = num.parse::<f64>() {
            out.insert(parts[i].to_owned(), v);
        }
    }
    out
}

/// Compares current against baseline over [`GATES`]; returns the number
/// of metrics regressed beyond `tolerance`.
fn compare(
    current: &BTreeMap<String, f64>,
    baseline: &BTreeMap<String, f64>,
    tolerance: f64,
) -> usize {
    let mut regressions = 0;
    println!(
        "{:<42} {:>14} {:>14} {:>8}  verdict",
        "metric", "baseline", "current", "delta"
    );
    for &(key, higher_is_better) in GATES {
        let (Some(&base), Some(&cur)) = (baseline.get(key), current.get(key)) else {
            println!("{key:<42} {:>14} {:>14} {:>8}  skipped (missing)", "-", "-", "-");
            continue;
        };
        let delta = if base == 0.0 { 0.0 } else { cur / base - 1.0 };
        let regressed = if higher_is_better {
            cur < base * (1.0 - tolerance)
        } else {
            cur > base * (1.0 + tolerance)
        };
        if regressed {
            regressions += 1;
        }
        println!(
            "{key:<42} {base:>14.3} {cur:>14.3} {:>+7.1}%  {}",
            delta * 100.0,
            if regressed { "REGRESSED" } else { "ok" }
        );
    }
    regressions
}

struct Args {
    out: String,
    compare: Option<String>,
    tolerance: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut out = "BENCH_snapshot.json".to_owned();
    let mut compare = None;
    let mut tolerance = 0.15;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out = it.next().ok_or("--out requires a path")?,
            "--compare" => compare = Some(it.next().ok_or("--compare requires a path")?),
            "--tolerance" => {
                tolerance = it
                    .next()
                    .ok_or("--tolerance requires a fraction")?
                    .parse()
                    .map_err(|_| "bad --tolerance value".to_owned())?;
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Args {
        out,
        compare,
        tolerance,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("bench_snapshot: {msg}");
            eprintln!("usage: bench_snapshot [--out PATH] [--compare BASELINE] [--tolerance FRAC]");
            return ExitCode::from(1);
        }
    };

    // The analyze workload runs first, before the heavy simulation
    // workloads: its samples are tens of microseconds and measurably
    // degrade on the heap and cache state those leave behind.
    // Incremental-analysis workload: cold is a from-scratch run of all
    // seven queries on the steer-by-wire study; warm re-analyses after a
    // single-task WCET decrease against the cold database — only the
    // dirtied cone runs (schedulability transfers by refinement reuse,
    // everything else is green).
    let steer_db = logrel_query::analyze_source(
        STEER_SRC,
        "steer_by_wire.htl",
        None,
        &mut NoopSink,
    )
    .db
    .expect("steer-by-wire parses");
    let steer_edited = STEER_SRC.replace("wcet torque on ecu_a 5;", "wcet torque on ecu_a 4;");
    assert_ne!(steer_edited, STEER_SRC, "edit site must exist in the fixture");
    // Cold and warm samples are interleaved within each rep so that CPU
    // frequency drift and scheduler noise (this is a shared machine) bias
    // both sides of the speedup ratio alike. The throughput numbers use
    // the per-side minimum (the same noise-robust estimator as
    // `best_secs`); the speedup uses the *median of per-rep paired
    // ratios*, because pairing cancels machine-wide drift that
    // independent minima (possibly from different reps) do not.
    // Many more reps than `REPS`: shared-VM throughput shifts on a
    // seconds scale, and a run must span several such states for its
    // median to converge on the long-run ratio (24 reps = ~0.2 s was
    // observably run-to-run unstable; 128 reps = ~1 s is not).
    const ANALYZE_REPS: usize = 128;
    let (mut analyze_cold_secs, mut analyze_warm_secs) = (f64::MAX, f64::MAX);
    let mut analyze_ratios = [0.0f64; ANALYZE_REPS];
    for ratio in &mut analyze_ratios {
        let start = Instant::now();
        for _ in 0..ANALYZE_COLD_BATCH {
            std::hint::black_box(logrel_query::analyze_source(
                STEER_SRC,
                "steer_by_wire.htl",
                None,
                &mut NoopSink,
            ));
        }
        let cold = start.elapsed().as_secs_f64() / ANALYZE_COLD_BATCH as f64;
        analyze_cold_secs = analyze_cold_secs.min(cold);
        let start = Instant::now();
        for _ in 0..ANALYZE_WARM_BATCH {
            std::hint::black_box(logrel_query::analyze_source(
                &steer_edited,
                "steer_by_wire.htl",
                Some(&steer_db),
                &mut NoopSink,
            ));
        }
        let warm = start.elapsed().as_secs_f64() / ANALYZE_WARM_BATCH as f64;
        analyze_warm_secs = analyze_warm_secs.min(warm);
        *ratio = cold / warm;
    }
    analyze_ratios.sort_by(f64::total_cmp);
    let analyze_speedup =
        (analyze_ratios[ANALYZE_REPS / 2 - 1] + analyze_ratios[ANALYZE_REPS / 2]) / 2.0;

    // Campaign-service workload: jobs/sec through `logrel_serve::Engine`
    // with a deliberately tiny campaign (one replication x 20 rounds) on
    // a 16-task generated spec, so the job cost is dominated by the
    // front half — analysis, elaboration, round-program compilation,
    // SRGs. Cold clears the compilation cache before each batch of
    // distinct specs; warm resubmits the same batch and must hit the
    // cache on every job. Same pairing discipline as the analyze
    // workload: per-rep cold/warm ratios, median speedup.
    const SERVE_REPS: usize = 16;
    const SERVE_SPECS: usize = 4;
    let serve_engine = logrel_serve::Engine::new(logrel_serve::ServeConfig {
        workers: 2,
        queue_capacity: SERVE_SPECS + 1,
        recorder_capacity: 0,
        cache_path: None,
    });
    let serve_jobs: Vec<logrel_serve::Job> = (0..SERVE_SPECS)
        .map(|i| logrel_serve::Job {
            // Distinct program names give distinct content hashes, so a
            // cold batch really compiles SERVE_SPECS times.
            spec_source: logrel_bench::big_htl_source(16)
                .replace("program big", &format!("program big_{i}")),
            spec_label: format!("big_{i}.htl"),
            scenario_source: "scn v2\n".to_owned(),
            rounds: 20,
            replications: 1,
            seed: 3,
            lanes: logrel_sim::LaneMode::Auto,
        })
        .collect();
    let (mut serve_cold_secs, mut serve_warm_secs) = (f64::MAX, f64::MAX);
    let mut serve_ratios = [0.0f64; SERVE_REPS];
    for ratio in &mut serve_ratios {
        serve_engine.clear_cache();
        let start = Instant::now();
        for job in &serve_jobs {
            std::hint::black_box(serve_engine.submit(job).expect("bench job succeeds"));
        }
        let cold = start.elapsed().as_secs_f64() / SERVE_SPECS as f64;
        serve_cold_secs = serve_cold_secs.min(cold);
        let start = Instant::now();
        for job in &serve_jobs {
            let out = serve_engine.submit(job).expect("bench job succeeds");
            assert!(out.cache_hit, "warm batch must not recompile");
            std::hint::black_box(out);
        }
        let warm = start.elapsed().as_secs_f64() / SERVE_SPECS as f64;
        serve_warm_secs = serve_warm_secs.min(warm);
        *ratio = cold / warm;
    }
    serve_engine.shutdown();
    serve_ratios.sort_by(f64::total_cmp);
    let serve_speedup =
        (serve_ratios[SERVE_REPS / 2 - 1] + serve_ratios[SERVE_REPS / 2]) / 2.0;

    let sys = ThreeTankSystem::with_options(Scenario::Baseline, 0.99, None).expect("valid");
    let imp = TimeDependentImplementation::from(sys.imp.clone());
    let sim = Simulation::new(&sys.spec, &sys.arch, &imp);

    // One untimed run to count the recorded communicator-update events.
    let out = run_sim(&sim, &sys.arch, &Mode::Kernel);
    let events: usize = sys
        .spec
        .communicator_ids()
        .map(|c| out.trace.update_count(c))
        .sum();

    let kernel_secs = best_secs(|| {
        std::hint::black_box(run_sim(&sim, &sys.arch, &Mode::Kernel));
    });
    let observed_noop_secs = best_secs(|| {
        std::hint::black_box(run_sim(&sim, &sys.arch, &Mode::ObservedNoop));
    });
    let observed_registry_secs = best_secs(|| {
        std::hint::black_box(run_sim(&sim, &sys.arch, &Mode::ObservedRegistry));
    });
    let reference_secs = best_secs(|| {
        std::hint::black_box(run_sim(&sim, &sys.arch, &Mode::Reference));
    });
    // The bit-sliced kernel runs 64 independent replications per sample;
    // lane setup (64 RNGs and injectors) is noise against 10k rounds.
    const LANES: usize = 64;
    let bitsliced_secs = best_secs(|| {
        let mut behaviors = BehaviorMap::new();
        let mut lanes: Vec<_> = (0..LANES)
            .map(|i| {
                LaneContext::plain(
                    derive_seed(5, i as u64),
                    ProbabilisticFaults::from_architecture(&sys.arch),
                    ConstantEnvironment::new(Value::Float(0.2)),
                )
            })
            .collect();
        std::hint::black_box(sim.run_bitsliced(&mut behaviors, &mut lanes, SIM_ROUNDS));
    });
    let bitsliced_rps = SIM_ROUNDS as f64 * LANES as f64 / bitsliced_secs;

    // Scenario-layer overhead: the same kernel workload through a plain
    // timeline (crash/rejoin, a flaky window, a GE burst — all draws the
    // pre-correlation injector made) versus that timeline plus every
    // correlated event kind active across the horizon. The ratio is the
    // marginal cost of the correlated ecology, gated at 1.2x.
    const HORIZON: u64 = SIM_ROUNDS * 500;
    let plain_events = vec![
        ScenarioEvent::Crash {
            host: sys.ids.h1,
            at: Tick::new(HORIZON / 5),
        },
        ScenarioEvent::Rejoin {
            host: sys.ids.h1,
            at: Tick::new(HORIZON / 5 + 50_000),
        },
        ScenarioEvent::Flaky {
            host: sys.ids.h2,
            from: Tick::new(0),
            until: Tick::new(HORIZON),
            up: 0.99,
        },
        ScenarioEvent::Burst {
            from: Tick::new(0),
            until: Tick::new(HORIZON),
            p_enter: 0.01,
            p_exit: 0.2,
            loss: 0.5,
        },
    ];
    let mut correlated_events = plain_events.clone();
    correlated_events.extend([
        ScenarioEvent::CommonCause {
            hosts: HostSet::from_hosts([sys.ids.h1, sys.ids.h3]).expect("valid group"),
            from: Tick::new(0),
            until: Tick::new(HORIZON),
            p: 0.01,
        },
        ScenarioEvent::Partition {
            hosts: HostSet::from_hosts([sys.ids.h2]).expect("valid group"),
            from: Tick::new(2 * HORIZON / 5),
            until: Tick::new(3 * HORIZON / 5),
        },
        ScenarioEvent::Wearout {
            host: sys.ids.h3,
            from: Tick::new(0),
            until: Tick::new(HORIZON),
            shape: 2.0,
            scale: (4 * HORIZON / 5) as f64,
        },
        ScenarioEvent::Adversary {
            from: Tick::new(0),
            until: Tick::new(HORIZON),
            hold: 5,
        },
    ]);
    let scenario_plain = FaultScenario::from_events(plain_events).expect("valid timeline");
    let scenario_correlated =
        FaultScenario::from_events(correlated_events).expect("valid timeline");
    let one_scenario_run = |scn: &FaultScenario| -> f64 {
        let comms = sys.spec.communicator_count();
        let mut behaviors = BehaviorMap::new();
        let mut env =
            ScenarioEnvironment::new(ConstantEnvironment::new(Value::Float(0.2)), scn, comms);
        let mut inj = ScenarioInjector::new(
            ProbabilisticFaults::from_architecture(&sys.arch),
            scn,
            sys.arch.host_count(),
            comms,
        )
        .expect("valid scenario");
        let start = Instant::now();
        std::hint::black_box(sim.run(
            &mut behaviors,
            &mut env,
            &mut inj,
            &SimConfig {
                rounds: SIM_ROUNDS,
                seed: 5,
            },
        ));
        start.elapsed().as_secs_f64()
    };
    // Plain and correlated samples are interleaved within each rep —
    // alternating which side runs first so intra-pair clock drift cancels
    // in expectation — and the overhead is the median of the per-rep
    // paired ratios, the same drift-cancelling estimator as the analyze
    // speedup. The throughput numbers use the per-side minimum.
    const SCN_REPS: usize = 15;
    let (mut scenario_plain_secs, mut scenario_correlated_secs) = (f64::MAX, f64::MAX);
    let mut scenario_ratios = [0.0f64; SCN_REPS];
    for (rep, ratio) in scenario_ratios.iter_mut().enumerate() {
        let (plain, correlated) = if rep % 2 == 0 {
            let p = one_scenario_run(&scenario_plain);
            (p, one_scenario_run(&scenario_correlated))
        } else {
            let c = one_scenario_run(&scenario_correlated);
            (one_scenario_run(&scenario_plain), c)
        };
        scenario_plain_secs = scenario_plain_secs.min(plain);
        scenario_correlated_secs = scenario_correlated_secs.min(correlated);
        *ratio = correlated / plain;
    }
    scenario_ratios.sort_by(f64::total_cmp);
    let scenario_overhead = scenario_ratios[SCN_REPS / 2];

    let srg_secs = best_secs(|| {
        std::hint::black_box(compute_srgs(&sys.spec, &sys.arch, &sys.imp).expect("memory-free"));
    });

    // Full certification (interval SRGs + symbolic polynomials + margins)
    // is ~100x the plain SRG fixpoint; a small inner batch still keeps
    // each timed sample above timer granularity.
    const CERTIFY_BATCH: usize = 8;
    let certify_secs = best_secs(|| {
        for _ in 0..CERTIFY_BATCH {
            std::hint::black_box(
                logrel_reliability::certify(&sys.spec, &sys.arch, &sys.imp, None)
                    .expect("memory-free"),
            );
        }
    }) / CERTIFY_BATCH as f64;

    let (spec, arch, base) = synthesis_system();
    let opts = SynthesisOptions::default();
    let greedy_secs = best_secs(|| {
        for _ in 0..SYNTH_BATCH {
            std::hint::black_box(
                synthesize(&spec, &arch, &base, &opts, |_| true).expect("solvable"),
            );
        }
    }) / SYNTH_BATCH as f64;
    let exhaustive_secs = best_secs(|| {
        for _ in 0..SYNTH_BATCH {
            std::hint::black_box(
                exhaustive_synthesize(&spec, &arch, &base, &opts, |_| true).expect("solvable"),
            );
        }
    }) / SYNTH_BATCH as f64;

    let json = format!(
        "{{\n  \
         \"workload\": \"3TS baseline, reliability 0.99, {SIM_ROUNDS} rounds, seed 5\",\n  \
         \"simulator\": {{\n    \
         \"rounds\": {SIM_ROUNDS},\n    \
         \"events_per_run\": {events},\n    \
         \"kernel_rounds_per_sec\": {:.0},\n    \
         \"kernel_events_per_sec\": {:.0},\n    \
         \"kernel_observed_noop_rounds_per_sec\": {:.0},\n    \
         \"kernel_observed_registry_rounds_per_sec\": {:.0},\n    \
         \"kernel_bitsliced_rounds_per_sec\": {:.0},\n    \
         \"kernel_scenario_plain_rounds_per_sec\": {:.0},\n    \
         \"kernel_scenario_correlated_rounds_per_sec\": {:.0},\n    \
         \"scenario_overhead\": {:.3},\n    \
         \"reference_rounds_per_sec\": {:.0},\n    \
         \"reference_events_per_sec\": {:.0},\n    \
         \"kernel_speedup_over_reference\": {:.2},\n    \
         \"bitsliced_speedup_over_kernel\": {:.2}\n  }},\n  \
         \"srg\": {{\n    \
         \"compute_srgs_3ts_ns\": {:.0},\n    \
         \"certify_specs_per_sec\": {:.1}\n  }},\n  \
         \"query\": {{\n    \
         \"analyze_workload\": \"steer-by-wire, warm = single-task WCET decrease vs cold db\",\n    \
         \"analyze_cold_specs_per_sec\": {:.1},\n    \
         \"analyze_warm_specs_per_sec\": {:.1},\n    \
         \"analyze_warm_speedup\": {:.2}\n  }},\n  \
         \"serve\": {{\n    \
         \"serve_workload\": \"16-task spec x4 distinct hashes, 1x20-round campaigns, cold = cleared cache\",\n    \
         \"serve_cold_jobs_per_sec\": {:.1},\n    \
         \"serve_jobs_per_sec\": {:.1},\n    \
         \"serve_warm_speedup\": {:.2}\n  }},\n  \
         \"synthesis\": {{\n    \
         \"greedy_ms\": {:.4},\n    \
         \"exhaustive_ms\": {:.4}\n  }}\n}}\n",
        SIM_ROUNDS as f64 / kernel_secs,
        events as f64 / kernel_secs,
        SIM_ROUNDS as f64 / observed_noop_secs,
        SIM_ROUNDS as f64 / observed_registry_secs,
        bitsliced_rps,
        SIM_ROUNDS as f64 / scenario_plain_secs,
        SIM_ROUNDS as f64 / scenario_correlated_secs,
        scenario_overhead,
        SIM_ROUNDS as f64 / reference_secs,
        events as f64 / reference_secs,
        reference_secs / kernel_secs,
        bitsliced_rps * kernel_secs / SIM_ROUNDS as f64,
        srg_secs * 1e9,
        1.0 / certify_secs,
        1.0 / analyze_cold_secs,
        1.0 / analyze_warm_secs,
        analyze_speedup,
        1.0 / serve_cold_secs,
        1.0 / serve_warm_secs,
        serve_speedup,
        greedy_secs * 1e3,
        exhaustive_secs * 1e3,
    );
    if let Err(e) = std::fs::write(&args.out, &json) {
        eprintln!("bench_snapshot: cannot write `{}`: {e}", args.out);
        return ExitCode::from(1);
    }
    print!("{json}");
    println!("wrote {}", args.out);

    if let Some(baseline_path) = &args.compare {
        let baseline = match std::fs::read_to_string(baseline_path) {
            Ok(text) => scan_numbers(&text),
            Err(e) => {
                eprintln!("bench_snapshot: cannot read `{baseline_path}`: {e}");
                return ExitCode::from(1);
            }
        };
        println!("\ncomparing against {baseline_path} (tolerance {:.0}%):", args.tolerance * 100.0);
        let current = scan_numbers(&json);
        let mut regressions = compare(&current, &baseline, args.tolerance);
        for &(label, num, den, floor) in RATIO_FLOORS {
            let Some(&n) = current.get(num) else {
                continue;
            };
            let d = if den.is_empty() {
                1.0
            } else if let Some(&d) = current.get(den) {
                d
            } else {
                continue;
            };
            let ratio = n / d;
            let ok = ratio >= floor;
            println!(
                "{label:<42} {:>14} {ratio:>14.2} {floor:>7.2}x  {}",
                "-",
                if ok { "ok" } else { "BELOW FLOOR" }
            );
            if !ok {
                regressions += 1;
            }
        }
        for &(label, key, ceil) in RATIO_CEILS {
            let Some(&v) = current.get(key) else {
                continue;
            };
            let ok = v <= ceil;
            println!(
                "{label:<42} {:>14} {v:>14.2} {ceil:>6.2}x≥  {}",
                "-",
                if ok { "ok" } else { "ABOVE CEILING" }
            );
            if !ok {
                regressions += 1;
            }
        }
        if regressions > 0 {
            eprintln!("bench_snapshot: {regressions} metric(s) regressed beyond tolerance");
            return ExitCode::from(1);
        }
        println!("no regressions beyond tolerance");
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scanner_extracts_numbers_and_skips_strings() {
        let doc = "{\n  \"workload\": \"3TS, 10000 rounds\",\n  \"sim\": {\n    \
                   \"kernel_rounds_per_sec\": 1267888,\n    \"speedup\": 2.08\n  }\n}\n";
        let nums = scan_numbers(doc);
        assert_eq!(nums.get("kernel_rounds_per_sec"), Some(&1267888.0));
        assert_eq!(nums.get("speedup"), Some(&2.08));
        assert!(!nums.contains_key("workload"));
        assert!(!nums.contains_key("sim"));
    }

    #[test]
    fn compare_flags_only_regressions_beyond_tolerance() {
        let base: BTreeMap<String, f64> = [
            ("kernel_rounds_per_sec".to_owned(), 1000.0),
            ("greedy_ms".to_owned(), 1.0),
        ]
        .into();
        // 10% slower kernel, 10% slower synthesis: inside a 15% tolerance.
        let ok: BTreeMap<String, f64> = [
            ("kernel_rounds_per_sec".to_owned(), 900.0),
            ("greedy_ms".to_owned(), 1.1),
        ]
        .into();
        assert_eq!(compare(&ok, &base, 0.15), 0);
        // 30% slower kernel and doubled synthesis time: both regressed.
        let bad: BTreeMap<String, f64> = [
            ("kernel_rounds_per_sec".to_owned(), 700.0),
            ("greedy_ms".to_owned(), 2.0),
        ]
        .into();
        assert_eq!(compare(&bad, &base, 0.15), 2);
    }
}
