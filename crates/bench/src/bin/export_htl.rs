//! Exports the three-tank program as HTL-style source text, for use with
//! the `htlc` CLI and as the repository's golden file.
//!
//! Usage: `cargo run -p logrel-bench --bin export_htl -- [baseline|scenario1|scenario2] [lrc]`

use logrel_threetank::htl::three_tank_source;
use logrel_threetank::Scenario;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scenario = match args.first().map(String::as_str) {
        None | Some("baseline") => Scenario::Baseline,
        Some("scenario1") => Scenario::ReplicatedControllers,
        Some("scenario2") => Scenario::ReplicatedSensors,
        Some(other) => {
            eprintln!("unknown scenario `{other}` (baseline|scenario1|scenario2)");
            std::process::exit(1);
        }
    };
    let lrc = args.get(1).map(|s| {
        s.parse::<f64>().unwrap_or_else(|_| {
            eprintln!("bad LRC `{s}`");
            std::process::exit(1);
        })
    });
    print!("{}", three_tank_source(scenario, 0.999, lrc));
}
