//! E9 — the §3 "General implementation" example: tasks `t1`, `t2` write
//! communicators with LRC 0.9; hosts `h1`, `h2` have reliabilities 0.95
//! and 0.85. Either static mapping violates one LRC; alternating the tasks
//! between the hosts round by round is reliable (long-run average 0.9).
//!
//! Run with: `cargo run -p logrel-bench --bin exp_time_dependent`

use logrel_core::prelude::*;
use logrel_reliability::{check, check_time_dependent};
use logrel_sim::{BehaviorMap, ConstantEnvironment, ProbabilisticFaults, SimConfig, Simulation};

fn main() {
    let mut sb = Specification::builder();
    let s = sb
        .communicator(
            CommunicatorDecl::new("s", ValueType::Float, 10)
                .expect("valid")
                .from_sensor(),
        )
        .expect("unique");
    let lrc = Reliability::new(0.9).expect("valid");
    let c1 = sb
        .communicator(
            CommunicatorDecl::new("c1", ValueType::Float, 10)
                .expect("valid")
                .with_lrc(lrc),
        )
        .expect("unique");
    let c2 = sb
        .communicator(
            CommunicatorDecl::new("c2", ValueType::Float, 10)
                .expect("valid")
                .with_lrc(lrc),
        )
        .expect("unique");
    let t1 = sb
        .task(TaskDecl::new("t1").reads(s, 0).writes(c1, 1))
        .expect("valid");
    let t2 = sb
        .task(TaskDecl::new("t2").reads(s, 0).writes(c2, 1))
        .expect("valid");
    let spec = sb.build().expect("well-formed");

    let mut ab = Architecture::builder();
    let h1 = ab
        .host(HostDecl::new("h1", Reliability::new(0.95).expect("valid")))
        .expect("unique");
    let h2 = ab
        .host(HostDecl::new("h2", Reliability::new(0.85).expect("valid")))
        .expect("unique");
    let sen = ab
        .sensor(SensorDecl::new("sen", Reliability::ONE))
        .expect("unique");
    for t in [t1, t2] {
        ab.wcet_all(t, 1).expect("hosts");
        ab.wctt_all(t, 1).expect("hosts");
    }
    let arch = ab.build();

    let phase_a = Implementation::builder()
        .assign(t1, [h1])
        .assign(t2, [h2])
        .bind_sensor(s, sen)
        .build(&spec, &arch)
        .expect("valid");
    let phase_b = phase_a.with_assignment(t1, [h2]).with_assignment(t2, [h1]);

    println!("LRC(c1) = LRC(c2) = 0.9; hrel(h1) = 0.95, hrel(h2) = 0.85\n");
    for (label, imp) in [("t1→h1, t2→h2", &phase_a), ("t1→h2, t2→h1", &phase_b)] {
        let verdict = check(&spec, &arch, imp).expect("analyzable");
        println!("static mapping {label}: {verdict}");
    }

    let td = TimeDependentImplementation::new(vec![phase_a, phase_b]).expect("nonempty");
    let verdict = check_time_dependent(&spec, &arch, &td).expect("analyzable");
    println!(
        "alternating mapping: {verdict} (long-run λ(c1) = {}, λ(c2) = {})",
        verdict.long_run_srg(c1),
        verdict.long_run_srg(c2)
    );
    assert!(verdict.is_reliable());

    // Confirm by simulation.
    let sim = Simulation::new(&spec, &arch, &td);
    let mut inj = ProbabilisticFaults::from_architecture(&arch);
    let out = sim.run(
        &mut BehaviorMap::new(),
        &mut ConstantEnvironment::new(Value::Float(1.0)),
        &mut inj,
        &SimConfig {
            rounds: 100_000,
            seed: 21,
        },
    );
    println!("\nsimulated long-run averages over 100000 rounds (seed 21):");
    for (name, c) in [("c1", c1), ("c2", c2)] {
        let bits: Vec<bool> = out.trace.abstraction(c).into_iter().skip(1).collect();
        let mean = bits.iter().filter(|&&b| b).count() as f64 / bits.len() as f64;
        println!("  {name}: {mean:.5}");
        assert!((mean - 0.9).abs() < 0.005, "{name} mean {mean}");
    }
    println!("\n✓ the time-dependent implementation meets both LRCs in the long run");
}
