//! Extension experiment — crash (permanent) faults: beyond the paper's
//! transient model, hosts may fail and stay silent. Long-run averages are
//! then degenerate (eventually every replica is dead); the meaningful
//! quantity is mission-horizon delivery. This experiment compares the
//! closed-form mission analysis of `logrel-reliability::mission` against
//! the crash-fault simulator for replication degrees 1–3.
//!
//! The trials run as a deterministic parallel Monte-Carlo batch
//! (`logrel_sim::montecarlo`): per-trial seeds are derived from the base
//! seed, so the reported numbers are independent of the worker count.
//!
//! Run with: `cargo run -p logrel-bench --bin exp_crash`

use logrel_core::prelude::*;
use logrel_reliability::mission::{expected_delivered_fraction, replication_for_mission};
use logrel_sim::{
    montecarlo, BatchConfig, BehaviorMap, ConstantEnvironment, PermanentFaults,
    ReplicationContext, Simulation,
};

const HAZARD: f64 = 0.002; // per-round crash probability per host
const HORIZON: u64 = 1000; // mission length in rounds
const TRIALS: u64 = 200;

/// Builds a single-task system replicated on `k` hosts.
fn build(k: usize) -> (Specification, Architecture, TimeDependentImplementation) {
    let mut sb = Specification::builder();
    let s = sb
        .communicator(
            CommunicatorDecl::new("s", ValueType::Float, 10)
                .expect("valid")
                .from_sensor(),
        )
        .expect("unique");
    let u = sb
        .communicator(CommunicatorDecl::new("u", ValueType::Float, 10).expect("valid"))
        .expect("unique");
    let t = sb
        .task(TaskDecl::new("ctrl").reads(s, 0).writes(u, 1))
        .expect("valid");
    let spec = sb.build().expect("well-formed");
    let mut ab = Architecture::builder();
    let hosts: Vec<HostId> = (0..k)
        .map(|i| {
            ab.host(HostDecl::new(
                format!("h{i}"),
                // The declared (transient) reliability is irrelevant here;
                // crash hazards are injected separately.
                Reliability::new(1.0 - HAZARD).expect("valid"),
            ))
            .expect("unique")
        })
        .collect();
    let sen = ab
        .sensor(SensorDecl::new("sen", Reliability::ONE))
        .expect("unique");
    ab.wcet_all(t, 1).expect("hosts");
    ab.wctt_all(t, 1).expect("hosts");
    let arch = ab.build();
    let imp = Implementation::builder()
        .assign(t, hosts)
        .bind_sensor(s, sen)
        .build(&spec, &arch)
        .expect("valid");
    (spec, arch, imp.into())
}

fn main() {
    println!(
        "crash faults: per-round hazard {HAZARD}, mission {HORIZON} rounds, {TRIALS} trials\n"
    );
    println!(
        "{:>9} {:>18} {:>18} {:>10}",
        "replicas", "analytic fraction", "simulated", "|diff|"
    );
    for k in 1..=3usize {
        let (spec, arch, imp) = build(k);
        let u = spec.find_communicator("u").expect("declared");
        let analytic = expected_delivered_fraction(k, HAZARD, HORIZON);
        let sim = Simulation::new(&spec, &arch, &imp);
        let config = BatchConfig {
            replications: TRIALS,
            rounds: HORIZON,
            base_seed: 1000,
            threads: 0,
        };
        let fractions = montecarlo::run_replications(
            &sim,
            &config,
            |_trial| ReplicationContext {
                behaviors: BehaviorMap::new(),
                environment: Box::new(ConstantEnvironment::new(Value::Float(1.0))),
                injector: Box::new(PermanentFaults::new(vec![HAZARD; k])),
            },
            |_trial, out| {
                // Skip the init update at t=0 of round 0.
                let bits: Vec<bool> = out.trace.abstraction(u).into_iter().skip(1).collect();
                bits.iter().filter(|&&b| b).count() as f64 / bits.len() as f64
            },
        );
        let simulated = montecarlo::mean(&fractions);
        println!(
            "{:>9} {:>18.5} {:>18.5} {:>10.5}",
            k,
            analytic,
            simulated,
            (analytic - simulated).abs()
        );
        assert!(
            (analytic - simulated).abs() < 0.02,
            "mission analysis must track the crash simulator (k = {k})"
        );
    }

    let needed = replication_for_mission(HAZARD, HORIZON, 0.95, 8);
    println!(
        "\nreplication degree needed for 95% expected delivery over the mission: {}",
        needed.map_or("unachievable (≤8)".to_owned(), |k| k.to_string())
    );
    println!("\n✓ closed-form mission reliability matches the crash-fault simulation");
}
