//! Extension experiment — non-perfect atomic broadcast: the paper notes
//! that "less-than-perfect reliable broadcast can be handled readily as
//! long as the broadcast is atomic". We fold a broadcast reliability `brel`
//! into every replication (`hrel · brel`) and sweep it, comparing the
//! analytic SRG of `u1` against fault-injected simulation.
//!
//! Each sweep point runs as a deterministic parallel Monte-Carlo batch
//! (`logrel_sim::montecarlo`) of four independently seeded replications
//! whose means are pooled — same total sample count as the original
//! single run, identical at any worker count.
//!
//! Run with: `cargo run -p logrel-bench --bin exp_broadcast`

use logrel_core::{
    Architecture, HostDecl, Reliability, SensorDecl, TimeDependentImplementation, Value,
};
use logrel_reliability::compute_srgs;
use logrel_sim::{
    montecarlo, BatchConfig, BehaviorMap, ConstantEnvironment, ProbabilisticFaults,
    ReplicationContext, Simulation,
};
use logrel_threetank::{Scenario, ThreeTankSystem};

/// Rebuilds the 3TS architecture with an explicit broadcast reliability.
fn arch_with_broadcast(sys: &ThreeTankSystem, brel: f64) -> Architecture {
    let mut ab = Architecture::builder();
    for h in sys.arch.host_ids() {
        ab.host(HostDecl::new(
            sys.arch.host(h).name(),
            sys.arch.host(h).reliability(),
        ))
        .expect("unique");
    }
    for s in sys.arch.sensor_ids() {
        ab.sensor(SensorDecl::new(
            sys.arch.sensor(s).name(),
            sys.arch.sensor(s).reliability(),
        ))
        .expect("unique");
    }
    for t in sys.spec.task_ids() {
        for h in sys.arch.host_ids() {
            ab.wcet(t, h, sys.arch.wcet(t, h).expect("declared"))
                .expect("valid");
            ab.wctt(t, h, sys.arch.wctt(t, h).expect("declared"))
                .expect("valid");
        }
    }
    ab.broadcast_reliability(Reliability::new(brel).expect("valid"));
    ab.build()
}

fn main() {
    // Scenario 1 at reduced host reliability so effects are visible.
    let sys = ThreeTankSystem::with_options(Scenario::ReplicatedControllers, 0.95, None)
        .expect("valid constants");
    println!(
        "3TS scenario 1 (controllers replicated), host/sensor reliability 0.95,\n\
         sweeping atomic-broadcast reliability\n"
    );
    println!(
        "{:>10} {:>14} {:>14} {:>10}",
        "brel", "analytic λ(u1)", "simulated", "|diff|"
    );
    for brel in [1.0, 0.999, 0.99, 0.95, 0.9] {
        let arch = arch_with_broadcast(&sys, brel);
        let analytic = compute_srgs(&sys.spec, &arch, &sys.imp)
            .expect("memory-free")
            .communicator(sys.ids.u1)
            .get();
        let td = TimeDependentImplementation::from(sys.imp.clone());
        let sim = Simulation::new(&sys.spec, &arch, &td);
        let config = BatchConfig {
            replications: 4,
            rounds: 7_500,
            base_seed: 9,
            threads: 0,
        };
        let means = montecarlo::run_replications(
            &sim,
            &config,
            |_rep| ReplicationContext {
                behaviors: BehaviorMap::new(),
                environment: Box::new(ConstantEnvironment::new(Value::Float(0.3))),
                injector: Box::new(ProbabilisticFaults::from_architecture(&arch)),
            },
            |_rep, out| {
                let bits: Vec<bool> = out
                    .trace
                    .abstraction(sys.ids.u1)
                    .into_iter()
                    .skip(5)
                    .collect();
                bits.iter().filter(|&&b| b).count() as f64 / bits.len() as f64
            },
        );
        let mean = montecarlo::mean(&means);
        println!(
            "{:>10} {:>14.6} {:>14.6} {:>10.6}",
            brel,
            analytic,
            mean,
            (mean - analytic).abs()
        );
        assert!(
            (mean - analytic).abs() < 0.012,
            "simulation must track the analysis at brel={brel}"
        );
    }
    println!("\n✓ the broadcast-derated SRGs match fault-injected simulation");
}
