//! E7 — empirical validation of Proposition 1: under per-invocation fault
//! injection, the running average of each communicator's reliability
//! abstraction converges (SLLN) to the analytic SRG, and LRC verdicts
//! agree between analysis and simulation.
//!
//! Run with: `cargo run -p logrel-bench --bin exp_slln`

use logrel_core::{TimeDependentImplementation, Value};
use logrel_reliability::{compute_srgs, hoeffding_epsilon, running_average};
use logrel_sim::{BehaviorMap, ConstantEnvironment, ProbabilisticFaults, SimConfig, Simulation};
use logrel_threetank::{Scenario, ThreeTankSystem};

fn main() {
    let reliability = 0.9; // lowered so faults are frequent
    let rounds: u64 = 50_000;
    let sys = ThreeTankSystem::with_options(Scenario::Baseline, reliability, None)
        .expect("valid constants");
    let analytic = compute_srgs(&sys.spec, &sys.arch, &sys.imp).expect("memory-free");
    let imp = TimeDependentImplementation::from(sys.imp.clone());
    let sim = Simulation::new(&sys.spec, &sys.arch, &imp);
    let mut inj = ProbabilisticFaults::from_architecture(&sys.arch);
    println!("3TS baseline at host/sensor reliability {reliability}, {rounds} rounds, seed 7\n");
    let out = sim.run(
        &mut BehaviorMap::new(),
        &mut ConstantEnvironment::new(Value::Float(0.3)),
        &mut inj,
        &SimConfig { rounds, seed: 7 },
    );

    println!(
        "{:<6} {:>12} {:>12} {:>10}",
        "comm", "empirical", "analytic λ", "|diff|"
    );
    for c in sys.spec.communicator_ids() {
        let bits: Vec<bool> = out.trace.abstraction(c).into_iter().skip(5).collect();
        let mean = bits.iter().filter(|&&b| b).count() as f64 / bits.len() as f64;
        let lambda = analytic.communicator(c).get();
        println!(
            "{:<6} {:>12.5} {:>12.5} {:>10.5}",
            sys.spec.communicator(c).name(),
            mean,
            lambda,
            (mean - lambda).abs()
        );
    }

    println!("\nconvergence of u1's running average (Fig.-style series):");
    let bits = out.trace.abstraction(sys.ids.u1);
    let series = running_average(&bits);
    let lambda_u = analytic.communicator(sys.ids.u1).get();
    println!("{:>9} {:>10} {:>10} {:>12}", "n", "avg", "λ(u1)", "±ε(99%)");
    let mut n = 10usize;
    while n <= series.len() {
        println!(
            "{:>9} {:>10.5} {:>10.5} {:>12.5}",
            n,
            series[n - 1],
            lambda_u,
            hoeffding_epsilon(n, 0.99)
        );
        n *= 10;
    }
    let final_avg = *series.last().expect("nonempty");
    let eps = hoeffding_epsilon(series.len(), 0.99);
    assert!(
        (final_avg - lambda_u).abs() < eps + 0.01,
        "SLLN: final average {final_avg} within ε of λ {lambda_u}"
    );
    println!("\n✓ the empirical limit average converges to the analytic SRG");
}
