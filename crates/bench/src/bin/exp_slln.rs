//! E7 — empirical validation of Proposition 1: under per-invocation fault
//! injection, the running average of each communicator's reliability
//! abstraction converges (SLLN) to the analytic SRG, and LRC verdicts
//! agree between analysis and simulation.
//!
//! The replications run as a deterministic parallel Monte-Carlo batch
//! (`logrel_sim::montecarlo`): four independently seeded 50 000-round
//! runs execute concurrently and merge in replication order, so the
//! numbers below are independent of the worker count. Replication 0
//! doubles as the convergence-series exhibit.
//!
//! Run with: `cargo run -p logrel-bench --bin exp_slln`

use logrel_core::{TimeDependentImplementation, Value};
use logrel_reliability::{compute_srgs, hoeffding_epsilon, running_average};
use logrel_sim::{
    montecarlo, BatchConfig, BehaviorMap, ConstantEnvironment, ProbabilisticFaults,
    ReplicationContext, Simulation,
};
use logrel_threetank::{Scenario, ThreeTankSystem};

fn main() {
    let reliability = 0.9; // lowered so faults are frequent
    let rounds: u64 = 50_000;
    let replications: u64 = 4;
    let sys = ThreeTankSystem::with_options(Scenario::Baseline, reliability, None)
        .expect("valid constants");
    let analytic = compute_srgs(&sys.spec, &sys.arch, &sys.imp).expect("memory-free");
    let imp = TimeDependentImplementation::from(sys.imp.clone());
    let sim = Simulation::new(&sys.spec, &sys.arch, &imp);
    println!(
        "3TS baseline at host/sensor reliability {reliability}, \
         {replications} × {rounds} rounds, base seed 7\n"
    );
    let config = BatchConfig {
        replications,
        rounds,
        base_seed: 7,
        threads: 0,
    };
    let outs = montecarlo::run_replications(
        &sim,
        &config,
        |_rep| ReplicationContext {
            behaviors: BehaviorMap::new(),
            environment: Box::new(ConstantEnvironment::new(Value::Float(0.3))),
            injector: Box::new(ProbabilisticFaults::from_architecture(&sys.arch)),
        },
        |_rep, out| out,
    );

    println!(
        "{:<6} {:>12} {:>12} {:>10}",
        "comm", "empirical", "analytic λ", "|diff|"
    );
    for c in sys.spec.communicator_ids() {
        let per_rep: Vec<f64> = outs
            .iter()
            .map(|out| {
                let bits: Vec<bool> = out.trace.abstraction(c).into_iter().skip(5).collect();
                bits.iter().filter(|&&b| b).count() as f64 / bits.len() as f64
            })
            .collect();
        let mean = montecarlo::mean(&per_rep);
        let lambda = analytic.communicator(c).get();
        println!(
            "{:<6} {:>12.5} {:>12.5} {:>10.5}",
            sys.spec.communicator(c).name(),
            mean,
            lambda,
            (mean - lambda).abs()
        );
    }

    println!("\nconvergence of u1's running average in replication 0 (Fig.-style series):");
    let bits = outs[0].trace.abstraction(sys.ids.u1);
    let series = running_average(&bits);
    let lambda_u = analytic.communicator(sys.ids.u1).get();
    println!("{:>9} {:>10} {:>10} {:>12}", "n", "avg", "λ(u1)", "±ε(99%)");
    let mut n = 10usize;
    while n <= series.len() {
        println!(
            "{:>9} {:>10.5} {:>10.5} {:>12.5}",
            n,
            series[n - 1],
            lambda_u,
            hoeffding_epsilon(n, 0.99)
        );
        n *= 10;
    }
    let final_avg = *series.last().expect("nonempty");
    let eps = hoeffding_epsilon(series.len(), 0.99);
    assert!(
        (final_avg - lambda_u).abs() < eps + 0.01,
        "SLLN: final average {final_avg} within ε of λ {lambda_u}"
    );
    // The cross-replication mean sharpens the estimate further.
    let pooled: Vec<f64> = outs
        .iter()
        .map(|out| {
            let bits: Vec<bool> = out
                .trace
                .abstraction(sys.ids.u1)
                .into_iter()
                .skip(5)
                .collect();
            bits.iter().filter(|&&b| b).count() as f64 / bits.len() as f64
        })
        .collect();
    assert!(
        (montecarlo::mean(&pooled) - lambda_u).abs() < eps + 0.01,
        "pooled mean must also track λ(u1)"
    );
    println!("\n✓ the empirical limit average converges to the analytic SRG");
}
