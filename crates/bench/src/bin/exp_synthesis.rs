//! Extension experiment — automatic replication synthesis: the paper's
//! scenario mappings are hand-chosen; here the greedy synthesiser (with a
//! joint schedulability feasibility veto) discovers a minimal-cost mapping
//! meeting the strict LRC, and the exhaustive search certifies minimality.
//!
//! Run with: `cargo run -p logrel-bench --bin exp_synthesis`

use logrel_reliability::{check, exhaustive_synthesize, synthesize, SynthesisOptions};
use logrel_sched::analyze;
use logrel_threetank::{Scenario, ThreeTankSystem};

fn main() {
    let sys = ThreeTankSystem::with_options(Scenario::Baseline, 0.999, Some(0.998))
        .expect("valid constants");
    let verdict = check(&sys.spec, &sys.arch, &sys.imp).expect("analyzable");
    println!(
        "baseline mapping: {} replicas, verdict: {verdict}",
        sys.imp.replication_count()
    );
    assert!(!verdict.is_reliable());

    let opts = SynthesisOptions::default();
    let schedulable = |imp: &logrel_core::Implementation| analyze(&sys.spec, &sys.arch, imp).is_ok();

    let greedy = synthesize(&sys.spec, &sys.arch, &sys.imp, &opts, schedulable)
        .expect("the LRC is achievable");
    println!("\ngreedy synthesis found ({} replicas):", greedy.replication_count());
    for t in sys.spec.task_ids() {
        let hosts: Vec<&str> = greedy
            .hosts_of(t)
            .iter()
            .map(|&h| sys.arch.host(h).name())
            .collect();
        println!("  {} -> {{{}}}", sys.spec.task(t).name(), hosts.join(", "));
    }
    let v = check(&sys.spec, &sys.arch, &greedy).expect("analyzable");
    assert!(v.is_reliable());
    assert!(analyze(&sys.spec, &sys.arch, &greedy).is_ok());
    println!(
        "  λ(u1) = {:.9}, λ(u2) = {:.9} — reliable and schedulable",
        v.long_run_srg(sys.ids.u1),
        v.long_run_srg(sys.ids.u2)
    );

    let minimal = exhaustive_synthesize(&sys.spec, &sys.arch, &sys.imp, &opts, schedulable)
        .expect("achievable");
    println!(
        "\nexhaustive minimum: {} replicas (greedy used {})",
        minimal.replication_count(),
        greedy.replication_count()
    );
    assert!(minimal.replication_count() <= greedy.replication_count());
    // The paper's scenario 1 doubles both controllers (8 replicas total);
    // the search should do no worse.
    let scenario1 = ThreeTankSystem::new(Scenario::ReplicatedControllers);
    println!(
        "paper's scenario 1 uses {} replicas",
        scenario1.imp.replication_count()
    );
    assert!(minimal.replication_count() <= scenario1.imp.replication_count());
    println!("\n✓ synthesis reproduces (or beats) the paper's hand-crafted repair");
}
