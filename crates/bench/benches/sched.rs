//! Criterion bench: schedulability analysis scaling in tasks and hosts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use logrel_bench::layered_system;
use logrel_sched::analyze;

fn bench_sched(c: &mut Criterion) {
    let mut group = c.benchmark_group("sched");
    for &(layers, width, hosts) in &[(2usize, 4usize, 2usize), (4, 8, 4), (8, 16, 8), (12, 24, 8)]
    {
        let sys = layered_system(layers, width, hosts, 23);
        group.bench_with_input(
            BenchmarkId::new("tasks_hosts", format!("{}x{hosts}", layers * width)),
            &sys,
            |b, sys| b.iter(|| analyze(&sys.spec, &sys.arch, &sys.imp).expect("schedulable")),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sched);
criterion_main!(benches);
