//! Criterion bench: discrete-event simulation throughput (rounds/sec) on
//! the 3TS under fault injection.
//!
//! Three series over the same workload and seed:
//!
//! * `kernel` — the compiled round program ([`Simulation::run`]);
//! * `reference` — the map-driven interpreter
//!   ([`Simulation::run_reference`]), kept as the differential oracle and
//!   the perf baseline of the compile/run split;
//! * `ecode` — the same semantics driven by interpreting the generated
//!   E-code of every host (see `sim::cosim`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use logrel_core::{TimeDependentImplementation, Value};
use logrel_sim::{BehaviorMap, ConstantEnvironment, ProbabilisticFaults, SimConfig, Simulation};
use logrel_threetank::{Scenario, ThreeTankSystem};

fn bench_simulator(c: &mut Criterion) {
    let sys = ThreeTankSystem::with_options(Scenario::Baseline, 0.99, None).expect("valid");
    let imp = TimeDependentImplementation::from(sys.imp.clone());
    let sim = Simulation::new(&sys.spec, &sys.arch, &imp);
    let mut group = c.benchmark_group("simulator");
    for &rounds in &[100u64, 1_000, 10_000] {
        group.throughput(Throughput::Elements(rounds));
        group.bench_with_input(
            BenchmarkId::new("kernel", rounds),
            &rounds,
            |b, &rounds| {
                b.iter(|| {
                    let mut inj = ProbabilisticFaults::from_architecture(&sys.arch);
                    sim.run(
                        &mut BehaviorMap::new(),
                        &mut ConstantEnvironment::new(Value::Float(0.2)),
                        &mut inj,
                        &SimConfig { rounds, seed: 5 },
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("reference", rounds),
            &rounds,
            |b, &rounds| {
                b.iter(|| {
                    let mut inj = ProbabilisticFaults::from_architecture(&sys.arch);
                    sim.run_reference(
                        &mut BehaviorMap::new(),
                        &mut ConstantEnvironment::new(Value::Float(0.2)),
                        &mut inj,
                        &SimConfig { rounds, seed: 5 },
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("ecode", rounds),
            &rounds,
            |b, &rounds| {
                b.iter(|| {
                    let mut inj = ProbabilisticFaults::from_architecture(&sys.arch);
                    logrel_sim::cosim::run_cosim(
                        &sys.spec,
                        &sys.imp,
                        &mut BehaviorMap::new(),
                        &mut ConstantEnvironment::new(Value::Float(0.2)),
                        &mut inj,
                        sys.arch.host_ids(),
                        logrel_sim::cosim::CosimParams {
                            rounds,
                            seed: 5,
                            voting: logrel_sim::VotingStrategy::AnyReliable,
                        },
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_simulator);
criterion_main!(benches);
