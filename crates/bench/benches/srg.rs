//! Criterion bench: SRG computation scaling in the number of tasks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use logrel_bench::layered_system;
use logrel_reliability::compute_srgs;

fn bench_srg(c: &mut Criterion) {
    let mut group = c.benchmark_group("srg");
    for &(layers, width) in &[(2usize, 4usize), (4, 8), (8, 16), (16, 32)] {
        let sys = layered_system(layers, width, 4, 11);
        group.bench_with_input(
            BenchmarkId::from_parameter(layers * width),
            &sys,
            |b, sys| {
                b.iter(|| compute_srgs(&sys.spec, &sys.arch, &sys.imp).expect("analyzable"))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_srg);
criterion_main!(benches);
