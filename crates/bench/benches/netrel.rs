//! Criterion bench: two-terminal network reliability on ladder networks —
//! pivotal factoring (exponential in the cycle space; paper refs [4, 14])
//! versus the frontier connectivity DP (linear on bounded-pathwidth
//! graphs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use logrel_bench::ladder_graph;

fn bench_netrel(c: &mut Criterion) {
    let mut group = c.benchmark_group("netrel");
    for &rungs in &[2usize, 4, 8, 12] {
        let g = ladder_graph(rungs, 0.95);
        let t = g.node_count() - 1;
        group.bench_with_input(BenchmarkId::new("factoring", rungs), &g, |b, g| {
            b.iter(|| g.two_terminal(0, t).expect("valid terminals"))
        });
    }
    for &rungs in &[2usize, 8, 32, 128] {
        let g = ladder_graph(rungs, 0.95);
        let t = g.node_count() - 1;
        group.bench_with_input(BenchmarkId::new("frontier", rungs), &g, |b, g| {
            b.iter(|| g.two_terminal_frontier(0, t).expect("valid terminals"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_netrel);
criterion_main!(benches);
