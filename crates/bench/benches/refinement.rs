//! Criterion bench — ablation for Proposition 2: full joint re-analysis
//! versus the local refinement check, per system size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use logrel_bench::layered_system;
use logrel_refine::{check_refinement, validate, Kappa, SystemRef};

fn bench_refinement(c: &mut Criterion) {
    let mut group = c.benchmark_group("refinement");
    for &(layers, width) in &[(2usize, 4usize), (4, 8), (8, 16)] {
        let sys = layered_system(layers, width, 4, 31);
        let kappa = Kappa::identity(&sys.spec);
        let tasks = layers * width;
        group.bench_with_input(
            BenchmarkId::new("full_analysis", tasks),
            &sys,
            |b, sys| {
                b.iter(|| {
                    validate(SystemRef::new(&sys.spec, &sys.arch, &sys.imp)).expect("valid")
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("incremental_check", tasks),
            &(&sys, &kappa),
            |b, (sys, kappa)| {
                b.iter(|| {
                    let s = SystemRef::new(&sys.spec, &sys.arch, &sys.imp);
                    check_refinement(s, s, kappa).expect("reflexive")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_refinement);
criterion_main!(benches);
