//! Criterion bench: HTL-text parsing and elaboration throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use logrel_bench::big_htl_source;
use logrel_lang::{compile, parse};

fn bench_parser(c: &mut Criterion) {
    let mut group = c.benchmark_group("parser");
    for &tasks in &[10usize, 50, 100, 200] {
        let src = big_htl_source(tasks);
        group.throughput(Throughput::Bytes(src.len() as u64));
        group.bench_with_input(BenchmarkId::new("parse", tasks), &src, |b, src| {
            b.iter(|| parse(src).expect("parses"))
        });
        group.bench_with_input(BenchmarkId::new("compile", tasks), &src, |b, src| {
            b.iter(|| compile(src).expect("compiles"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parser);
criterion_main!(benches);
