//! Shared-database concurrency for long-running services.
//!
//! The incremental engine ([`analyze_source`]) is a pure function of
//! `(source, prior db)` — the db is an immutable input, never mutated in
//! place. That makes concurrent sharing trivial to get right with a
//! snapshot/install discipline: workers take an `Arc` snapshot of the
//! current db, analyze against it (possibly in parallel, possibly against
//! a stale snapshot — staleness only costs warmth, never correctness),
//! and install their resulting db back. Installs are last-writer-wins;
//! since any db analyzing the same program family is a valid warm start,
//! a lost race degrades one future analysis from "fully green" to
//! "mostly green", nothing more.
//!
//! [`analyze_source`]: crate::engine::analyze_source

use crate::db::QueryDb;
use std::sync::{Arc, RwLock};

/// A concurrently shared incremental-analysis database.
///
/// Wraps `RwLock<Option<Arc<QueryDb>>>`: readers snapshot cheaply (one
/// `Arc` clone under the read lock), writers swap the whole db. Poisoned
/// locks are ignored — the db is never observed mid-mutation, because it
/// is never mutated, only replaced.
#[derive(Debug, Default)]
pub struct SharedDb {
    inner: RwLock<Option<Arc<QueryDb>>>,
}

impl SharedDb {
    /// An empty shared db (every first analysis runs cold).
    #[must_use]
    pub fn new() -> Self {
        SharedDb::default()
    }

    /// A shared db seeded with `db` (e.g. loaded from a `.logrel-cache`).
    #[must_use]
    pub fn with_db(db: QueryDb) -> Self {
        SharedDb {
            inner: RwLock::new(Some(Arc::new(db))),
        }
    }

    /// The current snapshot, if any. The returned `Arc` stays valid (and
    /// warm) even if another worker installs a newer db concurrently.
    #[must_use]
    pub fn snapshot(&self) -> Option<Arc<QueryDb>> {
        self.inner
            .read()
            .unwrap_or_else(|poison| poison.into_inner())
            .clone()
    }

    /// Installs `db` as the new snapshot (last writer wins).
    pub fn install(&self, db: QueryDb) {
        *self
            .inner
            .write()
            .unwrap_or_else(|poison| poison.into_inner()) = Some(Arc::new(db));
    }

    /// Drops the snapshot (e.g. to force cold analyses in a benchmark).
    pub fn clear(&self) {
        *self
            .inner
            .write()
            .unwrap_or_else(|poison| poison.into_inner()) = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::analyze_source;
    use logrel_obs::NoopSink;

    const SRC: &str = r#"
program demo {
    communicator s : float period 10 sensor;
    communicator u : float period 10 lrc 0.9;
    module m {
        start mode main period 10 {
            invoke ctrl reads s[0] writes u[1];
        }
    }
    architecture {
        host h1 reliability 0.99;
        sensor sn reliability 0.999;
        wcet ctrl on h1 2;
        wctt ctrl on h1 1;
    }
    map {
        ctrl -> h1;
        bind s -> sn;
    }
}
"#;

    /// Many workers snapshotting, analyzing and installing concurrently:
    /// every analysis must render byte-identically to a cold one (the
    /// engine's differential contract), and the final snapshot must make
    /// an unchanged re-analysis fully green.
    #[test]
    fn concurrent_snapshot_install_is_differentially_transparent() {
        let shared = SharedDb::new();
        let cold = analyze_source(SRC, "demo.htl", None, &mut NoopSink);
        assert_eq!(cold.errors, 0, "{}", cold.stderr);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let (shared, cold_stdout) = (&shared, &cold.stdout);
                scope.spawn(move || {
                    for _ in 0..8 {
                        let prior = shared.snapshot();
                        let out =
                            analyze_source(SRC, "demo.htl", prior.as_deref(), &mut NoopSink);
                        assert_eq!(&out.stdout, cold_stdout);
                        if let Some(db) = out.db {
                            shared.install(db);
                        }
                    }
                });
            }
        });
        let prior = shared.snapshot().expect("at least one install");
        let warm = analyze_source(SRC, "demo.htl", Some(&prior), &mut NoopSink);
        assert_eq!(warm.stats.hits, warm.stats.queries);
        assert_eq!(warm.stats.recomputes, 0);
    }
}
