//! An incremental analysis engine over the logrel passes: content-hashed
//! queries with red-green invalidation and refinement-based reuse.
//!
//! The paper's refinement relation (§3, Proposition 2) exists so that a
//! local edit does not force global re-analysis. This crate makes that
//! operational:
//!
//! * [`logrel_lang::subspec`] splits a spec into content-hashed units
//!   (communicator core/LRCs, per-module, per-task metrics and mappings,
//!   architecture topology/probabilities, bindings);
//! * [`db`] keys each analysis pass — elaboration header, lints, E-code
//!   verification, translation validation, SRG computation,
//!   schedulability — on a **dependency digest** over exactly the units
//!   that pass may read (red-green invalidation, rust-lang RFC
//!   2547-style);
//! * [`engine`] evaluates the queries demand-driven: green entries are
//!   reused verbatim, a dirty schedulability query first attempts
//!   **refinement reuse** (the edited spec refines the cached parent ⇒
//!   Lemma 1 transfers schedulability), and only then is the dirtied
//!   cone recomputed;
//! * [`cache`] persists the database as a versioned, checksummed
//!   `.logrel-cache` file whose reads fail closed.
//!
//! The engine's contract is **differential**: warm output is
//! byte-identical to cold output for any prior database — caches change
//! cost, never results.
//!
//! # Example
//!
//! ```
//! use logrel_query::{analyze_source, QueryDb};
//! use logrel_obs::NoopSink;
//!
//! let source = r#"
//! program demo {
//!     communicator s : float period 10 sensor;
//!     communicator u : float period 10 lrc 0.9;
//!     module m {
//!         start mode main period 10 {
//!             invoke ctrl reads s[0] writes u[1];
//!         }
//!     }
//!     architecture {
//!         host h1 reliability 0.99;
//!         sensor sn reliability 0.999;
//!         wcet ctrl on h1 2;
//!         wctt ctrl on h1 1;
//!     }
//!     map {
//!         ctrl -> h1;
//!         bind s -> sn;
//!     }
//! }
//! "#;
//! let cold = analyze_source(source, "demo.htl", None, &mut NoopSink);
//! let warm = analyze_source(source, "demo.htl", cold.db.as_ref(), &mut NoopSink);
//! assert_eq!(cold.stdout, warm.stdout);       // byte-identical
//! assert_eq!(warm.stats.hits, warm.stats.queries); // fully green
//! ```

pub mod cache;
pub mod db;
pub mod engine;
pub mod payload;
pub mod shared;

pub use cache::{load, save, LoadOutcome};
pub use db::{dep_digest, CacheStats, QueryDb, QueryEntry, ENGINE_VERSION};
pub use engine::{analyze_source, cached_report, default_cache_path, AnalysisOutcome, Report};
pub use payload::{Payload, StoredDiag};
pub use shared::SharedDb;

#[cfg(test)]
mod tests {
    use super::*;
    use logrel_obs::NoopSink;

    const SRC: &str = r#"
program demo {
    communicator s : float period 10 sensor;
    communicator u : float period 10 lrc 0.9;
    module m {
        start mode main period 10 {
            invoke ctrl reads s[0] writes u[1];
        }
    }
    architecture {
        host h1 reliability 0.99;
        sensor sn reliability 0.999;
        wcet ctrl on h1 2;
        wctt ctrl on h1 1;
    }
    map {
        ctrl -> h1;
        bind s -> sn;
    }
}
"#;

    #[test]
    fn cold_and_warm_agree_and_warm_is_fully_green() {
        let cold = analyze_source(SRC, "a.htl", None, &mut NoopSink);
        assert_eq!(cold.errors, 0, "{}", cold.stderr);
        assert!(cold.stdout.contains("verdict: VALID"), "{}", cold.stdout);
        assert_eq!(cold.stats.hits, 0);
        let db = cold.db.clone().unwrap();
        let warm = analyze_source(SRC, "a.htl", Some(&db), &mut NoopSink);
        assert_eq!(warm.stdout, cold.stdout);
        assert_eq!(warm.stderr, cold.stderr);
        assert_eq!(warm.stats.hits, warm.stats.queries);
        assert_eq!(warm.stats.recomputes, 0);
    }

    #[test]
    fn wcet_decrease_reuses_by_refinement_and_stays_byte_identical() {
        let cold = analyze_source(SRC, "a.htl", None, &mut NoopSink);
        let db = cold.db.unwrap();
        let edited = SRC.replace("wcet ctrl on h1 2;", "wcet ctrl on h1 1;");
        let warm = analyze_source(&edited, "a.htl", Some(&db), &mut NoopSink);
        let fresh = analyze_source(&edited, "a.htl", None, &mut NoopSink);
        assert_eq!(warm.stdout, fresh.stdout);
        assert_eq!(warm.stderr, fresh.stderr);
        // The WCET edit dirties only sched (no lint pass reads metrics,
        // and the same-width edit moves nothing); sched is answered by
        // refinement reuse (a WCET decrease refines the parent).
        assert_eq!(warm.stats.refine_reuses, 1);
        assert!(warm.stats.hits > 0);
        assert!(warm.stats.recomputes < warm.stats.queries);
    }

    #[test]
    fn wcet_increase_fails_refinement_reuse_and_recomputes() {
        let cold = analyze_source(SRC, "a.htl", None, &mut NoopSink);
        let db = cold.db.unwrap();
        let edited = SRC.replace("wcet ctrl on h1 2;", "wcet ctrl on h1 4;");
        let warm = analyze_source(&edited, "a.htl", Some(&db), &mut NoopSink);
        let fresh = analyze_source(&edited, "a.htl", None, &mut NoopSink);
        assert_eq!(warm.stdout, fresh.stdout);
        assert_eq!(warm.stderr, fresh.stderr);
        // Constraint (b2) is violated: no reuse, the sched cone recomputes.
        assert_eq!(warm.stats.refine_reuses, 0);
        assert!(warm.stats.recomputes >= 1);
        assert!(warm.stats.hits > 0);
    }

    #[test]
    fn frontend_failures_render_identically_cold_and_warm() {
        let broken = SRC.replace("map {", "mapp {");
        let cold = analyze_source(&broken, "a.htl", None, &mut NoopSink);
        assert_eq!(cold.errors, 1);
        let good = analyze_source(SRC, "a.htl", None, &mut NoopSink);
        let warm = analyze_source(&broken, "a.htl", good.db.as_ref(), &mut NoopSink);
        assert_eq!(cold.stderr, warm.stderr);
        assert_eq!(cold.stdout, warm.stdout);
    }

    #[test]
    fn cached_report_hits_only_when_unchanged() {
        let mut calls = 0;
        let fresh = |calls: &mut usize| {
            *calls += 1;
            Report { errors: 0, stdout: "out\n".into(), stderr: String::new() }
        };
        let (r1, db, hit1) =
            cached_report(SRC, "check_report", None, &mut NoopSink, || fresh(&mut calls));
        assert!(!hit1);
        let db = db.unwrap();
        let (r2, db2, hit2) =
            cached_report(SRC, "check_report", Some(&db), &mut NoopSink, || fresh(&mut calls));
        assert!(hit2);
        assert!(db2.is_none());
        assert_eq!(r1, r2);
        assert_eq!(calls, 1);
        let edited = SRC.replace("lrc 0.9", "lrc 0.8");
        let (_r3, db3, hit3) = cached_report(&edited, "check_report", Some(&db), &mut NoopSink, || {
            fresh(&mut calls)
        });
        assert!(!hit3);
        assert!(db3.is_some());
        assert_eq!(calls, 2);
    }
}
