//! The query database: content-hashed units, query entries and
//! dependency digests (red-green invalidation, RFC 2547-style).
//!
//! Each query names the subspec units it may read; its **dependency
//! digest** hashes the ordered `(unit name, unit hash)` pairs of that set
//! together with the query name and the engine version. A cached entry is
//! *green* — reusable verbatim — exactly when its dependency digest
//! matches the one recomputed from the edited program's units, because
//! equal digests mean every input the query could have read is
//! byte-identical. Anything else is *red* and must be recomputed (or, for
//! the schedulability query, rescued by refinement reuse — see
//! [`crate::engine`]).

use crate::payload::Payload;
use logrel_lang::subspec::{FnvWriter, SubspecUnit};
use logrel_lang::ElaboratedSystem;
use std::sync::OnceLock;
use std::collections::BTreeMap;

/// Version of the query engine. Participates in every dependency digest
/// and in the cache header: bumping it invalidates all caches at once.
pub const ENGINE_VERSION: u32 = 2;

/// One cached query result.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryEntry {
    /// Dependency digest the result was computed under.
    pub dep: u64,
    /// The result.
    pub payload: Payload,
}

/// The persistent analysis database for one spec file.
pub struct QueryDb {
    /// Whole-program digest ([`logrel_lang::units_digest`] over `units`).
    pub digest: u64,
    /// Whether the stored source elaborates successfully. Query
    /// entries are only trusted when this is `true`.
    pub elab_ok: bool,
    /// The spec source the entries were computed from — the
    /// refinement-reuse *parent*.
    pub source: String,
    /// The subspec units of `source`.
    pub units: Vec<SubspecUnit>,
    /// Query entries by name.
    pub queries: BTreeMap<String, QueryEntry>,
    /// Lazily elaborated `source` — memoised so refinement reuse across
    /// several queries pays the parent front-end cost at most once.
    /// Never persisted or compared; reset on clone.
    parent: OnceLock<Option<Box<ElaboratedSystem>>>,
}

impl Clone for QueryDb {
    fn clone(&self) -> Self {
        QueryDb {
            digest: self.digest,
            elab_ok: self.elab_ok,
            source: self.source.clone(),
            units: self.units.clone(),
            queries: self.queries.clone(),
            parent: OnceLock::new(),
        }
    }
}

impl PartialEq for QueryDb {
    fn eq(&self, other: &Self) -> bool {
        self.digest == other.digest
            && self.elab_ok == other.elab_ok
            && self.source == other.source
            && self.units == other.units
            && self.queries == other.queries
    }
}

impl std::fmt::Debug for QueryDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryDb")
            .field("digest", &self.digest)
            .field("elab_ok", &self.elab_ok)
            .field("source", &self.source)
            .field("units", &self.units)
            .field("queries", &self.queries)
            .finish_non_exhaustive()
    }
}

/// Cache-effect counters for one engine run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Queries evaluated.
    pub queries: u64,
    /// Answered green from the cache.
    pub hits: u64,
    /// Recomputed from scratch.
    pub recomputes: u64,
    /// Answered by refinement reuse (Proposition 2).
    pub refine_reuses: u64,
}

/// `true` if `query` depends on the unit named `unit`.
///
/// Inclusion is always sound (it only costs reuse); *exclusion* encodes
/// a proof obligation that the pass never reads that unit:
///
/// * no lint pass inspects WCET/WCTT rows (verified over all seven
///   passes in `logrel-lint`), so `lint` skips execution metrics;
/// * E-code generation/verification reads neither execution metrics nor
///   failure probabilities nor LRCs;
/// * the SRG fixpoint reads failure models and probabilities but neither
///   metrics nor the declared LRCs;
/// * schedulability reads metrics and LETs but no probabilities;
/// * translation validation certifies the round dataflow and never reads
///   metrics.
///
/// The `layout` unit (source positions) is read exactly by the queries
/// whose payloads embed spans: the diagnostic queries (`lint`, `ecode`,
/// `tv`) and the whole-command reports. `header`, `srg` and `sched`
/// render names and numbers only, so an edit that merely moves items
/// leaves them green.
#[must_use]
pub fn depends_on(query: &str, unit: &str) -> bool {
    match query {
        "ecode" => {
            unit != "comms_lrc" && unit != "arch_rel" && !unit.starts_with("metrics:")
        }
        "srg" => {
            unit != "comms_lrc" && unit != "layout" && !unit.starts_with("metrics:")
        }
        "sched" => unit != "comms_lrc" && unit != "arch_rel" && unit != "layout",
        // Certification reads the SRG inputs *plus* the declared LRCs, but
        // renders no spans (its payload carries counters only), ignores the
        // program name and never reads execution metrics.
        "certify" => unit != "layout" && unit != "name" && !unit.starts_with("metrics:"),
        "tv" | "lint" => !unit.starts_with("metrics:"),
        "header" => {
            // Name, communicator count, task count and the round period
            // (an LCM of communicator and mode periods).
            unit == "name" || unit == "comms_core" || unit.starts_with("module:")
        }
        // The whole-command report queries read everything.
        _ => true,
    }
}

/// The dependency digest of `query` over `units` (in unit order): the
/// query name, the engine version and each depended unit's name plus raw
/// hash bytes, NUL-separated.
#[must_use]
pub fn dep_digest(query: &str, units: &[SubspecUnit]) -> u64 {
    let mut w = FnvWriter::new();
    w.write_bytes(query.as_bytes());
    w.write_bytes(&[0]);
    w.write_bytes(&ENGINE_VERSION.to_le_bytes());
    for u in units.iter().filter(|u| depends_on(query, &u.name)) {
        w.write_bytes(u.name.as_bytes());
        w.write_bytes(&[0]);
        w.write_bytes(&u.hash.to_le_bytes());
    }
    w.finish()
}

impl QueryDb {
    /// An empty database for a program with the given source and units.
    #[must_use]
    pub fn new(source: String, digest: u64, units: Vec<SubspecUnit>, elab_ok: bool) -> Self {
        QueryDb {
            digest,
            elab_ok,
            source,
            units,
            queries: BTreeMap::new(),
            parent: OnceLock::new(),
        }
    }

    /// The elaborated parent system, memoised across calls. `None` when
    /// the stored source fails to parse or elaborate.
    #[must_use]
    pub fn parent_sys(&self) -> Option<&ElaboratedSystem> {
        self.parent
            .get_or_init(|| {
                let program = logrel_lang::parse(&self.source).ok()?;
                logrel_lang::elaborate(&program).ok().map(Box::new)
            })
            .as_deref()
    }

    /// Looks up a green entry: present *and* computed under the same
    /// dependency digest.
    #[must_use]
    pub fn green(&self, query: &str, dep: u64) -> Option<&Payload> {
        if !self.elab_ok {
            return None;
        }
        self.queries
            .get(query)
            .filter(|e| e.dep == dep)
            .map(|e| &e.payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logrel_lang::parse;
    use logrel_lang::subspec::split_units;

    const SRC: &str = r#"
program p {
    communicator s : float period 10 sensor;
    communicator u : float period 10 lrc 0.9;
    module m {
        start mode main period 10 {
            invoke ctrl reads s[0] writes u[1];
        }
    }
    architecture {
        host h1 reliability 0.99;
        sensor sn reliability 0.999;
        wcet ctrl on h1 2;
        wctt ctrl on h1 1;
    }
    map {
        ctrl -> h1;
        bind s -> sn;
    }
}
"#;

    #[test]
    fn wcet_edit_dirties_only_sched() {
        let u1 = split_units(&parse(SRC).unwrap());
        let edited = SRC.replace("wcet ctrl on h1 2;", "wcet ctrl on h1 3;");
        let u2 = split_units(&parse(&edited).unwrap());
        assert_ne!(dep_digest("sched", &u1), dep_digest("sched", &u2));
        for q in ["lint", "srg", "ecode", "tv", "header"] {
            assert_eq!(dep_digest(q, &u1), dep_digest(q, &u2), "{q} dirtied");
        }
    }

    #[test]
    fn line_shift_dirties_span_carrying_queries_only() {
        // An inserted blank line changes no canonical text, but cached
        // diagnostics embed positions: lint/ecode/tv must go red while
        // the span-free queries stay green.
        let u1 = split_units(&parse(SRC).unwrap());
        let edited = SRC.replacen("    module m {", "\n    module m {", 1);
        let u2 = split_units(&parse(&edited).unwrap());
        for q in ["lint", "ecode", "tv"] {
            assert_ne!(dep_digest(q, &u1), dep_digest(q, &u2), "{q} stayed green");
        }
        for q in ["srg", "sched", "header"] {
            assert_eq!(dep_digest(q, &u1), dep_digest(q, &u2), "{q} dirtied");
        }
    }

    #[test]
    fn lrc_edit_dirties_lint_and_tv_but_not_srg_sched_ecode() {
        let u1 = split_units(&parse(SRC).unwrap());
        let edited = SRC.replace("lrc 0.9;", "lrc 0.95;");
        let u2 = split_units(&parse(&edited).unwrap());
        assert_ne!(dep_digest("lint", &u1), dep_digest("lint", &u2));
        assert_ne!(dep_digest("tv", &u1), dep_digest("tv", &u2));
        for q in ["srg", "sched", "ecode", "header"] {
            assert_eq!(dep_digest(q, &u1), dep_digest(q, &u2), "{q} dirtied");
        }
    }

    #[test]
    fn host_reliability_edit_dirties_srg_but_not_sched() {
        let u1 = split_units(&parse(SRC).unwrap());
        let edited = SRC.replace("host h1 reliability 0.99;", "host h1 reliability 0.98;");
        let u2 = split_units(&parse(&edited).unwrap());
        assert_ne!(dep_digest("srg", &u1), dep_digest("srg", &u2));
        assert_eq!(dep_digest("sched", &u1), dep_digest("sched", &u2));
        assert_eq!(dep_digest("ecode", &u1), dep_digest("ecode", &u2));
    }

    #[test]
    fn digests_differ_between_queries_over_identical_deps() {
        let units = split_units(&parse(SRC).unwrap());
        assert_ne!(dep_digest("lint", &units), dep_digest("check_report", &units));
    }

    #[test]
    fn green_requires_matching_dep_and_elab_ok() {
        let p = parse(SRC).unwrap();
        let units = split_units(&p);
        let dep = dep_digest("sched", &units);
        let mut db = QueryDb::new("src".into(), 1, units, true);
        db.queries.insert(
            "sched".into(),
            QueryEntry { dep, payload: Payload::Sched { ok: true, message: String::new() } },
        );
        assert!(db.green("sched", dep).is_some());
        assert!(db.green("sched", dep ^ 1).is_none());
        assert!(db.green("srg", dep).is_none());
        db.elab_ok = false;
        assert!(db.green("sched", dep).is_none());
    }
}
