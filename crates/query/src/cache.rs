//! The `.logrel-cache` file: a versioned, checksummed text serialization
//! of a [`QueryDb`].
//!
//! Reads **fail closed**: any structural defect — bad magic, engine
//! version mismatch, truncation, checksum failure, unparseable stored
//! source, or stored hashes that disagree with ones recomputed from the
//! embedded source — yields [`LoadOutcome::Invalid`] and the caller falls
//! back to cold analysis. A cache can make analysis slower, never wrong.
//!
//! ```text
//! logrel-cache v1
//! engine <N>
//! digest <16 hex>
//! elab_ok <0|1>
//! source <byte length>
//! <spec source, verbatim>
//! unit <16 hex> <name>        (one per subspec unit, in order)
//! query <name> <dep 16 hex> <kind> <payload line count>
//! <payload lines>
//! checksum <16 hex>           (FNV-1a 64 of everything above)
//! ```

use crate::db::{QueryDb, QueryEntry, ENGINE_VERSION};
use crate::payload;
use logrel_lang::subspec::{fnv1a, split_units, units_digest};
use std::collections::BTreeMap;

/// Magic first line of every cache file.
const MAGIC: &str = "logrel-cache v1";

/// Result of attempting to load a cache file.
#[derive(Debug)]
pub enum LoadOutcome {
    /// A structurally valid database.
    Loaded(Box<QueryDb>),
    /// No file at the given path: cold start, no warning.
    Missing,
    /// The file exists but is unusable; the reason is for the warning.
    Invalid(String),
}

/// Serializes `db` to the cache-file text, checksum included.
#[must_use]
pub fn to_text(db: &QueryDb) -> String {
    let mut body = String::new();
    body.push_str(MAGIC);
    body.push('\n');
    body.push_str(&format!("engine {ENGINE_VERSION}\n"));
    body.push_str(&format!("digest {:016x}\n", db.digest));
    body.push_str(&format!("elab_ok {}\n", u8::from(db.elab_ok)));
    body.push_str(&format!("source {}\n", db.source.len()));
    body.push_str(&db.source);
    if !db.source.ends_with('\n') {
        body.push('\n');
    }
    for u in &db.units {
        body.push_str(&format!("unit {:016x} {}\n", u.hash, u.name));
    }
    for (name, entry) in &db.queries {
        let lines = payload::to_lines(&entry.payload);
        body.push_str(&format!(
            "query {name} {:016x} {} {}\n",
            entry.dep,
            entry.payload.kind(),
            lines.len()
        ));
        for line in lines {
            body.push_str(&line);
            body.push('\n');
        }
    }
    let sum = fnv1a(body.as_bytes());
    body.push_str(&format!("checksum {sum:016x}\n"));
    body
}

/// Takes the first line off `rest`, advancing it past the newline.
fn take_line<'a>(rest: &mut &'a str) -> Option<&'a str> {
    let (line, tail) = rest.split_once('\n')?;
    *rest = tail;
    Some(line)
}

fn parse_hex(s: &str) -> Option<u64> {
    (s.len() == 16).then(|| u64::from_str_radix(s, 16).ok()).flatten()
}

/// Parses cache-file text into a database, verifying the checksum, the
/// engine version, and that the stored digest/units agree with values
/// recomputed from the embedded source.
///
/// # Errors
///
/// Returns a human-readable reason for the fallback warning.
pub fn parse_text(text: &str) -> Result<QueryDb, String> {
    // Checksum first: everything else assumes an untampered body.
    let stripped = text.strip_suffix('\n').ok_or("truncated file")?;
    let (_, last) = stripped.rsplit_once('\n').ok_or("truncated file")?;
    let sum = parse_hex(last.strip_prefix("checksum ").ok_or("missing checksum line")?)
        .ok_or("malformed checksum line")?;
    let body = &text[..text.len() - last.len() - 1];
    if fnv1a(body.as_bytes()) != sum {
        return Err("checksum mismatch".into());
    }

    let mut rest = body;
    if take_line(&mut rest) != Some(MAGIC) {
        return Err("not a logrel-cache file".into());
    }
    let engine: u32 = take_line(&mut rest)
        .and_then(|l| l.strip_prefix("engine "))
        .and_then(|v| v.parse().ok())
        .ok_or("malformed engine line")?;
    if engine != ENGINE_VERSION {
        return Err(format!(
            "engine version {engine} != current {ENGINE_VERSION}"
        ));
    }
    let digest = take_line(&mut rest)
        .and_then(|l| l.strip_prefix("digest "))
        .and_then(parse_hex)
        .ok_or("malformed digest line")?;
    let elab_ok = match take_line(&mut rest).and_then(|l| l.strip_prefix("elab_ok ")) {
        Some("0") => false,
        Some("1") => true,
        _ => return Err("malformed elab_ok line".into()),
    };
    let source_len: usize = take_line(&mut rest)
        .and_then(|l| l.strip_prefix("source "))
        .and_then(|v| v.parse().ok())
        .ok_or("malformed source line")?;
    if rest.len() < source_len || !rest.is_char_boundary(source_len) {
        return Err("truncated stored source".into());
    }
    let source = rest[..source_len].to_owned();
    rest = &rest[source_len..];
    if !source.ends_with('\n') {
        rest = rest.strip_prefix('\n').ok_or("truncated stored source")?;
    }

    // Cross-check the digest and units against the embedded source: a
    // cache whose hashes do not reproduce is not trusted.
    let program =
        logrel_lang::parse(&source).map_err(|e| format!("stored source does not parse: {e}"))?;
    let units = split_units(&program);
    if units_digest(&units) != digest {
        return Err("stored digest does not match the stored source".into());
    }

    let mut stored_units = Vec::new();
    let mut queries = BTreeMap::new();
    while !rest.is_empty() {
        let line = take_line(&mut rest).ok_or("truncated record")?;
        if let Some(u) = line.strip_prefix("unit ") {
            let (hash, name) = u.split_once(' ').ok_or("malformed unit line")?;
            let hash = parse_hex(hash).ok_or("malformed unit hash")?;
            stored_units.push((name.to_owned(), hash));
        } else if let Some(q) = line.strip_prefix("query ") {
            let fields: Vec<&str> = q.split(' ').collect();
            let [name, dep, kind, count] = fields[..] else {
                return Err("malformed query line".into());
            };
            let dep = parse_hex(dep).ok_or("malformed query digest")?;
            let count: usize = count.parse().map_err(|_| "malformed query line count")?;
            let mut lines = Vec::with_capacity(count);
            for _ in 0..count {
                lines.push(take_line(&mut rest).ok_or("truncated query payload")?);
            }
            let payload = payload::from_lines(kind, &lines)
                .ok_or_else(|| format!("malformed `{name}` payload"))?;
            queries.insert(name.to_owned(), QueryEntry { dep, payload });
        } else {
            return Err(format!("unrecognized record `{line}`"));
        }
    }
    let recomputed: Vec<(String, u64)> =
        units.iter().map(|u| (u.name.clone(), u.hash)).collect();
    if stored_units != recomputed {
        return Err("stored units do not match the stored source".into());
    }

    let mut db = QueryDb::new(source, digest, units, elab_ok);
    db.queries = queries;
    Ok(db)
}

/// Loads the cache at `path`, failing closed.
#[must_use]
pub fn load(path: &str) -> LoadOutcome {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return LoadOutcome::Missing,
        Err(e) => return LoadOutcome::Invalid(format!("unreadable: {e}")),
    };
    let text = match String::from_utf8(bytes) {
        Ok(t) => t,
        Err(_) => return LoadOutcome::Invalid("not valid UTF-8".into()),
    };
    match parse_text(&text) {
        Ok(db) => LoadOutcome::Loaded(Box::new(db)),
        Err(reason) => LoadOutcome::Invalid(reason),
    }
}

/// Writes `db` to `path` atomically.
///
/// The text is written to a uniquely named temp file in the same
/// directory and `rename`d into place, so a concurrent reader observes
/// either the old complete file or the new complete file, never a torn
/// interleaving — the steady state of a job service analyzing the same
/// spec from several workers. (Same-directory matters: `rename` is only
/// atomic within a filesystem.)
///
/// # Errors
///
/// Propagates the I/O error; callers degrade to a warning (a cache that
/// cannot be written only costs the next run its warm start).
pub fn save(db: &QueryDb, path: &str) -> std::io::Result<()> {
    let path = std::path::Path::new(path);
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    // Unique per process+thread: concurrent writers in one process get
    // distinct temp names; losers of the final rename race still leave a
    // complete file behind.
    let tmp_name = format!(
        ".{}.tmp.{}.{:?}",
        path.file_name().and_then(|n| n.to_str()).unwrap_or("logrel-cache"),
        std::process::id(),
        std::thread::current().id(),
    );
    let tmp = dir.unwrap_or_else(|| std::path::Path::new(".")).join(tmp_name);
    std::fs::write(&tmp, to_text(db))?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::dep_digest;
    use crate::payload::Payload;
    use logrel_lang::{parse, program_digest};

    const SRC: &str = r#"
program p {
    communicator s : float period 10 sensor;
    communicator u : float period 10 lrc 0.9;
    module m {
        start mode main period 10 {
            invoke ctrl reads s[0] writes u[1];
        }
    }
    architecture {
        host h1 reliability 0.99;
        sensor sn reliability 0.999;
        wcet ctrl on h1 2;
        wctt ctrl on h1 1;
    }
    map {
        ctrl -> h1;
        bind s -> sn;
    }
}
"#;

    fn sample_db() -> QueryDb {
        // The db stores the raw source: units (including `layout`, which
        // hashes spans) must be computed from the very text stored.
        let program = parse(SRC).unwrap();
        let source = SRC.to_string();
        let units = split_units(&program);
        let dep = dep_digest("sched", &units);
        let mut db = QueryDb::new(source, program_digest(&program), units, true);
        db.queries.insert(
            "sched".into(),
            QueryEntry { dep, payload: Payload::Sched { ok: true, message: String::new() } },
        );
        db.queries.insert(
            "lint".into(),
            QueryEntry {
                dep: dep_digest("lint", &db.units),
                payload: Payload::Diags(vec![]),
            },
        );
        db
    }

    #[test]
    fn round_trips() {
        let db = sample_db();
        let text = to_text(&db);
        assert_eq!(parse_text(&text).unwrap(), db);
    }

    #[test]
    fn every_single_byte_flip_is_rejected_or_roundtrips_clean() {
        // Bit-flip robustness: flipping any one byte must never panic and
        // must be caught by the checksum (ASCII text: flips change bytes).
        let db = sample_db();
        let text = to_text(&db);
        let bytes = text.as_bytes();
        for i in (0..bytes.len()).step_by(7) {
            let mut corrupt = bytes.to_vec();
            corrupt[i] ^= 0x01;
            if let Ok(s) = String::from_utf8(corrupt) {
                assert!(parse_text(&s).is_err(), "flip at byte {i} accepted");
            }
        }
    }

    #[test]
    fn truncations_are_rejected() {
        let text = to_text(&sample_db());
        for cut in [0, 1, 10, text.len() / 2, text.len() - 2, text.len() - 1] {
            let t = &text[..cut];
            if std::str::from_utf8(t.as_bytes()).is_ok() {
                assert!(parse_text(t).is_err(), "truncation at {cut} accepted");
            }
        }
    }

    #[test]
    fn engine_version_mismatch_is_rejected() {
        let text = to_text(&sample_db());
        // Forge a consistent file with a wrong engine version: even with a
        // valid checksum it must be rejected.
        let body = text.replace(&format!("engine {ENGINE_VERSION}\n"), "engine 999\n");
        let body = &body[..body.rfind("checksum ").unwrap()];
        let forged = format!("{body}checksum {:016x}\n", fnv1a(body.as_bytes()));
        let err = parse_text(&forged).unwrap_err();
        assert!(err.contains("engine version"), "{err}");
    }

    #[test]
    fn tampered_unit_hash_is_rejected_even_with_valid_checksum() {
        let db = sample_db();
        let mut tampered = db.clone();
        tampered.units[2].hash ^= 1;
        let err = parse_text(&to_text(&tampered)).unwrap_err();
        assert!(err.contains("units"), "{err}");
        let mut bad_digest = db;
        bad_digest.digest ^= 1;
        let err = parse_text(&to_text(&bad_digest)).unwrap_err();
        assert!(err.contains("digest"), "{err}");
    }

    #[test]
    fn load_distinguishes_missing_from_invalid() {
        let dir = std::env::temp_dir().join("logrel-cache-test");
        std::fs::create_dir_all(&dir).unwrap();
        let missing = dir.join("nope.logrel-cache");
        let _ = std::fs::remove_file(&missing);
        assert!(matches!(load(missing.to_str().unwrap()), LoadOutcome::Missing));
        let garbage = dir.join("garbage.logrel-cache");
        std::fs::write(&garbage, b"\xff\xfe not utf8").unwrap();
        assert!(matches!(
            load(garbage.to_str().unwrap()),
            LoadOutcome::Invalid(_)
        ));
        let stale = dir.join("ok.logrel-cache");
        std::fs::write(&stale, to_text(&sample_db())).unwrap();
        assert!(matches!(load(stale.to_str().unwrap()), LoadOutcome::Loaded(_)));
    }

    /// Concurrent saves against concurrent loads: a reader must only
    /// ever observe a complete file (the fail-closed checksum would
    /// expose a torn write as `Invalid`). This is the serve steady state
    /// — many workers analyzing the same spec, each persisting the db.
    #[test]
    fn concurrent_saves_never_expose_a_partial_file() {
        let dir = std::env::temp_dir().join("logrel-cache-atomic-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shared.logrel-cache");
        let path = path.to_str().unwrap().to_string();
        // Two variants of the db, so the file content actually changes
        // between saves (variant B drops one cached query).
        let db_a = sample_db();
        let mut db_b = sample_db();
        db_b.queries.remove("lint");
        save(&db_a, &path).unwrap();

        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|scope| {
            for flavor in 0..2usize {
                let (stop, path, db_a, db_b) = (&stop, &path, &db_a, &db_b);
                scope.spawn(move || {
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        let db = if flavor == 0 { db_a } else { db_b };
                        save(db, path).unwrap();
                    }
                });
            }
            for _ in 0..2 {
                let (stop, path) = (&stop, &path);
                scope.spawn(move || {
                    for _ in 0..300 {
                        match load(path) {
                            LoadOutcome::Loaded(_) => {}
                            LoadOutcome::Missing => panic!("cache vanished mid-save"),
                            LoadOutcome::Invalid(reason) => {
                                panic!("reader observed a torn cache: {reason}")
                            }
                        }
                    }
                    stop.store(true, std::sync::atomic::Ordering::Relaxed);
                });
            }
        });
    }
}
