//! The demand-driven analysis engine: evaluates the seven analysis
//! queries over a spec, reusing green cache entries and attempting
//! refinement reuse for the schedulability and certification queries
//! before recomputing.
//!
//! # The differential guarantee
//!
//! [`analyze_source`] must produce **byte-identical** output whether it
//! runs cold (no prior database) or warm (any prior database, however
//! stale). Three mechanisms enforce this:
//!
//! * results are cached structurally (bit-exact floats, unpromoted
//!   diagnostics) and every byte of output is rendered *from payloads*,
//!   by the same code, on both paths;
//! * a cache entry is reused only when its dependency digest proves all
//!   its inputs unchanged (see [`crate::db`]);
//! * refinement reuse answers only the schedulability and certification
//!   queries, and only with constant fully-`ok` payloads: for `sched`,
//!   when the edited spec refines the cached parent (Proposition 2) and
//!   the parent was schedulable, Lemma 1 guarantees a fresh run would
//!   also answer `ok`; for `certify`, when every unit the certification
//!   reads except the LRC declarations is byte-identical to the parent's
//!   and every LRC was only weakened, the fresh run would recompute the
//!   bit-identical certified enclosures against thresholds that only
//!   moved down — so a fully certified parent verdict transfers.

use crate::db::{dep_digest, depends_on, CacheStats, QueryDb, QueryEntry};
use crate::payload::{store_diags, Payload, StoredDiag};
use logrel_core::TimeDependentImplementation;
use logrel_lang::ast::Program;
use logrel_lang::subspec::{split_units, units_digest, SubspecUnit};
use logrel_lang::{elaborate, parse, ElaboratedSystem, LangError};
use logrel_lint::{sort_diagnostics, Diagnostic};
use logrel_obs::{names, MetricsSink};
use logrel_refine::{check_refinement, Kappa, SystemRef};
use std::fmt::Write as _;

/// The analysis queries, in evaluation (and report) order.
const QUERIES: [&str; 7] = ["header", "lint", "ecode", "tv", "srg", "certify", "sched"];

/// Result of one engine run.
#[derive(Debug, Clone)]
pub struct AnalysisOutcome {
    /// The report (stdout).
    pub stdout: String,
    /// Rendered diagnostics (stderr).
    pub stderr: String,
    /// Error-severity diagnostics emitted (drives the exit code).
    pub errors: usize,
    /// Cache-effect counters.
    pub stats: CacheStats,
    /// The database to persist, when the source at least parsed.
    pub db: Option<QueryDb>,
}

/// A whole-command result cached by the `--incremental` flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Error count (drives the exit code).
    pub errors: usize,
    /// Exact stdout bytes.
    pub stdout: String,
    /// Exact stderr bytes.
    pub stderr: String,
}

/// The default cache path for a spec file.
#[must_use]
pub fn default_cache_path(spec_path: &str) -> String {
    format!("{spec_path}.logrel-cache")
}

/// Elaborates on first use; queries that hit never pay for elaboration.
fn ensure_sys<'s>(
    program: &Program,
    slot: &'s mut Option<ElaboratedSystem>,
) -> Result<&'s ElaboratedSystem, LangError> {
    if slot.is_none() {
        *slot = Some(elaborate(program)?);
    }
    Ok(slot.as_ref().expect("just filled"))
}

/// Computes one query from scratch.
fn compute(query: &str, program: &Program, sys: &ElaboratedSystem) -> Payload {
    match query {
        "header" => Payload::Report {
            errors: 0,
            stdout: format!(
                "program `{}`: {} communicator(s), {} task(s), round {}",
                sys.name,
                sys.spec.communicator_count(),
                sys.spec.task_count(),
                sys.spec.round_period()
            ),
            stderr: String::new(),
        },
        "lint" => {
            let mut diags = logrel_lint::spec_lints(program, sys);
            sort_diagnostics(&mut diags);
            Payload::Diags(store_diags(&diags))
        }
        "ecode" => {
            let mut diags = logrel_lint::verify_generated(program, sys);
            sort_diagnostics(&mut diags);
            Payload::Diags(store_diags(&diags))
        }
        "tv" => {
            let td = TimeDependentImplementation::from(sys.imp.clone());
            match logrel_validate::certify_system(&sys.spec, &sys.arch, &td) {
                Ok(cert) => Payload::Tv { cert: Some(cert.to_string()), diags: Vec::new() },
                Err(mut diags) => {
                    sort_diagnostics(&mut diags);
                    Payload::Tv { cert: None, diags: store_diags(&diags) }
                }
            }
        }
        "srg" => match logrel_reliability::compute_srgs(&sys.spec, &sys.arch, &sys.imp) {
            Ok(report) => Payload::Srg {
                ok: true,
                message: String::new(),
                values: sys
                    .spec
                    .communicator_ids()
                    .map(|c| {
                        (
                            sys.spec.communicator(c).name().to_owned(),
                            report.communicator(c).get().to_bits(),
                        )
                    })
                    .collect(),
            },
            Err(e) => Payload::Srg { ok: false, message: e.to_string(), values: Vec::new() },
        },
        "certify" => match logrel_reliability::certify(&sys.spec, &sys.arch, &sys.imp, None) {
            Ok(cert) => Payload::Cert {
                ok: true,
                message: String::new(),
                certified: cert.overall == logrel_reliability::CertStatus::Certified,
                refuted: cert.count(logrel_reliability::CertStatus::Refuted) as u64,
                indeterminate: cert.count(logrel_reliability::CertStatus::Indeterminate) as u64,
            },
            Err(e) => Payload::Cert {
                ok: false,
                message: e.to_string(),
                certified: false,
                refuted: 0,
                indeterminate: 0,
            },
        },
        "sched" => match logrel_sched::analyze(&sys.spec, &sys.arch, &sys.imp) {
            Ok(_) => Payload::Sched { ok: true, message: String::new() },
            Err(e) => Payload::Sched { ok: false, message: e.to_string() },
        },
        other => unreachable!("unknown query `{other}`"),
    }
}

/// Attempts refinement reuse for the dirty schedulability query: if the
/// edited system refines the cached parent under the name-matched κ
/// (all six constraints of Proposition 2 plus the shared host set) and
/// the parent was schedulable, Lemma 1 transfers schedulability.
fn try_refine_reuse(prior: &QueryDb, sys: &ElaboratedSystem) -> Option<Payload> {
    match &prior.queries.get("sched")?.payload {
        Payload::Sched { ok: true, .. } => {}
        _ => return None,
    }
    let parent = prior.parent_sys()?;
    let kappa = Kappa::by_name(&sys.spec, &parent.spec);
    check_refinement(
        SystemRef::new(&sys.spec, &sys.arch, &sys.imp),
        SystemRef::new(&parent.spec, &parent.arch, &parent.imp),
        &kappa,
    )
    .ok()?;
    Some(Payload::Sched { ok: true, message: String::new() })
}

/// Attempts refinement reuse for the dirty certification query. Reuse is
/// sound — and *byte-identical* to a cold run — under two structural
/// conditions:
///
/// * every unit the certification depends on **except** `comms_lrc` has
///   the same content hash in the edited program as in the cached parent,
///   so a fresh run would recompute bit-identical certified enclosures
///   (the interval analysis is deterministic in those units);
/// * every LRC in the edited program is at most the parent's LRC on the
///   same-named communicator — pointwise weakening.
///
/// A fully certified parent verdict then transfers: each enclosure's
/// lower bound still clears a threshold that only moved down, and the
/// reused payload (`certified`, zero refuted/indeterminate counters) is
/// exactly what the fresh run would produce.
fn try_certify_reuse(
    prior: &QueryDb,
    units: &[SubspecUnit],
    sys: &ElaboratedSystem,
) -> Option<Payload> {
    match &prior.queries.get("certify")?.payload {
        Payload::Cert { ok: true, certified: true, refuted: 0, indeterminate: 0, .. } => {}
        _ => return None,
    }
    fn lrc_free(us: &[SubspecUnit]) -> impl Iterator<Item = (&str, u64)> {
        us.iter()
            .filter(|u| depends_on("certify", &u.name) && u.name != "comms_lrc")
            .map(|u| (u.name.as_str(), u.hash))
    }
    if !lrc_free(units).eq(lrc_free(&prior.units)) {
        return None;
    }
    let parent = prior.parent_sys()?;
    for c in sys.spec.communicator_ids() {
        let comm = sys.spec.communicator(c);
        let Some(mu) = comm.lrc() else { continue };
        let weakened = parent.spec.communicator_ids().any(|p| {
            let pc = parent.spec.communicator(p);
            pc.name() == comm.name() && pc.lrc().is_some_and(|pm| pm.get() >= mu.get())
        });
        if !weakened {
            return None;
        }
    }
    Some(Payload::Cert {
        ok: true,
        message: String::new(),
        certified: true,
        refuted: 0,
        indeterminate: 0,
    })
}

/// A front-end failure rendered the same way cold and warm.
fn frontend_failure(
    file: &str,
    err: &LangError,
    stats: CacheStats,
    db: Option<QueryDb>,
) -> AnalysisOutcome {
    let mut stderr = Diagnostic::from_lang_error(err).render(file);
    stderr.push('\n');
    AnalysisOutcome { stdout: String::new(), stderr, errors: 1, stats, db }
}

/// Renders stored diagnostics into `stderr`, counting errors.
fn emit_diags(stderr: &mut String, errors: &mut usize, file: &str, diags: &[StoredDiag]) {
    for d in diags {
        stderr.push_str(&d.render(file, false));
        stderr.push('\n');
        if d.is_error(false) {
            *errors += 1;
        }
    }
}

/// Runs the full analysis of `source`, reusing `prior` where green.
///
/// Cache counters are reported through `sink` (see
/// `logrel_obs::names::QUERY_*`). The returned database reflects the
/// *current* source; the caller persists it.
pub fn analyze_source(
    source: &str,
    file: &str,
    prior: Option<&QueryDb>,
    sink: &mut dyn MetricsSink,
) -> AnalysisOutcome {
    let mut stats = CacheStats::default();
    let program = match parse(source) {
        Ok(p) => p,
        Err(e) => return frontend_failure(file, &e, stats, None),
    };
    let units = split_units(&program);
    let digest = units_digest(&units);
    // Only a prior that recorded successful elaboration is trusted; its
    // entries were all computed against an elaborated system.
    let prior = prior.filter(|p| p.elab_ok);

    // Soundness of reuse: confirm *this* program elaborates before
    // consulting the cache, unless the digest proves it is byte-identical
    // to a source already recorded as elaborating (the units jointly
    // cover every canonical field, so equal digests imply an identical
    // canonical form).
    let mut sys: Option<ElaboratedSystem> = None;
    if prior.is_none_or(|p| p.digest != digest) {
        if let Err(e) = ensure_sys(&program, &mut sys) {
            let db = QueryDb::new(source.to_owned(), digest, units, false);
            return frontend_failure(file, &e, stats, Some(db));
        }
    }

    // A green hit borrows the prior's payload — it is already in the
    // prior's query map under the same dependency digest, so it is never
    // cloned or re-inserted. Only fresh payloads are moved into the db.
    enum Answer<'a> {
        Hit(&'a Payload),
        Fresh(Payload),
    }
    let mut answers: Vec<(&'static str, u64, Answer<'_>)> = Vec::with_capacity(QUERIES.len());
    for query in QUERIES {
        let dep = dep_digest(query, &units);
        stats.queries += 1;
        let answer = if let Some(green) = prior.and_then(|p| p.green(query, dep)) {
            stats.hits += 1;
            Answer::Hit(green)
        } else {
            let current = match ensure_sys(&program, &mut sys) {
                Ok(s) => s,
                // Unreachable when the digest matched a recorded
                // `elab_ok` prior, but degrade identically to cold.
                Err(e) => {
                    let db = QueryDb::new(source.to_owned(), digest, units, false);
                    return frontend_failure(file, &e, stats, Some(db));
                }
            };
            if query == "sched" {
                if let Some(p) = prior.and_then(|pr| try_refine_reuse(pr, current)) {
                    stats.refine_reuses += 1;
                    Answer::Fresh(p)
                } else {
                    stats.recomputes += 1;
                    Answer::Fresh(compute(query, &program, current))
                }
            } else if query == "certify" {
                if let Some(p) = prior.and_then(|pr| try_certify_reuse(pr, &units, current)) {
                    stats.refine_reuses += 1;
                    Answer::Fresh(p)
                } else {
                    stats.recomputes += 1;
                    Answer::Fresh(compute(query, &program, current))
                }
            } else {
                stats.recomputes += 1;
                Answer::Fresh(compute(query, &program, current))
            }
        };
        answers.push((query, dep, answer));
    }

    sink.add(names::QUERY_QUERIES, stats.queries);
    sink.add(names::QUERY_HITS, stats.hits);
    sink.add(names::QUERY_RECOMPUTES, stats.recomputes);
    sink.add(names::QUERY_REFINE_REUSE, stats.refine_reuses);

    let payloads: Vec<(&str, &Payload)> = answers
        .iter()
        .map(|(q, _, a)| {
            (*q, match a {
                Answer::Hit(p) => *p,
                Answer::Fresh(p) => p,
            })
        })
        .collect();
    let (stdout, stderr, errors) = render(file, &program, &payloads);
    drop(payloads);

    // An unchanged digest lets the prior carry over wholesale (hits are
    // already present under the same dependency digests); otherwise the
    // db is rebuilt around the current source and units.
    let mut db = match prior {
        Some(p) if p.digest == digest => p.clone(),
        _ => {
            let mut db = QueryDb::new(source.to_owned(), digest, units, true);
            if let Some(p) = prior {
                db.queries = p.queries.clone();
            }
            db
        }
    };
    for (query, dep, answer) in answers {
        if let Answer::Fresh(payload) = answer {
            db.queries.insert(query.to_owned(), QueryEntry { dep, payload });
        }
    }
    AnalysisOutcome { stdout, stderr, errors, stats, db: Some(db) }
}

/// Assembles the report from payloads — the one code path shared by cold
/// and warm runs.
fn render(
    file: &str,
    program: &Program,
    payloads: &[(&str, &Payload)],
) -> (String, String, usize) {
    let get = |name: &str| {
        payloads
            .iter()
            .find(|(n, _)| *n == name)
            .expect("all queries evaluated")
            .1
    };
    let mut stdout = String::with_capacity(1024);
    let mut stderr = String::new();
    let mut errors = 0usize;
    let mut invalid: Vec<String> = Vec::new();

    if let Payload::Report { stdout: header, .. } = get("header") {
        let _ = writeln!(stdout, "{header}");
    }
    if let Payload::Diags(diags) = get("lint") {
        emit_diags(&mut stderr, &mut errors, file, diags);
    }
    if let Payload::Diags(diags) = get("ecode") {
        if diags.is_empty() {
            let hosts = program
                .arch
                .iter()
                .filter(|i| matches!(i, logrel_lang::ast::ArchItem::Host { .. }))
                .count();
            let _ = writeln!(stdout, "e-code: verified on {hosts} host(s)");
        } else {
            emit_diags(&mut stderr, &mut errors, file, diags);
        }
    }
    if let Payload::Tv { cert, diags } = get("tv") {
        match cert {
            Some(c) => {
                let _ = writeln!(stdout, "translation: {c}");
            }
            None => emit_diags(&mut stderr, &mut errors, file, diags),
        }
    }
    if let Payload::Srg { ok, message, values } = get("srg") {
        if *ok {
            let _ = writeln!(stdout, "srg:");
            for (name, bits) in values {
                let v = f64::from_bits(*bits);
                let lrc = program
                    .communicators
                    .iter()
                    .find(|c| &c.name == name)
                    .and_then(|c| c.lrc);
                match lrc {
                    Some(l) => {
                        let marker = if v + 1e-12 < l { "VIOLATED" } else { "ok" };
                        if marker == "VIOLATED" {
                            invalid
                                .push(format!("communicator `{name}` achieves {v} < lrc {l}"));
                        }
                        let _ = writeln!(stdout, "  {name:<16} {v:.9}  lrc {l}  {marker}");
                    }
                    None => {
                        let _ = writeln!(stdout, "  {name:<16} {v:.9}");
                    }
                }
            }
        } else {
            invalid.push(format!("reliability analysis failed: {message}"));
        }
    }
    if let Payload::Cert { ok, message, certified, refuted, indeterminate } = get("certify") {
        if !*ok {
            // The SRG block above already records the underlying analysis
            // failure as an invalid reason; avoid a duplicate A001.
            let _ = writeln!(stdout, "certified: unavailable ({message})");
        } else if *certified {
            let _ = writeln!(stdout, "certified: yes");
        } else {
            let _ = writeln!(
                stdout,
                "certified: NO ({refuted} refuted, {indeterminate} indeterminate)"
            );
        }
    }
    if let Payload::Sched { ok, message } = get("sched") {
        if *ok {
            let _ = writeln!(stdout, "schedulable: yes");
        } else {
            let _ = writeln!(stdout, "schedulable: NO");
            invalid.push(format!("not schedulable: {message}"));
        }
    }
    for reason in &invalid {
        let d = StoredDiag {
            code: "A001".into(),
            error: true,
            line: 0,
            col: 0,
            message: format!("INVALID: {reason}"),
            labels: Vec::new(),
            help: None,
        };
        stderr.push_str(&d.render(file, false));
        stderr.push('\n');
        errors += 1;
    }
    let verdict = if errors == 0 { "VALID" } else { "INVALID" };
    let _ = writeln!(stdout, "verdict: {verdict}");
    (stdout, stderr, errors)
}

/// Evaluates a whole-command report query (`lint`/`check`/`verify`
/// `--incremental`): reuses the cached report when every unit is
/// unchanged, otherwise runs `compute` and returns the refreshed
/// database to persist. The boolean reports whether the cache answered.
pub fn cached_report(
    source: &str,
    query: &str,
    prior: Option<&QueryDb>,
    sink: &mut dyn MetricsSink,
    compute: impl FnOnce() -> Report,
) -> (Report, Option<QueryDb>, bool) {
    let program = match parse(source) {
        // Unparseable source: nothing to key on; run cold every time.
        Err(_) => return (compute(), None, false),
        Ok(p) => p,
    };
    let units = split_units(&program);
    let digest = units_digest(&units);
    let dep = dep_digest(query, &units);
    sink.add(names::QUERY_QUERIES, 1);
    if let Some(Payload::Report { errors, stdout, stderr }) =
        prior.and_then(|p| p.green(query, dep))
    {
        sink.add(names::QUERY_HITS, 1);
        let report =
            Report { errors: *errors, stdout: stdout.clone(), stderr: stderr.clone() };
        return (report, None, true);
    }
    sink.add(names::QUERY_RECOMPUTES, 1);
    let report = compute();
    let elab_ok = elaborate(&program).is_ok();
    let mut db = QueryDb::new(source.to_owned(), digest, units, elab_ok);
    if let Some(p) = prior {
        if p.digest == digest && p.elab_ok == elab_ok {
            db.queries = p.queries.clone();
        }
    }
    db.queries.insert(
        query.to_owned(),
        QueryEntry {
            dep,
            payload: Payload::Report {
                errors: report.errors,
                stdout: report.stdout.clone(),
                stderr: report.stderr.clone(),
            },
        },
    );
    (report, Some(db), false)
}
