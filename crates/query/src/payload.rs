//! Cached query payloads: results stored structurally so a warm render
//! is byte-identical to a cold one.
//!
//! Diagnostics are stored with *unpromoted* severities and re-rendered
//! against the current file path at display time, so `--deny` and file
//! moves never invalidate a cache entry. SRG values are stored as the
//! exact `f64` bit pattern — two runs that agree numerically agree
//! byte-for-byte once formatted.

use logrel_lint::{Diagnostic, Severity};

/// A secondary label of a stored diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredLabel {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Label text.
    pub message: String,
}

/// One diagnostic, owned (codes become `String` so they survive the
/// cache round-trip).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredDiag {
    /// Stable code (`L001`, `E003`, `V002`, `R004`, `A001`, …).
    pub code: String,
    /// `true` for error severity (stored unpromoted).
    pub error: bool,
    /// Primary line.
    pub line: u32,
    /// Primary column.
    pub col: u32,
    /// One-line message.
    pub message: String,
    /// Secondary labels.
    pub labels: Vec<StoredLabel>,
    /// Optional help text.
    pub help: Option<String>,
}

impl StoredDiag {
    /// Captures a freshly computed diagnostic.
    #[must_use]
    pub fn from_diagnostic(d: &Diagnostic) -> Self {
        StoredDiag {
            code: d.code.to_owned(),
            error: d.severity == Severity::Error,
            line: d.span.line,
            col: d.span.col,
            message: d.message.clone(),
            labels: d
                .labels
                .iter()
                .map(|l| StoredLabel {
                    line: l.span.line,
                    col: l.span.col,
                    message: l.message.clone(),
                })
                .collect(),
            help: d.help.clone(),
        }
    }

    /// `true` if the diagnostic counts as an error under `deny`.
    #[must_use]
    pub fn is_error(&self, deny: bool) -> bool {
        self.error || deny
    }

    /// Renders exactly like [`Diagnostic::render`], promoting warnings
    /// when `deny` is set.
    #[must_use]
    pub fn render(&self, file: &str, deny: bool) -> String {
        let severity = if self.is_error(deny) { "error" } else { "warning" };
        let mut out = format!(
            "{}:{}:{}:{}:{}: {}",
            self.code, severity, file, self.line, self.col, self.message
        );
        for label in &self.labels {
            out.push_str(&format!(
                "\n    note: {}:{}:{}: {}",
                file, label.line, label.col, label.message
            ));
        }
        if let Some(help) = &self.help {
            out.push_str(&format!("\n    help: {help}"));
        }
        out
    }
}

/// Captures a diagnostic list.
#[must_use]
pub fn store_diags(diags: &[Diagnostic]) -> Vec<StoredDiag> {
    diags.iter().map(StoredDiag::from_diagnostic).collect()
}

/// The result of one query, in cacheable form.
#[derive(Debug, Clone, PartialEq)]
pub enum Payload {
    /// A diagnostic list (lint, E-code verification).
    Diags(Vec<StoredDiag>),
    /// SRG computation: per-communicator values (bit-exact), or the
    /// analysis error.
    Srg {
        /// `false` if the SRG fixpoint failed (cycles, unbound inputs).
        ok: bool,
        /// Error message when `!ok`.
        message: String,
        /// `(communicator name, f64 bit pattern)` in specification order.
        values: Vec<(String, u64)>,
    },
    /// Static reliability certification summary (interval SRG verdicts).
    Cert {
        /// `false` if certification could not run (cycles, unbound
        /// inputs); the counters are then meaningless.
        ok: bool,
        /// Error message when `!ok`.
        message: String,
        /// `true` when every constrained communicator is CERTIFIED.
        certified: bool,
        /// Number of REFUTED communicators.
        refuted: u64,
        /// Number of INDETERMINATE communicators.
        indeterminate: u64,
    },
    /// Schedulability analysis outcome.
    Sched {
        /// `true` if schedulable.
        ok: bool,
        /// Error message when `!ok` (empty when `ok`).
        message: String,
    },
    /// Translation validation: the certificate line on success, the
    /// V-code diagnostics on failure.
    Tv {
        /// Certificate display line when certification succeeded.
        cert: Option<String>,
        /// Diagnostics when it did not.
        diags: Vec<StoredDiag>,
    },
    /// A whole-command report (`lint`/`check`/`verify --incremental`):
    /// exact stdout/stderr bytes plus the error count.
    Report {
        /// Errors counted by the command (drives the exit code).
        errors: usize,
        /// Exact stdout text.
        stdout: String,
        /// Exact stderr text.
        stderr: String,
    },
}

impl Payload {
    /// The serialization tag for the cache file.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Payload::Diags(_) => "diags",
            Payload::Srg { .. } => "srg",
            Payload::Cert { .. } => "cert",
            Payload::Sched { .. } => "sched",
            Payload::Tv { .. } => "tv",
            Payload::Report { .. } => "report",
        }
    }
}

/// Escapes a message for single-line storage (`\` → `\\`, newline →
/// `\n`, carriage return → `\r`).
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Reverses [`escape`]; `None` on a malformed sequence.
#[must_use]
pub fn unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next()? {
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                _ => return None,
            }
        } else {
            out.push(c);
        }
    }
    Some(out)
}

/// Serializes a diagnostic list as record lines (shared by the `diags`
/// and `tv` payload kinds).
fn push_diag_lines(out: &mut Vec<String>, diags: &[StoredDiag]) {
    for d in diags {
        out.push(format!(
            "D {} {} {} {} {}",
            d.code,
            if d.error { "E" } else { "W" },
            d.line,
            d.col,
            escape(&d.message)
        ));
        for l in &d.labels {
            out.push(format!("L {} {} {}", l.line, l.col, escape(&l.message)));
        }
        if let Some(h) = &d.help {
            out.push(format!("H {}", escape(h)));
        }
    }
}

/// Parses record lines back into diagnostics. `L`/`H` records attach to
/// the preceding `D`; anything else is malformed.
fn parse_diag_lines(lines: &[&str]) -> Option<Vec<StoredDiag>> {
    let mut diags: Vec<StoredDiag> = Vec::new();
    for line in lines {
        let (tag, rest) = line.split_once(' ')?;
        match tag {
            "D" => {
                let mut it = rest.splitn(5, ' ');
                let code = it.next()?.to_owned();
                let error = match it.next()? {
                    "E" => true,
                    "W" => false,
                    _ => return None,
                };
                let line_no: u32 = it.next()?.parse().ok()?;
                let col: u32 = it.next()?.parse().ok()?;
                let message = unescape(it.next().unwrap_or(""))?;
                diags.push(StoredDiag {
                    code,
                    error,
                    line: line_no,
                    col,
                    message,
                    labels: Vec::new(),
                    help: None,
                });
            }
            "L" => {
                let mut it = rest.splitn(3, ' ');
                let line_no: u32 = it.next()?.parse().ok()?;
                let col: u32 = it.next()?.parse().ok()?;
                let message = unescape(it.next().unwrap_or(""))?;
                diags
                    .last_mut()?
                    .labels
                    .push(StoredLabel { line: line_no, col, message });
            }
            "H" => diags.last_mut()?.help = Some(unescape(rest)?),
            _ => return None,
        }
    }
    Some(diags)
}

/// Serializes a payload to its cache-file record lines.
#[must_use]
pub fn to_lines(payload: &Payload) -> Vec<String> {
    let mut out = Vec::new();
    match payload {
        Payload::Diags(diags) => push_diag_lines(&mut out, diags),
        Payload::Srg { ok, message, values } => {
            if *ok {
                out.push("S ok".to_owned());
            } else {
                out.push(format!("S fail {}", escape(message)));
            }
            for (name, bits) in values {
                out.push(format!("F {bits:016x} {name}"));
            }
        }
        Payload::Cert { ok, message, certified, refuted, indeterminate } => {
            if *ok {
                out.push("S ok".to_owned());
            } else {
                out.push(format!("S fail {}", escape(message)));
            }
            out.push(format!(
                "C {} {refuted} {indeterminate}",
                if *certified { "yes" } else { "no" }
            ));
        }
        Payload::Sched { ok, message } => {
            if *ok {
                out.push("S ok".to_owned());
            } else {
                out.push(format!("S fail {}", escape(message)));
            }
        }
        Payload::Tv { cert, diags } => {
            match cert {
                Some(c) => out.push(format!("T {}", escape(c))),
                None => out.push("T -".to_owned()),
            }
            push_diag_lines(&mut out, diags);
        }
        Payload::Report { errors, stdout, stderr } => {
            out.push(format!("N {errors}"));
            out.push(format!("O {}", escape(stdout)));
            out.push(format!("E {}", escape(stderr)));
        }
    }
    out
}

/// Parses a payload of the given kind tag; `None` if malformed.
#[must_use]
pub fn from_lines(kind: &str, lines: &[&str]) -> Option<Payload> {
    match kind {
        "diags" => parse_diag_lines(lines).map(Payload::Diags),
        "srg" => {
            let (first, rest) = lines.split_first()?;
            let (ok, message) = parse_outcome(first)?;
            let mut values = Vec::new();
            for line in rest {
                let rest = line.strip_prefix("F ")?;
                let (bits, name) = rest.split_once(' ')?;
                values.push((name.to_owned(), u64::from_str_radix(bits, 16).ok()?));
            }
            Some(Payload::Srg { ok, message, values })
        }
        "cert" => {
            let [outcome, counts] = lines else { return None };
            let (ok, message) = parse_outcome(outcome)?;
            let mut it = counts.strip_prefix("C ")?.splitn(3, ' ');
            let certified = match it.next()? {
                "yes" => true,
                "no" => false,
                _ => return None,
            };
            Some(Payload::Cert {
                ok,
                message,
                certified,
                refuted: it.next()?.parse().ok()?,
                indeterminate: it.next()?.parse().ok()?,
            })
        }
        "sched" => {
            let [line] = lines else { return None };
            let (ok, message) = parse_outcome(line)?;
            Some(Payload::Sched { ok, message })
        }
        "tv" => {
            let (first, rest) = lines.split_first()?;
            let cert = match first.strip_prefix("T ")? {
                "-" => None,
                c => Some(unescape(c)?),
            };
            Some(Payload::Tv { cert, diags: parse_diag_lines(rest)? })
        }
        "report" => {
            let [n, o, e] = lines else { return None };
            Some(Payload::Report {
                errors: n.strip_prefix("N ")?.parse().ok()?,
                stdout: unescape(o.strip_prefix("O ")?)?,
                stderr: unescape(e.strip_prefix("E ")?)?,
            })
        }
        _ => None,
    }
}

/// Parses an `S ok` / `S fail <msg>` outcome line.
fn parse_outcome(line: &str) -> Option<(bool, String)> {
    match line.strip_prefix("S ")? {
        "ok" => Some((true, String::new())),
        rest => Some((false, unescape(rest.strip_prefix("fail ")?)?)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag() -> StoredDiag {
        StoredDiag {
            code: "L001".into(),
            error: false,
            line: 3,
            col: 7,
            message: "multi\nline `msg`".into(),
            labels: vec![StoredLabel { line: 9, col: 1, message: "see here".into() }],
            help: Some("do better".into()),
        }
    }

    #[test]
    fn escape_round_trips() {
        for s in ["", "plain", "a\nb", "back\\slash", "\r\n\\n", "trailing "] {
            assert_eq!(unescape(&escape(s)).as_deref(), Some(s));
        }
        assert_eq!(unescape("bad\\x"), None);
        assert_eq!(unescape("dangling\\"), None);
    }

    #[test]
    fn payloads_round_trip() {
        let payloads = [
            Payload::Diags(vec![diag()]),
            Payload::Diags(vec![]),
            Payload::Srg {
                ok: true,
                message: String::new(),
                values: vec![("cmd".into(), 0.9995_f64.to_bits())],
            },
            Payload::Srg { ok: false, message: "cycle".into(), values: vec![] },
            Payload::Sched { ok: true, message: String::new() },
            Payload::Sched { ok: false, message: "overload on h1".into() },
            Payload::Cert {
                ok: true,
                message: String::new(),
                certified: true,
                refuted: 0,
                indeterminate: 0,
            },
            Payload::Cert {
                ok: true,
                message: String::new(),
                certified: false,
                refuted: 1,
                indeterminate: 2,
            },
            Payload::Cert {
                ok: false,
                message: "cycle through `c`".into(),
                certified: false,
                refuted: 0,
                indeterminate: 0,
            },
            Payload::Tv { cert: Some("certificate round=10".into()), diags: vec![] },
            Payload::Tv { cert: None, diags: vec![diag()] },
            Payload::Report {
                errors: 2,
                stdout: "line one\nline two\n".into(),
                stderr: "E001:error:a.htl:1:1: boom\n".into(),
            },
        ];
        for p in &payloads {
            let lines = to_lines(p);
            let refs: Vec<&str> = lines.iter().map(String::as_str).collect();
            assert_eq!(from_lines(p.kind(), &refs).as_ref(), Some(p), "{p:?}");
        }
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert_eq!(from_lines("diags", &["X nope"]), None);
        assert_eq!(from_lines("diags", &["L 1 2 orphan label"]), None);
        assert_eq!(from_lines("sched", &["S maybe"]), None);
        assert_eq!(from_lines("srg", &[]), None);
        assert_eq!(from_lines("cert", &["S ok"]), None);
        assert_eq!(from_lines("cert", &["S ok", "C maybe 0 0"]), None);
        assert_eq!(from_lines("cert", &["S ok", "C yes 0"]), None);
        assert_eq!(from_lines("report", &["N 1", "O x"]), None);
        assert_eq!(from_lines("nope", &[]), None);
    }

    #[test]
    fn stored_render_matches_diagnostic_render() {
        use logrel_lang::token::Span;
        let d = logrel_lint::Diagnostic::new(
            "E003",
            logrel_lint::Severity::Warning,
            Span { line: 2, col: 5 },
            "suspicious vote",
        )
        .with_label(Span { line: 8, col: 3 }, "declared here")
        .with_help("reduce arity");
        let s = StoredDiag::from_diagnostic(&d);
        assert_eq!(s.render("a.htl", false), d.render("a.htl"));
        assert!(s.render("a.htl", true).starts_with("E003:error:"));
        assert!(!s.is_error(false));
        assert!(s.is_error(true));
    }
}
