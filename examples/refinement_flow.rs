//! Incremental design by refinement (§3, Proposition 2): analyse an
//! abstract system once, then check only the cheap local refinement
//! constraints for each design step.
//!
//! Run with: `cargo run --example refinement_flow`

use logrel::core::prelude::*;
use logrel::refine::{check_refinement, incremental_validate, validate, Kappa, SystemRef};

struct Sys {
    spec: Specification,
    arch: Architecture,
    imp: Implementation,
}

impl Sys {
    fn as_ref(&self) -> SystemRef<'_> {
        SystemRef::new(&self.spec, &self.arch, &self.imp)
    }
}

/// One controller task with a parameterised LET, WCET and LRC.
fn build(read_i: u64, write_i: u64, wcet: u64, lrc: f64) -> Result<Sys, CoreError> {
    let mut sb = Specification::builder();
    let s = sb.communicator(CommunicatorDecl::new("s", ValueType::Float, 10)?.from_sensor())?;
    let u = sb.communicator(
        CommunicatorDecl::new("u", ValueType::Float, 10)?.with_lrc(Reliability::new(lrc)?),
    )?;
    let ctrl = sb.task(TaskDecl::new("ctrl").reads(s, read_i).writes(u, write_i))?;
    let spec = sb.build()?;
    let mut ab = Architecture::builder();
    let h1 = ab.host(HostDecl::new("h1", Reliability::new(0.999)?))?;
    let h2 = ab.host(HostDecl::new("h2", Reliability::new(0.999)?))?;
    let sen = ab.sensor(SensorDecl::new("sen", Reliability::new(0.9999)?))?;
    ab.wcet(ctrl, h1, wcet)?.wcet(ctrl, h2, wcet)?;
    ab.wctt(ctrl, h1, 2)?.wctt(ctrl, h2, 2)?;
    let arch = ab.build();
    let imp = Implementation::builder()
        .assign(ctrl, [h1, h2])
        .bind_sensor(s, sen)
        .build(&spec, &arch)?;
    Ok(Sys { spec, arch, imp })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Step 0 — requirements model: generous LET [0, 50], WCET budget 30,
    // strong LRC 0.999.
    let requirements = build(0, 5, 30, 0.999)?;
    let cert = validate(requirements.as_ref())?;
    println!("requirements model validated once (round {} ticks)", cert.schedule.round());

    // Step 1 — tighten the timing: LET [10, 40], measured WCET 18.
    let step1 = build(1, 4, 18, 0.999)?;
    let k1 = Kappa::by_name(&step1.spec, &requirements.spec);
    incremental_validate(step1.as_ref(), requirements.as_ref(), &k1, &cert)?;
    println!("step 1 (tighter LET, smaller WCET): valid by Proposition 2, no re-analysis");

    // Step 2 — final implementation model: LET [20, 30], WCET 7, and a
    // relaxed LRC on a monitoring output (0.99 ≤ 0.999: allowed).
    let step2 = build(2, 3, 7, 0.99)?;
    let k2 = Kappa::by_name(&step2.spec, &step1.spec);
    check_refinement(step2.as_ref(), step1.as_ref(), &k2)?;
    // Transitivity: step2 also refines the requirements directly.
    let k20 = Kappa::by_name(&step2.spec, &requirements.spec);
    incremental_validate(step2.as_ref(), requirements.as_ref(), &k20, &cert)?;
    println!("step 2 (final timing): valid by transitivity of refinement");

    // A broken step: enlarging the LET is caught immediately.
    let broken = build(0, 5, 7, 0.99)?;
    let kb = Kappa::by_name(&broken.spec, &step2.spec);
    match check_refinement(broken.as_ref(), step2.as_ref(), &kb) {
        Err(e) => println!("\nbroken step rejected as expected:\n  {e}"),
        Ok(()) => unreachable!("a wider LET must not refine a tighter one"),
    }
    Ok(())
}
