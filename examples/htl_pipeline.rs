//! The compiler pipeline end to end: HTL-style source text → parse →
//! elaborate → joint analysis → E-code generation → disassembly.
//!
//! Run with: `cargo run --example htl_pipeline`

use logrel::emachine::generate;
use logrel::lang::compile;
use logrel::refine::{validate, SystemRef};
use logrel::threetank::htl::three_tank_source;
use logrel::threetank::Scenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = three_tank_source(Scenario::ReplicatedControllers, 0.999, Some(0.998));
    println!("── source ──\n{source}");

    let system = compile(&source)?;
    println!(
        "── elaborated ──\nprogram `{}`: {} communicators, {} tasks, round {} ms",
        system.name,
        system.spec.communicator_count(),
        system.spec.task_count(),
        system.spec.round_period()
    );

    let cert = validate(SystemRef::new(&system.spec, &system.arch, &system.imp))?;
    println!("joint analysis: schedulable and reliable");
    println!(
        "host utilisations: {}",
        system
            .arch
            .host_ids()
            .map(|h| format!(
                "{} {:.1}%",
                system.arch.host(h).name(),
                100.0 * cert.schedule.utilization(h)
            ))
            .collect::<Vec<_>>()
            .join(", ")
    );

    // Generate and disassemble one host's E-code.
    let h1 = system.arch.find_host("h1").expect("declared in the source");
    let code = generate(&system.spec, &system.imp, h1);
    println!("\n── E-code for h1 ({} instructions) ──", code.len());
    println!("{}", code.disassemble());

    // Cross-validate the generated code against the specification's
    // event calendar for three rounds.
    logrel::sim::emrun::validate_ecode(&system.spec, &system.imp, system.arch.host_ids(), 3)
        .map_err(std::io::Error::other)?;
    println!("E-code validated against the event calendar for 3 rounds ✓");
    Ok(())
}
