//! A medical-device case study built with the library API: a
//! patient-controlled analgesia (infusion) pump — the paper's motivating
//! domain ("medical devices") next to automotive.
//!
//! Tasks (period 250 ms):
//!   monitor : drug-concentration sensor  → estimated plasma level
//!   dose    : plasma level + request     → pump rate   (LRC 0.9995!)
//!   alarm   : plasma level               → alarm flag  (LRC 0.999)
//!
//! The example shows the full design loop: a first mapping that fails the
//! strict dosing LRC, automatic synthesis of a repaired mapping with a
//! schedulability veto, component-importance ranking, and worst-case
//! sensor-to-pump latency.
//!
//! Run with: `cargo run --example infusion_pump`

use logrel::core::prelude::*;
use logrel::reliability::{architecture_importance, check, synthesize, SynthesisOptions};
use logrel::sched::{analyze, data_ages};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Specification ---------------------------------------------------
    let mut sb = Specification::builder();
    let conc = sb.communicator(
        CommunicatorDecl::new("concentration", ValueType::Float, 250)?.from_sensor(),
    )?;
    let request = sb.communicator(
        CommunicatorDecl::new("bolus_request", ValueType::Bool, 250)?.from_sensor(),
    )?;
    let plasma = sb.communicator(CommunicatorDecl::new("plasma", ValueType::Float, 50)?)?;
    let rate = sb.communicator(
        CommunicatorDecl::new("pump_rate", ValueType::Float, 50)?
            .with_lrc(Reliability::new(0.9995)?),
    )?;
    let alarm = sb.communicator(
        CommunicatorDecl::new("alarm", ValueType::Bool, 250)?
            .with_lrc(Reliability::new(0.999)?),
    )?;
    let monitor = sb.task(TaskDecl::new("monitor").reads(conc, 0).writes(plasma, 1))?;
    // Dosing must not silently use stale requests: series model.
    let dose = sb.task(
        TaskDecl::new("dose")
            .reads(plasma, 1)
            .reads(request, 0)
            .writes(rate, 3),
    )?;
    // The alarm should fire even on partial information: parallel model.
    let alarm_task = sb.task(
        TaskDecl::new("alarm_task")
            .reads(plasma, 1)
            .writes(alarm, 1)
            .model(FailureModel::Parallel)
            .default_value(Value::Float(1.0)), // assume the worst
    )?;
    let spec = sb.build()?;
    println!(
        "infusion pump: {} tasks over a {} ms round",
        spec.task_count(),
        spec.round_period()
    );

    // --- Architecture: two controller boards + a safety board ------------
    let mut ab = Architecture::builder();
    let main_a = ab.host(HostDecl::new("main-a", Reliability::new(0.995)?))?;
    let main_b = ab.host(HostDecl::new("main-b", Reliability::new(0.995)?))?;
    let safety = ab.host(HostDecl::new("safety", Reliability::new(0.9999)?))?;
    let drug_sensor = ab.sensor(SensorDecl::new("drug-sensor", Reliability::new(0.9999)?))?;
    let button = ab.sensor(SensorDecl::new("bolus-button", Reliability::new(0.99999)?))?;
    for t in [monitor, dose, alarm_task] {
        ab.wcet_all(t, 8)?;
        ab.wctt_all(t, 2)?;
    }
    let arch = ab.build();

    // --- First mapping: everything on one main board ---------------------
    let first = Implementation::builder()
        .assign(monitor, [main_a])
        .assign(dose, [main_a])
        .assign(alarm_task, [safety])
        .bind_sensor(conc, drug_sensor)
        .bind_sensor(request, button)
        .build(&spec, &arch)?;
    let verdict = check(&spec, &arch, &first)?;
    println!("\nfirst mapping: {verdict}");
    assert!(!verdict.is_reliable(), "0.995 « 0.9995, must fail");

    // --- Where to spend redundancy? --------------------------------------
    println!("\ncomponent importance for `pump_rate`:");
    for c in architecture_importance(&spec, &arch, &first, rate)? {
        println!("  {:<22} birnbaum {:.6}", c.name, c.birnbaum);
    }

    // Note the ceiling: the single drug sensor (0.9999) bounds every
    // downstream SRG — no amount of host replication can push
    // λ(pump_rate) above λ(concentration); an LRC beyond that demands
    // sensor replication (cf. the paper's scenario 2).

    // --- Synthesis with a schedulability veto -----------------------------
    let repaired = synthesize(
        &spec,
        &arch,
        &first,
        &SynthesisOptions::default(),
        |candidate| analyze(&spec, &arch, candidate).is_ok(),
    )?;
    println!("\nsynthesised mapping ({} replicas):", repaired.replication_count());
    for t in spec.task_ids() {
        let hosts: Vec<&str> = repaired
            .hosts_of(t)
            .iter()
            .map(|&h| arch.host(h).name())
            .collect();
        println!("  {:<12} -> {{{}}}", spec.task(t).name(), hosts.join(", "));
    }
    let verdict = check(&spec, &arch, &repaired)?;
    println!(
        "repaired verdict: {verdict} (λ(pump_rate) = {:.6}, λ(alarm) = {:.6})",
        verdict.long_run_srg(rate),
        verdict.long_run_srg(alarm)
    );
    assert!(verdict.is_reliable());
    let schedule = analyze(&spec, &arch, &repaired)?;
    println!(
        "schedulable; busiest board at {:.1}% utilisation",
        100.0
            * arch
                .host_ids()
                .map(|h| schedule.utilization(h))
                .fold(0.0f64, f64::max)
    );
    let _ = main_b;

    // --- Deterministic end-to-end latency ---------------------------------
    let ages = data_ages(&spec);
    println!(
        "\nworst-case sensor-to-pump data age: {} ms (LET-deterministic)",
        ages.age(rate).expect("acyclic")
    );
    println!(
        "worst-case sensor-to-alarm data age: {} ms",
        ages.age(alarm).expect("acyclic")
    );
    Ok(())
}
