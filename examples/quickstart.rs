//! Quickstart: declare a tiny system, run the joint
//! schedulability/reliability analysis, and fix a violated LRC by
//! replication.
//!
//! Run with: `cargo run --example quickstart`

use logrel::prelude::*;
use logrel::refine::{validate, SystemRef, ValidityError};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Specification: a sensor-driven control loop -------------------
    // Communicator `s` is updated by a physical sensor every 10 ticks;
    // `u` is the actuator command and demands 99.9% long-run reliability.
    let mut sb = Specification::builder();
    let s = sb.communicator(CommunicatorDecl::new("s", ValueType::Float, 10)?.from_sensor())?;
    let u = sb.communicator(
        CommunicatorDecl::new("u", ValueType::Float, 10)?.with_lrc(Reliability::new(0.999)?),
    )?;
    // Task `ctrl` reads instance 0 of `s` (release at tick 0) and writes
    // instance 1 of `u` (deadline at tick 10): its LET is [0, 10].
    let ctrl = sb.task(TaskDecl::new("ctrl").reads(s, 0).writes(u, 1))?;
    let spec = sb.build()?;
    println!("round period π_S = {} ticks", spec.round_period());

    // --- Architecture: two so-so hosts, one good sensor ----------------
    let mut ab = Architecture::builder();
    let h1 = ab.host(HostDecl::new("h1", Reliability::new(0.98)?))?;
    let h2 = ab.host(HostDecl::new("h2", Reliability::new(0.98)?))?;
    let sen = ab.sensor(SensorDecl::new("level-sensor", Reliability::new(0.9999)?))?;
    ab.wcet(ctrl, h1, 4)?.wcet(ctrl, h2, 4)?;
    ab.wctt(ctrl, h1, 2)?.wctt(ctrl, h2, 2)?;
    let arch = ab.build();

    // --- Attempt 1: single host ----------------------------------------
    let single = Implementation::builder()
        .assign(ctrl, [h1])
        .bind_sensor(s, sen)
        .build(&spec, &arch)?;
    match validate(SystemRef::new(&spec, &arch, &single)) {
        Ok(_) => println!("single-host mapping: valid"),
        Err(ValidityError::NotReliable { verdict }) => {
            println!("single-host mapping: {verdict}");
        }
        Err(e) => println!("single-host mapping: {e}"),
    }

    // --- Attempt 2: replicate on both hosts -----------------------------
    let replicated = single.with_assignment(ctrl, [h1, h2]);
    let cert = validate(SystemRef::new(&spec, &arch, &replicated))?;
    println!(
        "replicated mapping: reliable, SRG(u) = {:.6} ≥ 0.999",
        cert.verdict.long_run_srg(u)
    );
    println!("\nschedule:\n{}", cert.schedule.gantt(
        |t| spec.task(t).name().to_owned(),
        |h| arch.host(h).name().to_owned(),
    ));
    Ok(())
}
