//! The §4 three-tank case study: the baseline mapping and the paper's two
//! repair scenarios, with the exact SRG arithmetic printed.
//!
//! Run with: `cargo run --example three_tank`

use logrel::reliability::compute_srgs;
use logrel::threetank::{Scenario, ThreeTankSystem};

fn report(title: &str, sys: &ThreeTankSystem, lrc: f64) {
    let srgs = compute_srgs(&sys.spec, &sys.arch, &sys.imp).expect("memory-free spec");
    println!("── {title} ──");
    for (label, comm) in [
        ("λ(s1)", sys.ids.s1),
        ("λ(l1)", sys.ids.l1),
        ("λ(u1)", sys.ids.u1),
    ] {
        println!("  {label} = {:.9}", srgs.communicator(comm).get());
    }
    let achieved = srgs.communicator(sys.ids.u1).get();
    let verdict = if achieved + 1e-12 >= lrc { "RELIABLE" } else { "NOT reliable" };
    println!("  LRC(u) = {lrc}  →  {verdict}\n");
}

fn main() {
    println!("Three-tank system, host/sensor reliability 0.999\n");

    let baseline = ThreeTankSystem::new(Scenario::Baseline);
    report("baseline: t1→h1, t2→h2, rest→h3 (LRC 0.99)", &baseline, 0.99);
    report("baseline against the stricter LRC 0.998", &baseline, 0.998);

    let scenario1 = ThreeTankSystem::new(Scenario::ReplicatedControllers);
    report(
        "scenario 1: controllers replicated on {h1, h2} (LRC 0.998)",
        &scenario1,
        0.998,
    );

    let scenario2 = ThreeTankSystem::new(Scenario::ReplicatedSensors);
    report(
        "scenario 2: two sensors per tank, read tasks model-2 (LRC 0.998)",
        &scenario2,
        0.998,
    );

    // Schedulability: print the static schedule of the baseline.
    let schedule = logrel::sched::analyze(&baseline.spec, &baseline.arch, &baseline.imp)
        .expect("the baseline is schedulable");
    println!(
        "baseline schedule (one round of {} ms):\n{}",
        schedule.round(),
        schedule.gantt(
            |t| baseline.spec.task(t).name().to_owned(),
            |h| baseline.arch.host(h).name().to_owned(),
        )
    );
}
