//! Fault-injected simulation (Proposition 1 in action): empirical
//! limit-average reliability of every communicator versus the analytic
//! SRG, plus the strong-law convergence series.
//!
//! Run with: `cargo run --example fault_injection`

use logrel::core::{TimeDependentImplementation, Value};
use logrel::reliability::{compute_srgs, hoeffding_epsilon, running_average};
use logrel::sim::{BehaviorMap, ConstantEnvironment, ProbabilisticFaults, SimConfig, Simulation};
use logrel::threetank::{Scenario, ThreeTankSystem};

fn main() {
    // Lower the reliabilities so failures are visible in a short run.
    let sys = ThreeTankSystem::with_options(Scenario::Baseline, 0.9, None)
        .expect("0.9 is a valid reliability");
    let analytic = compute_srgs(&sys.spec, &sys.arch, &sys.imp).expect("memory-free");

    let rounds = 20_000;
    let imp = TimeDependentImplementation::from(sys.imp.clone());
    let sim = Simulation::new(&sys.spec, &sys.arch, &imp);
    let mut behaviors = BehaviorMap::new();
    let mut env = ConstantEnvironment::new(Value::Float(0.25));
    let mut injector = ProbabilisticFaults::from_architecture(&sys.arch);
    let config = SimConfig { rounds, seed: 7 };
    println!("simulating {rounds} rounds with seed {} …\n", config.seed);
    let out = sim.run(&mut behaviors, &mut env, &mut injector, &config);

    println!("{:<6} {:>12} {:>12} {:>12}", "comm", "empirical", "analytic", "diff");
    for c in sys.spec.communicator_ids() {
        let bits: Vec<bool> = out.trace.abstraction(c).into_iter().skip(5).collect();
        let mean = bits.iter().filter(|&&b| b).count() as f64 / bits.len() as f64;
        let lambda = analytic.communicator(c).get();
        println!(
            "{:<6} {:>12.5} {:>12.5} {:>12.5}",
            sys.spec.communicator(c).name(),
            mean,
            lambda,
            (mean - lambda).abs()
        );
    }
    println!(
        "\n(r1/r2 differ by design: the SRG induction treats the l→estimate and \
         l→t→u→estimate paths as independent; the simulator shows the exact \
         correlated probability.)"
    );

    // Convergence of the running average for u1 (SLLN).
    let bits = out.trace.abstraction(sys.ids.u1);
    let series = running_average(&bits);
    println!("\nSLLN convergence of u1's running average:");
    for n in [10, 100, 1_000, 10_000, series.len() - 1] {
        let eps = hoeffding_epsilon(n + 1, 0.99);
        println!(
            "  n = {:>6}: avg = {:.5} (99% Hoeffding half-width ±{:.4})",
            n + 1,
            series[n],
            eps
        );
    }
}
