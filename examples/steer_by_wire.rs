//! The automotive case study end to end: reliability analysis of the two
//! deployments, then a closed-loop lane change at 90 km/h with an ECU
//! unplugged mid-run.
//!
//! Run with: `cargo run --example steer_by_wire`

use logrel::core::{Tick, TimeDependentImplementation};
use logrel::reliability::check;
use logrel::sim::{BehaviorMap, NoFaults, SimConfig, Simulation, UnplugAt};
use logrel::steerbywire::behaviors::build_behaviors;
use logrel::steerbywire::env::LaneChange;
use logrel::steerbywire::{SteerEnvironment, SteerScenario, SteerSystem, VehicleParams};

const SPEED: f64 = 25.0; // 90 km/h
const LANE_CHANGE: LaneChange = LaneChange {
    start: 10.0,
    duration: 3.0,
    amplitude: 1.2,
};

fn closed_loop(scenario: SteerScenario, unplug: bool) -> (f64, f64) {
    let sys = SteerSystem::new(scenario, None).expect("valid system");
    let params = VehicleParams::default();
    let imp = TimeDependentImplementation::from(sys.imp.clone());
    let sim = Simulation::new(&sys.spec, &sys.arch, &imp);
    let mut behaviors: BehaviorMap = build_behaviors(&sys, &params);
    let mut env = SteerEnvironment::new(
        params,
        sys.ids,
        0.001,
        SPEED,
        LANE_CHANGE,
        sys.gains.steering_ratio,
    );
    let config = SimConfig {
        rounds: 320,
        seed: 6,
    };
    if unplug {
        let mut inj = UnplugAt::new(NoFaults, sys.ids.ecu_a, Tick::new(8_000));
        sim.run(&mut behaviors, &mut env, &mut inj, &config);
    } else {
        sim.run(&mut behaviors, &mut env, &mut NoFaults, &config);
    }
    (
        env.mean_yaw_error_since(Tick::new(10_000)),
        env.plant().state().lateral_position,
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("steer-by-wire column, LRC(cmd) = 0.998\n");
    for scenario in [SteerScenario::SingleEcu, SteerScenario::ReplicatedEcus] {
        let sys = SteerSystem::new(scenario, Some(0.998))?;
        let verdict = check(&sys.spec, &sys.arch, &sys.imp)?;
        println!(
            "{scenario:?}: λ(cmd) = {:.6} → {verdict}",
            verdict.long_run_srg(sys.ids.cmd)
        );
    }

    println!("\nclosed-loop lane change at 90 km/h, ecu_a unplugged at t = 8 s:");
    println!(
        "{:<18} {:>14} {:>14}",
        "deployment", "yaw err (rad/s)", "lateral (m)"
    );
    for (label, scenario, unplug) in [
        ("replicated", SteerScenario::ReplicatedEcus, false),
        ("replicated+fault", SteerScenario::ReplicatedEcus, true),
        ("single", SteerScenario::SingleEcu, false),
        ("single+fault", SteerScenario::SingleEcu, true),
    ] {
        let (err, lateral) = closed_loop(scenario, unplug);
        println!("{label:<18} {err:>14.5} {lateral:>14.3}");
    }
    println!(
        "\nwith replication the fault is invisible; the single ECU never steers the\n\
         lane change (the car stays in its lane while the driver turns the wheel)"
    );
    Ok(())
}
